"""Figure 1: concurrent execution of alternatives.

The paper's Figure 1 is a diagram: a sequential program reaches the start
block, n methods plus the failure alternative run concurrently, the first
success synchronizes, and the siblings are eliminated. This bench
executes exactly that scenario on the simulation kernel and renders the
kernel's own event trace as a text timeline, then asserts the diagram's
ordering properties. The benchmark also exercises guard-placement
variants (the figure's GUARD discussion).
"""

import pytest

from _harness import report
from repro.core.alternative import Alternative, Guard, GuardPlacement
from repro.core.policy import EliminationPolicy
from repro.kernel import Kernel


def _method(label: str, seconds: float):
    def method(ctx):
        yield ctx.compute(seconds)
        yield ctx.put("result", label)
        return label

    method.__name__ = label
    return method


def run_figure1(trace: bool = True, obs=None):
    """Three methods with dispersed runtimes; method_2 is fastest."""
    kernel = Kernel(cpus=4, trace=trace, obs=obs)
    box = {}

    def sequential_program(ctx):
        yield ctx.compute(0.2)  # work before the start block
        out = yield from ctx.run_alternatives(
            [
                _method("method_1", 3.0),
                _method("method_2", 1.0),
                _method("method_3", 2.0),
            ],
            elimination=EliminationPolicy.ASYNCHRONOUS,
        )
        box["outcome"] = out
        yield ctx.compute(0.1)  # work after the synchronization
        return out.value

    kernel.spawn(sequential_program, name="main")
    kernel.run()
    return kernel, box["outcome"]


def render_timeline(kernel: Kernel) -> str:
    interesting = kernel.trace.of_kind(
        "spawn", "alt-spawn", "alt-wait", "commit", "kill", "fact", "done"
    )
    return "\n".join(str(e) for e in interesting)


def test_figure1_timeline(benchmark):
    kernel, outcome = benchmark.pedantic(run_figure1, iterations=1, rounds=1)
    text = render_timeline(kernel)
    report("fig1_alternatives", text + "\n\nwinner: " + str(outcome.value))

    # diagram properties
    assert outcome.value == "method_2"
    spawn = kernel.trace.of_kind("alt-spawn")[0]
    wait = kernel.trace.of_kind("alt-wait")[0]
    commit = kernel.trace.of_kind("commit")[0]
    kills = kernel.trace.of_kind("kill")
    # start block -> methods -> synchronization -> elimination
    assert spawn.time <= wait.time <= commit.time
    assert len(kills) == 2  # both losing methods eliminated
    assert all(k.time >= commit.time for k in kills)
    # the synchronization happened when the fastest method finished
    assert commit.time == pytest.approx(0.2 + 1.0, rel=0.01)


def test_figure1_failure_path(benchmark):
    """All guards unsatisfied: the failure alternative is selected."""

    def run():
        kernel = Kernel(cpus=4)
        box = {}

        def program(ctx):
            bad = Alternative(
                _method("m", 0.5),
                guard=Guard(name="never", accept=lambda s, v: False),
            )
            out = yield from ctx.run_alternatives([bad, bad])
            box["out"] = out
            return "after-failure"

        kernel.spawn(program, name="main")
        kernel.run()
        return box["out"]

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.failed
    assert not outcome.timed_out


@pytest.mark.parametrize(
    "placement",
    [GuardPlacement.BEFORE_SPAWN, GuardPlacement.IN_CHILD, GuardPlacement.AT_SYNC],
    ids=["before-spawn", "in-child", "at-sync"],
)
def test_figure1_guard_placements(benchmark, placement):
    """The figure text: guards may run serially before spawning, in the
    child, or at the synchronization point — same selected result."""

    def run():
        kernel = Kernel(cpus=4)
        box = {}

        def program(ctx):
            guarded = Alternative(
                _method("wrong", 0.2),
                guard=Guard(
                    name="flag-required",
                    check=lambda s: s.get("flag", False),
                    accept=lambda s, v: s.get("flag", False),
                    placement=placement,
                ),
            )
            good = Alternative(_method("right", 1.0))
            out = yield from ctx.run_alternatives([guarded, good])
            box["out"] = out
            return out.value

        kernel.spawn(program, name="main", heap_init={"flag": False})
        kernel.run()
        return box["out"]

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.value == "right"


# -- observability smoke (CI: `python bench_fig1_alternatives.py --quick`) ----

def _time_reps(reps: int, batch: int = 1, **kwargs) -> list[float]:
    """Per-run CPU times; each sample times a batch of ``batch`` runs.

    The workload is single-threaded pure CPU, so ``process_time`` is the
    honest clock for an instruction-overhead comparison: it excludes the
    descheduling spikes of a shared host, which otherwise swamp a ~2ms
    run. Batching amortizes the clock's granularity.
    """
    import time as _time

    samples = []
    for _ in range(reps):
        t0 = _time.process_time()
        for _ in range(batch):
            run_figure1(trace=False, **kwargs)
        samples.append((_time.process_time() - t0) / batch)
    return samples


def observability_run(quick: bool = False) -> int:
    """Traced Figure 1 run + exporter validation + overhead measurement.

    Returns a process exit code: non-zero when an exported artifact
    fails schema validation or a metric name is duplicated.
    """
    import os

    from _harness import RESULTS_DIR, mean_std, metric, report, report_json
    from repro.obs import Observability
    from repro.obs.export import (
        SchemaError,
        SpeculationReport,
        validate_chrome_trace,
        validate_jsonl,
        validate_metrics,
        write_chrome_trace,
        write_jsonl,
    )

    obs = Observability()
    kernel, outcome = run_figure1(trace=True, obs=obs)
    obs.finalize(kernel.now)
    spec = SpeculationReport.from_kernel(kernel, obs)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    trace_path = os.path.join(RESULTS_DIR, "fig1_obs.trace.json")
    jsonl_path = os.path.join(RESULTS_DIR, "fig1_obs.spans.jsonl")
    write_chrome_trace(obs.tracer, trace_path)
    write_jsonl(obs.tracer, jsonl_path)
    try:
        validate_chrome_trace(trace_path)
        validate_jsonl(jsonl_path)
        validate_metrics(obs.registry)
    except SchemaError as exc:
        print(f"VALIDATION FAILED: {exc}")
        return 1

    # telemetry overhead: bare kernel vs obs-disabled vs obs-enabled.
    # Each sample times a 5-run batch (amortizing scheduler spikes), the
    # three configurations are interleaved per round (host-load drift
    # hits them equally), and the percentage compares the fastest batch
    # of each — min-of-reps, the standard noise-robust estimator for
    # millisecond-scale runs. Mean/stddev of the raw samples go to the
    # JSON output.
    import gc

    reps = 20 if quick else 40
    batch = 5
    _time_reps(2)  # warm-up
    base, off, on = [], [], []
    gc_was_enabled = gc.isenabled()
    gc.disable()  # GC pauses land on random configs otherwise
    try:
        for _ in range(reps):
            gc.collect()
            base += _time_reps(1, batch=batch)
            off += _time_reps(1, batch=batch, obs=Observability(enabled=False))
            on += _time_reps(1, batch=batch, obs=Observability())
    finally:
        if gc_was_enabled:
            gc.enable()
    base_mu, base_sd = mean_std(base)
    off_mu, off_sd = mean_std(off)
    on_mu, on_sd = mean_std(on)

    def median(values):
        values = sorted(values)
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    # median of per-round paired ratios: each round's bare run is the
    # denominator for that round's instrumented runs, cancelling the
    # common-mode drift that min- or mean-based estimators pick up
    overhead_on = 100.0 * (median(o / b for o, b in zip(on, base)) - 1.0)
    overhead_off = 100.0 * (median(o / b for o, b in zip(off, base)) - 1.0)

    text = "\n".join([
        spec.render(),
        "",
        f"spans recorded: {len(obs.tracer.spans)} (dropped {obs.tracer.dropped})",
        f"exports: {os.path.basename(trace_path)}, {os.path.basename(jsonl_path)} (validated)",
        f"telemetry overhead over {reps} reps: "
        f"enabled {overhead_on:+.1f}%, disabled {overhead_off:+.1f}% "
        f"(bare {base_mu * 1e3:.2f}ms)",
    ])
    report("fig1_observability", text)
    report_json("fig1_obs", [
        metric("fig1_run_bare_s", base_mu, "s", base_sd),
        metric("fig1_run_obs_disabled_s", off_mu, "s", off_sd),
        metric("fig1_run_obs_enabled_s", on_mu, "s", on_sd),
        metric("telemetry_overhead_enabled_pct", overhead_on, "%"),
        metric("telemetry_overhead_disabled_pct", overhead_off, "%"),
        metric("fig1_spans_recorded", len(obs.tracer.spans), "spans"),
        metric("fig1_wasted_work_ratio", spec.wasted_work_ratio, "ratio"),
        metric(
            "fig1_commit_response_s",
            spec.commit.get("response_s", 0.0)
            / max(1, int(spec.commit.get("blocks", 1))),
            "s",
        ),
    ])
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="traced run + exporter validation with few overhead reps (CI smoke)",
    )
    args = parser.parse_args()
    if args.quick:
        sys.exit(observability_run(quick=True))
    kernel, outcome = run_figure1()
    print(render_timeline(kernel))
    print("winner:", outcome.value)
    sys.exit(observability_run(quick=False))
