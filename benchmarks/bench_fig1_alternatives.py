"""Figure 1: concurrent execution of alternatives.

The paper's Figure 1 is a diagram: a sequential program reaches the start
block, n methods plus the failure alternative run concurrently, the first
success synchronizes, and the siblings are eliminated. This bench
executes exactly that scenario on the simulation kernel and renders the
kernel's own event trace as a text timeline, then asserts the diagram's
ordering properties. The benchmark also exercises guard-placement
variants (the figure's GUARD discussion).
"""

import pytest

from _harness import report
from repro.core.alternative import Alternative, Guard, GuardPlacement
from repro.core.policy import EliminationPolicy
from repro.kernel import Kernel


def _method(label: str, seconds: float):
    def method(ctx):
        yield ctx.compute(seconds)
        yield ctx.put("result", label)
        return label

    method.__name__ = label
    return method


def run_figure1(trace: bool = True):
    """Three methods with dispersed runtimes; method_2 is fastest."""
    kernel = Kernel(cpus=4, trace=trace)
    box = {}

    def sequential_program(ctx):
        yield ctx.compute(0.2)  # work before the start block
        out = yield from ctx.run_alternatives(
            [
                _method("method_1", 3.0),
                _method("method_2", 1.0),
                _method("method_3", 2.0),
            ],
            elimination=EliminationPolicy.ASYNCHRONOUS,
        )
        box["outcome"] = out
        yield ctx.compute(0.1)  # work after the synchronization
        return out.value

    kernel.spawn(sequential_program, name="main")
    kernel.run()
    return kernel, box["outcome"]


def render_timeline(kernel: Kernel) -> str:
    interesting = kernel.trace.of_kind(
        "spawn", "alt-spawn", "alt-wait", "commit", "kill", "fact", "done"
    )
    return "\n".join(str(e) for e in interesting)


def test_figure1_timeline(benchmark):
    kernel, outcome = benchmark.pedantic(run_figure1, iterations=1, rounds=1)
    text = render_timeline(kernel)
    report("fig1_alternatives", text + "\n\nwinner: " + str(outcome.value))

    # diagram properties
    assert outcome.value == "method_2"
    spawn = kernel.trace.of_kind("alt-spawn")[0]
    wait = kernel.trace.of_kind("alt-wait")[0]
    commit = kernel.trace.of_kind("commit")[0]
    kills = kernel.trace.of_kind("kill")
    # start block -> methods -> synchronization -> elimination
    assert spawn.time <= wait.time <= commit.time
    assert len(kills) == 2  # both losing methods eliminated
    assert all(k.time >= commit.time for k in kills)
    # the synchronization happened when the fastest method finished
    assert commit.time == pytest.approx(0.2 + 1.0, rel=0.01)


def test_figure1_failure_path(benchmark):
    """All guards unsatisfied: the failure alternative is selected."""

    def run():
        kernel = Kernel(cpus=4)
        box = {}

        def program(ctx):
            bad = Alternative(
                _method("m", 0.5),
                guard=Guard(name="never", accept=lambda s, v: False),
            )
            out = yield from ctx.run_alternatives([bad, bad])
            box["out"] = out
            return "after-failure"

        kernel.spawn(program, name="main")
        kernel.run()
        return box["out"]

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.failed
    assert not outcome.timed_out


@pytest.mark.parametrize(
    "placement",
    [GuardPlacement.BEFORE_SPAWN, GuardPlacement.IN_CHILD, GuardPlacement.AT_SYNC],
    ids=["before-spawn", "in-child", "at-sync"],
)
def test_figure1_guard_placements(benchmark, placement):
    """The figure text: guards may run serially before spawning, in the
    child, or at the synchronization point — same selected result."""

    def run():
        kernel = Kernel(cpus=4)
        box = {}

        def program(ctx):
            guarded = Alternative(
                _method("wrong", 0.2),
                guard=Guard(
                    name="flag-required",
                    check=lambda s: s.get("flag", False),
                    accept=lambda s, v: s.get("flag", False),
                    placement=placement,
                ),
            )
            good = Alternative(_method("right", 1.0))
            out = yield from ctx.run_alternatives([guarded, good])
            box["out"] = out
            return out.value

        kernel.spawn(program, name="main", heap_init={"flag": False})
        kernel.run()
        return box["out"]

    outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert outcome.value == "right"


if __name__ == "__main__":
    kernel, outcome = run_figure1()
    print(render_timeline(kernel))
    print("winner:", outcome.value)
