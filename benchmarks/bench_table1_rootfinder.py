"""Table I: the parallel Jenkins-Traub rootfinder.

The paper's Table I (2-processor Ardent Titan, complex Jenkins-Traub with
random starting angles):

    procs   max    min    avg  fails    par
        1  4.01   4.01   4.01      0   4.37
        2  4.49   4.07   4.28      0   4.25
        3  4.45   2.03   3.50      0   4.74
        4  4.48   1.37   3.31      0   5.19
        5  4.27   2.36   3.35      2   8.61
        6  4.50   2.02   3.65      0   7.03

We measure the sequential per-angle-seed times on this host, then replay
the parallel race on a simulated 2-CPU machine (this container exposes a
single CPU; see DESIGN.md section 3 for the substitution). The *shape*
claims asserted below:

- with 2 processes on 2 CPUs, par ~= min + overhead and beats avg
  (the paper's 4.25 < 4.28);
- beyond 2 processes the processors saturate and par grows past the
  sequential times (the paper's 4.74 / 5.19 / 8.61 / 7.03);
- some angle seeds fail under a tight iteration budget (the paper's
  2 fails at procs = 5) without harming the block.
"""

import math

import pytest

from _harness import report
from repro.apps.poly.rootfind.parallel import (
    ParallelRootfinder,
    default_table_polynomial,
    render_table_one,
)

PROCS = [1, 2, 3, 4, 5, 6]
PROCESSORS = 2  # the Ardent Titan had two


def generate(degree: int = 40, base_seed: int = 0):
    finder = ParallelRootfinder(default_table_polynomial(degree=degree))
    return finder.table_one(PROCS, base_seed=base_seed, processors=PROCESSORS)


def test_table1(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = render_table_one(rows)
    report(
        "table1_rootfinder",
        text + "\n\n(times in seconds; parallel column on a simulated "
        f"{PROCESSORS}-CPU machine;\nsequential columns measured on this host)",
    )

    by_procs = {r.procs: r for r in rows}
    # basic sanity on every row
    for row in rows:
        assert row.min_s <= row.avg_s <= row.max_s
        assert math.isfinite(row.par_s)

    # procs=1: par ~ the single run plus small overhead
    assert by_procs[1].par_s >= by_procs[1].min_s
    assert by_procs[1].par_s == pytest.approx(by_procs[1].min_s, rel=0.25)

    # procs=2 on 2 CPUs: the headline — parallel tracks min and beats the
    # average whenever the two seeds actually disperse. (The paper's own
    # margin is hairline: 4.25 vs 4.28.) With negligible dispersion the
    # two are equal to within noise, never meaningfully worse.
    row2 = by_procs[2]
    dispersion = row2.avg_s - row2.min_s
    if dispersion > 0.05 * row2.avg_s:
        assert row2.par_s < row2.avg_s
    assert row2.par_s <= row2.avg_s * 1.05
    assert row2.par_s == pytest.approx(row2.min_s, rel=0.25)

    # saturation: 6 processes on 2 CPUs cost clearly more than 2 do
    assert by_procs[6].par_s > by_procs[2].par_s
    # and, as in the paper's procs>=3 rows, par exceeds this row's max
    assert by_procs[6].par_s > by_procs[6].max_s

    # the tight angle budget produces some failures across the sweep,
    # and they never prevent the parallel run from completing
    assert sum(r.fails for r in rows) >= 1


def test_table1_one_cpu_per_process(benchmark):
    """The paper: "Ideally, there would be one processor for each
    process" — then par tracks min even at 6 processes."""

    def run():
        finder = ParallelRootfinder(default_table_polynomial(degree=40))
        runs = finder.sequential_runs(range(6))
        par = finder._parallel_sim(runs, processors=6)
        ok_min = min(r.elapsed_s for r in runs if not r.failed)
        avg = sum(r.elapsed_s for r in runs) / len(runs)
        return par, ok_min, avg

    par, ok_min, avg = benchmark.pedantic(run, iterations=1, rounds=1)
    # par tracks the fastest SUCCESSFUL seed (failed seeds stop early and
    # can undercut the min column without being eligible to win)
    assert par == pytest.approx(ok_min, rel=0.05)
    assert par < avg


def test_table1_winner_correctness(benchmark):
    """Whoever wins the race, the zeros are true zeros."""

    def run():
        finder = ParallelRootfinder(default_table_polynomial(degree=24))
        outcome = finder.parallel_run(range(4), backend="thread")
        return finder, outcome

    finder, outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    assert not outcome.failed
    zeros = outcome.extras["state"]["zeros"]
    assert len(zeros) == finder.poly.degree
    for z in zeros:
        value, bound = finder.poly.eval_with_error_bound(z)
        assert abs(value) <= max(bound * 50, 1e-250)


if __name__ == "__main__":
    print(render_table_one(generate()))
