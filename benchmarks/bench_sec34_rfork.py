"""Section 3.4: remote fork by checkpoint/restart.

"An rfork() of a 70K process requires slightly less than a second, and
network delays gave us an observed average execution time of about 1.3
seconds; ... The major cost was creating a checkpoint of the process."

The calibrated model regenerates those magnitudes; a real checkpoint →
(simulated) ship → forked restart of a 70K-state task measures the same
pipeline with this host's constants; and an image-size sweep shows the
cost structure (checkpoint + transfer scale with size, restart does not).
"""

import os

import pytest

from _harness import report, table
from repro.analysis.calibration import RFORK_LINK, NetworkProfile
from repro.distrib.netsim import SimulatedLink
from repro.distrib.rfork import RemoteFork


def _task_70k(state):
    return sum(state["payload"][:100])


def model_1989():
    rf = RemoteFork(SimulatedLink(RFORK_LINK))
    return rf.model(70 * 1024)


def size_sweep():
    rf = RemoteFork(SimulatedLink(RFORK_LINK))
    rows = []
    for kib in (10, 35, 70, 140, 280):
        cost = rf.model(kib * 1024)
        rows.append((kib, cost.checkpoint_s, cost.transfer_s,
                     cost.restart_s, cost.total_s))
    return rows


def real_rfork_70k():
    payload = bytes(os.urandom(70 * 1024 - 2048))  # ~70K image after headers
    rf = RemoteFork(SimulatedLink(RFORK_LINK))
    result, cost = rf.execute(_task_70k, {"payload": payload}, name="70k-task")
    return result, cost, payload


def test_rfork_model_1989(benchmark):
    cost = benchmark.pedantic(model_1989, iterations=1, rounds=1)
    text = (
        f"rfork of a 70K process (calibrated 1989 model):\n"
        f"  checkpoint : {cost.checkpoint_s:.3f} s\n"
        f"  transfer   : {cost.transfer_s:.3f} s\n"
        f"  restart    : {cost.restart_s:.3f} s\n"
        f"  total      : {cost.total_s:.3f} s\n"
        "(paper: checkpoint slightly under 1 s; observed total ~1.3 s)"
    )
    report("sec34_rfork_model", text)
    assert 0.7 < cost.checkpoint_s < 1.0  # "slightly less than a second"
    assert 1.1 < cost.total_s < 1.6  # "about 1.3 seconds"
    # the checkpoint dominates ("the major cost")
    assert cost.checkpoint_s > cost.transfer_s
    assert cost.checkpoint_s > cost.restart_s


def test_rfork_size_sweep(benchmark):
    rows = benchmark.pedantic(size_sweep, iterations=1, rounds=1)
    text = table(
        ["KiB", "checkpoint (s)", "transfer (s)", "restart (s)", "total (s)"],
        rows, fmt="8.3f",
    )
    report("sec34_rfork_sweep", text)
    totals = [r[4] for r in rows]
    assert totals == sorted(totals)
    # restart cost is size-independent; checkpoint and transfer are linear
    restarts = {r[3] for r in rows}
    assert len(restarts) == 1
    assert rows[-1][1] / rows[0][1] == pytest.approx(28.0, rel=0.01)


def test_on_demand_vs_eager_migration(benchmark):
    """The paper's closing note on [23]: "more sophisticated migration
    schemes, using 'on-demand' state management techniques". A 70K image
    on the calibrated 1989 link: ship everything up front vs fault pages
    lazily, as a function of how much of the image the restarted process
    actually touches."""
    from repro.distrib.netstore import DemandPagedImage, NetworkStore, breakeven_fraction
    from repro.memory.store import SingleLevelStore

    PAGE = 2048
    IMAGE = 70 * 1024

    def run():
        rows = []
        for fraction in (0.05, 0.2, 0.5, 0.8, 1.0):
            netstore = NetworkStore(
                SingleLevelStore(page_size=PAGE), SimulatedLink(RFORK_LINK)
            )
            image, _ = DemandPagedImage.publish(netstore, "ckpt", bytes(IMAGE))
            reader = image.reader()
            touched = int(fraction * image.pages)
            for page in range(touched):
                reader.read(page * PAGE, 1)
            acct = reader.accounting()
            rows.append(
                (fraction, acct.pages_fetched, acct.transfer_s,
                 image.eager_fetch_time())
            )
        link = SimulatedLink(RFORK_LINK)
        return rows, breakeven_fraction(IMAGE, link, PAGE)

    rows, breakeven = benchmark.pedantic(run, iterations=1, rounds=1)
    text = table(
        ["touch fraction", "pages fetched", "lazy transfer (s)", "eager (s)"],
        rows, fmt="8.3f",
    )
    text += f"\n\nbreakeven touch fraction on this link: {breakeven:.3f}"
    report("sec34_rfork_on_demand", text)

    # sparse restarts: lazy wins; dense restarts: eager wins; the
    # crossover matches the closed form
    for fraction, _, lazy, eager in rows:
        if fraction < breakeven * 0.8:
            assert lazy < eager
        if fraction > min(1.0, breakeven * 1.2):
            assert lazy > eager
    lazies = [r[2] for r in rows]
    assert lazies == sorted(lazies)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
def test_real_rfork_pipeline(benchmark):
    result, cost, payload = benchmark.pedantic(real_rfork_70k, iterations=1, rounds=1)
    text = (
        f"real checkpoint -> simulated ship -> forked restart on this host:\n"
        f"  image size : {cost.image_bytes} bytes\n"
        f"  checkpoint : {cost.checkpoint_s * 1000:.3f} ms (real)\n"
        f"  transfer   : {cost.transfer_s:.3f} s (simulated 1989 link)\n"
        f"  restart    : {cost.restart_s * 1000:.3f} ms (real fork+run)\n"
    )
    report("sec34_rfork_real_host", text)
    assert result == sum(payload[:100])
    assert 60_000 <= cost.image_bytes <= 80_000
    # the simulated link still charges 1989 prices for the ship
    assert cost.transfer_s == pytest.approx(
        RFORK_LINK.latency_s + cost.image_bytes / RFORK_LINK.bandwidth_bytes_s
    )
    # modern checkpointing crushes the 1989 second
    assert cost.checkpoint_s < 0.85


if __name__ == "__main__":
    print(model_1989())
    for row in size_sweep():
        print(row)
