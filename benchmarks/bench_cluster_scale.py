"""Cluster scale-out and shard-kill recovery: throughput + exactly-once.

Three experiments over :mod:`repro.cluster`:

- **scale sweep** — the same tenant burst against 1, 2 and 4 shards.
  Each shard brings its own world budget and worker pool, so committed
  throughput must rise monotonically with the shard count (the
  scale-out headline);
- **kill phase** — a 4-shard burst with one shard crashed mid-burst and
  taken over (journal replay + re-land on survivors). Every admitted
  request still commits, and kill-phase throughput holds ≥ 70% of the
  healthy 4-shard run — losing a quarter of the cluster costs capacity,
  not correctness and not a stampede;
- **kill fuzz** — many seeds of the fault plan's ``cluster`` site decide
  which shards die and when (up to 2 of 3, mid-burst,
  ``shard_crash_fraction`` placing the crash). After each run the
  cross-journal audit proves exactly-once: every committed request's
  ``block`` transaction applied in exactly one shard journal.

``--quick`` shrinks bursts and seed count for CI smoke.
"""

import sys
import time

from _harness import metric, report, report_json, table
from repro.cluster import ClusterRouter, ClusterShard
from repro.faults.plan import FaultKind, FaultPlan

TENANTS = 16  # enough tenants that the ring balances 1/2/4-shard splits
SLOTS_PER_SHARD = 2
WORKERS_PER_SHARD = 4
SHARD_COUNTS = (1, 2, 4)

BURST = {"full": 64, "quick": 24}
FUZZ_SEEDS = {"full": 25, "quick": 5}
FUZZ_BURST = {"full": 30, "quick": 18}

WORK_S = 0.004

HEADERS = ("phase", "shards", "offered", "committed", "failover", "thru_rps")


def make_alts(i):
    def compute(ws):
        time.sleep(WORK_S)
        return i * 7

    return [compute]


def make_router(n_shards, fault_plan=None, queue_depth=256):
    # queue depth sized to the burst: this bench measures serving
    # throughput and failover, not admission-control backpressure
    # (bench_serve_throughput owns that story)
    shards = [
        ClusterShard(
            sid, slots=SLOTS_PER_SHARD, workers=WORKERS_PER_SHARD,
            queue_depth=queue_depth,
        )
        for sid in range(n_shards)
    ]
    return ClusterRouter(shards, fault_plan=fault_plan)


def run_burst(router, n_requests, kill=None):
    """Submit a burst; ``kill`` is an optional {shard_id: request_index}
    schedule executed inline (crash + takeover mid-burst)."""
    kill = dict(kill or {})
    tickets = []
    start = time.monotonic()
    for i in range(n_requests):
        for sid, at in list(kill.items()):
            if i == at:
                router.kill_shard(sid)
                router.takeover(sid)
                del kill[sid]
        tickets.append(router.submit(f"tenant-{i % TENANTS}", make_alts(i)))
    for sid in kill:
        router.kill_shard(sid)
        router.takeover(sid)
    results = [t.result(timeout=60.0) for t in tickets]
    wall_s = time.monotonic() - start
    return results, wall_s


def check_burst(results, label):
    committed = [r for r in results if r.committed]
    assert len(committed) == len(results), (
        f"{label}: {len(results) - len(committed)} requests did not commit: "
        + str([(r.status, r.reason) for r in results if not r.committed][:5])
    )
    for i, r in enumerate(results):
        assert r.value == i * 7, f"{label}: request {i} returned {r.value!r}"


def audit(router, results, label):
    """Cross-journal exactly-once: committed seqs applied exactly once."""
    counts = router.audit_applied()
    violations = 0
    for r in results:
        if not r.committed:
            continue
        if counts.get(r.seq, 0) != 1:
            violations += 1
    assert violations == 0, (
        f"{label}: {violations} requests violated exactly-once"
    )
    return violations


def scale_sweep(n_requests):
    rows = []
    thru = {}
    for n_shards in SHARD_COUNTS:
        router = make_router(n_shards).start(detect=False)
        try:
            results, wall_s = run_burst(router, n_requests)
            check_burst(results, f"scale[{n_shards}]")
            audit(router, results, f"scale[{n_shards}]")
        finally:
            router.stop()
        moved = sum(1 for r in results if r.failover)
        thru[n_shards] = len(results) / wall_s
        rows.append(
            ("scale", n_shards, len(results), len(results), moved, thru[n_shards])
        )
    return rows, thru


def kill_phase(n_requests, healthy_thru):
    n_shards = 4
    router = make_router(n_shards).start(detect=False)
    try:
        victim = router.ring.route("tenant-0")
        results, wall_s = run_burst(
            router, n_requests, kill={victim: n_requests // 2}
        )
        check_burst(results, "kill")
        audit(router, results, "kill")
        moved = sum(1 for r in results if r.failover)
    finally:
        router.stop()
    thru = len(results) / wall_s
    row = ("kill", n_shards, len(results), len(results), moved, thru)
    return row, thru, thru / healthy_thru, moved


def kill_fuzz(n_seeds, n_requests):
    """Seeded mid-burst shard kills; returns total exactly-once violations."""
    violations = 0
    kills = 0
    for seed in range(1, n_seeds + 1):
        plan = FaultPlan(
            seed=seed,
            rates={FaultKind.SHARD_CRASH: 0.6},
            shard_crash_fraction=0.5,
        )
        router = make_router(3, fault_plan=plan).start(detect=False)
        try:
            doomed = [
                (sid, router.crash_decision(sid, epoch=0))
                for sid in range(3)
                if router.crash_decision(sid, epoch=0) is not None
            ][:2]  # keep one survivor
            schedule = {
                sid: int(frac * n_requests) for sid, frac in doomed
            }
            kills += len(schedule)
            results, _ = run_burst(router, n_requests, kill=schedule)
            check_burst(results, f"fuzz[{seed}]")
            violations += audit(router, results, f"fuzz[{seed}]")
        finally:
            router.stop()
    return violations, kills


def sweep(mode):
    rows, thru = scale_sweep(BURST[mode])
    kill_row, kill_thru, recovery, moved = kill_phase(BURST[mode], thru[4])
    rows.append(kill_row)
    violations, kills = kill_fuzz(FUZZ_SEEDS[mode], FUZZ_BURST[mode])
    return {
        "rows": rows,
        "thru": thru,
        "kill_thru": kill_thru,
        "recovery": recovery,
        "failover_requests": moved,
        "fuzz_violations": violations,
        "fuzz_kills": kills,
        "fuzz_seeds": FUZZ_SEEDS[mode],
    }


def _check(out):
    thru = out["thru"]
    assert thru[1] < thru[2] < thru[4], (
        "throughput must rise monotonically with shard count: "
        f"{thru[1]:.1f} / {thru[2]:.1f} / {thru[4]:.1f} req/s"
    )
    assert out["recovery"] >= 0.70, (
        f"kill-phase throughput recovered only {out['recovery']:.0%} "
        "of the healthy 4-shard run (floor: 70%)"
    )
    assert out["fuzz_violations"] == 0, "kill fuzz: exactly-once violated"
    assert out["fuzz_kills"] > 0, "kill fuzz never killed a shard"


def _metrics(out):
    return [
        metric("cluster_thru_1shard", out["thru"][1], "req/s"),
        metric("cluster_thru_2shard", out["thru"][2], "req/s"),
        metric("cluster_thru_4shard", out["thru"][4], "req/s"),
        metric("cluster_scaleup_4v1", out["thru"][4] / out["thru"][1], "x"),
        metric("cluster_kill_thru", out["kill_thru"], "req/s"),
        metric("cluster_kill_recovery", out["recovery"], "ratio"),
        metric("cluster_kill_failover_requests",
               float(out["failover_requests"]), "count"),
        metric("cluster_fuzz_seeds", float(out["fuzz_seeds"]), "count"),
        metric("cluster_fuzz_shard_kills", float(out["fuzz_kills"]), "count"),
        metric("cluster_exactly_once_violations",
               float(out["fuzz_violations"]), "count"),
    ]


def _render(out):
    return table(HEADERS, out["rows"], fmt="8.2f")


def test_cluster_scale(benchmark):
    out = benchmark.pedantic(sweep, args=("full",), iterations=1, rounds=1)
    report("cluster_scale", _render(out))
    report_json("cluster_scale", _metrics(out))
    _check(out)


if __name__ == "__main__":
    mode = "quick" if "--quick" in sys.argv[1:] else "full"
    out = sweep(mode)
    print(_render(out))
    report_json("cluster_scale", _metrics(out))
    _check(out)
    print("ok")
