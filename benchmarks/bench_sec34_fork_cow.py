"""Section 3.4: measured fork / copy-on-write overheads.

The paper's constants:

- fork of a 320K address space: ~31 ms on the AT&T 3B2/310, ~12 ms on
  the HP 9000/350;
- page-copy service rate: 326 2K-pages/s (3B2), 1034 4K-pages/s (HP);
- observed write fractions between 0.2 and 0.5 [18].

The calibrated simulated machines regenerate the fork and copy numbers;
a write-fraction sweep shows the COW cost scaling the paper's analysis
assumes; and (when the host allows) a real ``os.fork`` microbenchmark
reports this machine's modern constants for comparison.
"""

import os
import time

import pytest

from _harness import report, table
from repro.analysis.calibration import ATT_3B2_310, HP_9000_350
from repro.core import Alternative, run_alternatives_sim
from repro.memory.frame import FramePool
from repro.memory.heap import PagedHeap


def simulated_fork_times():
    """alt_spawn cost for a 320K space on both calibrated machines."""
    rows = []
    for profile in (ATT_3B2_310, HP_9000_350):
        pages = (320 * 1024) // profile.page_size
        rows.append((profile.name, profile.page_size, pages,
                     profile.fork_cost(pages) * 1000))
    return rows


def simulated_copy_rates():
    rows = []
    for profile in (ATT_3B2_310, HP_9000_350):
        pages_per_s = 1.0 / profile.page_copy_s
        rows.append((profile.name, profile.page_size, pages_per_s))
    return rows


def write_fraction_sweep(profile=ATT_3B2_310, pages: int = 160):
    """COW charge for a child touching a growing fraction of its space.

    Executed on the simulation kernel: the child really forks a paged
    heap and really writes; the runtime overhead charged is the measured
    page copies times the machine's copy cost.
    """
    rows = []
    space_bytes = pages * profile.page_size
    for fraction in (0.0, 0.1, 0.2, 0.35, 0.5, 1.0):
        to_touch = int(fraction * pages)

        def child(ctx, _n=to_touch, _ps=profile.page_size):
            for i in range(_n):
                yield ctx.put(f"page{i}", bytes(_ps // 2))
            return _n

        outcome, kernel = run_alternatives_sim(
            [Alternative(child, name=f"touch-{to_touch}")],
            initial={f"page{i}": bytes(profile.page_size // 2) for i in range(pages)},
            profile=profile,
            cpus=1,
        )
        measured = outcome.extras["state"]
        _ = measured
        copies = kernel.stats.pages_copied
        rows.append(
            (
                fraction,
                to_touch,
                copies,
                outcome.overhead.runtime_s * 1000,
            )
        )
    _ = space_bytes
    return rows


def real_fork_microbench(space_bytes: int = 320 * 1024, trials: int = 20):
    """fork()+exit of a process holding ``space_bytes`` of dirty heap."""
    blob = bytearray(os.urandom(space_bytes))
    times = []
    for _ in range(trials):
        t0 = time.perf_counter()
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        times.append(time.perf_counter() - t0)
    _ = blob
    return min(times) * 1000, (sum(times) / len(times)) * 1000


def test_calibrated_fork_times(benchmark):
    rows = benchmark.pedantic(simulated_fork_times, iterations=1, rounds=1)
    text = table(["machine", "page size", "pages", "fork (ms)"], rows, fmt="8.2f")
    by_name = {r[0]: r[3] for r in rows}
    # the paper's measured values, by construction of the calibration
    assert by_name["AT&T 3B2/310"] == pytest.approx(31.0, rel=0.01)
    assert by_name["HP 9000/350"] == pytest.approx(12.0, rel=0.01)

    rate_rows = simulated_copy_rates()
    text += "\n\n" + table(["machine", "page size", "pages copied / s"],
                           rate_rows, fmt="8.1f")
    rates = {r[0]: r[2] for r in rate_rows}
    assert rates["AT&T 3B2/310"] == pytest.approx(326.0, rel=0.01)
    assert rates["HP 9000/350"] == pytest.approx(1034.0, rel=0.01)
    report("sec34_fork_cow_calibration", text)


def test_write_fraction_sweep(benchmark):
    rows = benchmark.pedantic(write_fraction_sweep, iterations=1, rounds=1)
    text = table(
        ["write fraction", "values touched", "pages copied", "COW cost (ms)"],
        rows, fmt="8.2f",
    )
    report(
        "sec34_write_fraction",
        text + "\n\n(AT&T 3B2/310 profile, 160 half-page values; paper [18] "
        "observed fractions 0.2-0.5)",
    )
    # COW cost scales with the fraction actually written, from zero
    costs = [r[3] for r in rows]
    assert costs == sorted(costs)
    assert costs[0] == pytest.approx(0.0, abs=1e-6)
    assert all(c > 0 for c in costs[1:])
    # the charge is exactly copies x the machine's calibrated copy cost
    for _, _, copies, cost_ms in rows:
        assert cost_ms == pytest.approx(copies * ATT_3B2_310.page_copy_s * 1000)
    # copies grow with the touched fraction but never exceed the touched
    # values (two half-page values can share one privatized page)
    for fraction, touched, copies, _ in rows[1:]:
        assert 0 < copies <= touched + 2


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
def test_real_fork_for_comparison(benchmark):
    best_ms, mean_ms = benchmark.pedantic(real_fork_microbench, iterations=1, rounds=1)
    report(
        "sec34_fork_real_host",
        f"this host: fork()+wait of a 320K-dirty-heap process\n"
        f"  best of 20: {best_ms:.3f} ms\n  mean of 20: {mean_ms:.3f} ms\n"
        f"(paper: 31 ms on the 3B2/310, 12 ms on the HP 9000/350)",
    )
    # a modern machine forks this at least as fast as 1989 hardware
    assert best_ms < 31.0


if __name__ == "__main__":
    print(simulated_fork_times())
    print(simulated_copy_rates())
    print(write_fraction_sweep())
