"""Ablation: page-based vs value-based world granularity (paper §5).

Quantifies the paper's claim against Wilson's "Alternate Universes":
page-based isolation "trades a higher startup cost against cheaper
referencing from that point on". The model (repro.analysis.granularity)
charges the page scheme a page-map copy + COW page copies, and the value
scheme a per-reference software check + per-object copies; the bench
sweeps reference intensity and object size to map the crossover.
"""

import math

import pytest

from _harness import report, table
from repro.analysis.granularity import (
    AccessProfile,
    GranularityCosts,
    crossover_references,
    page_based_overhead,
    preferred_scheme,
    value_based_overhead,
)


def reference_sweep():
    rows = []
    for references in (10, 100, 1_000, 10_000, 100_000, 1_000_000):
        profile = AccessProfile(
            objects=200, object_bytes=1024, objects_written=40,
            references=references,
        )
        rows.append(
            (
                references,
                page_based_overhead(profile) * 1000,
                value_based_overhead(profile) * 1000,
                preferred_scheme(profile),
            )
        )
    return rows


def object_size_sweep():
    rows = []
    for object_bytes in (16, 64, 256, 1024, 4096):
        profile = AccessProfile(
            objects=200, object_bytes=object_bytes, objects_written=40,
            references=50_000,
        )
        rows.append(
            (
                object_bytes,
                page_based_overhead(profile) * 1000,
                value_based_overhead(profile) * 1000,
                preferred_scheme(profile),
            )
        )
    return rows


def test_reference_intensity_crossover(benchmark):
    rows = benchmark.pedantic(reference_sweep, iterations=1, rounds=1)
    text = table(
        ["references", "page-based (ms)", "value-based (ms)", "winner"],
        rows, fmt="10.3f",
    )
    base = AccessProfile(objects=200, object_bytes=1024, objects_written=40,
                         references=0)
    cross = crossover_references(base)
    text += f"\n\ncrossover at ~{cross:,.0f} references"
    report("ablation_granularity_refs", text)

    # fine-grained work prefers values, reference-heavy work prefers pages
    assert rows[0][3] == "value"
    assert rows[-1][3] == "page"
    # page cost is reference-independent; value cost grows linearly
    page_costs = {r[1] for r in rows}
    assert max(page_costs) - min(page_costs) < 1e-9
    value_costs = [r[2] for r in rows]
    assert value_costs == sorted(value_costs)
    # the crossover the table shows matches the closed form
    for references, _, _, winner in rows:
        assert winner == ("value" if references < cross else "page")
    assert math.isfinite(cross)


def test_object_size_sweep(benchmark):
    rows = benchmark.pedantic(object_size_sweep, iterations=1, rounds=1)
    text = table(
        ["object bytes", "page-based (ms)", "value-based (ms)", "winner"],
        rows, fmt="10.3f",
    )
    report("ablation_granularity_objsize", text)
    # at this reference intensity the page scheme wins across sizes
    # except possibly the tiniest objects; page overhead grows with state
    page_costs = [r[1] for r in rows]
    assert page_costs == sorted(page_costs)
    assert rows[-1][3] == "page"


def test_measured_schemes_on_identical_workload(benchmark):
    """Not just the model: run one speculative workload through BOTH
    executable substrates — the paged COW heap and the value-granularity
    store — and price their actual instrumentation with the same cost
    constants."""
    from repro.memory.frame import FramePool
    from repro.memory.heap import PagedHeap
    from repro.memory.valueworlds import VersionedStore

    OBJECTS, OBJ_BYTES, WRITES, READS = 120, 512, 20, 30_000
    costs = GranularityCosts(page_size=2048)

    def run():
        base = {f"k{i}": bytes(OBJ_BYTES) for i in range(OBJECTS)}

        # page-based: fork a paged heap, do the reads (free) and writes
        pool = FramePool(costs.page_size)
        heap = PagedHeap(pool=pool)
        heap.update(base)
        child = heap.fork()
        for i in range(WRITES):
            child.put(f"k{i}", bytes(OBJ_BYTES))
        for i in range(READS):
            child.get(f"k{i % OBJECTS}")
        page_cost = (
            pool.stats.pte_copies * costs.pte_copy_s
            + pool.stats.pages_copied * costs.page_copy_s
        )

        # value-based: same accesses through a versioned store
        store = VersionedStore(base)
        world = store.root_world().fork()
        for i in range(WRITES):
            world.put(f"k{i}", bytes(OBJ_BYTES))
        for i in range(READS):
            world.get(f"k{i % OBJECTS}")
        value_cost = (
            store.stats.ref_checks * costs.ref_check_s
            + store.stats.object_copies * costs.object_copy_fixed_s
            + store.stats.bytes_copied * costs.object_copy_s_per_byte
        )
        return page_cost, value_cost, pool.stats, store.stats

    page_cost, value_cost, page_stats, value_stats = benchmark.pedantic(
        run, iterations=1, rounds=1
    )
    report(
        "ablation_granularity_measured",
        f"identical workload ({OBJECTS} objects x {OBJ_BYTES} B, "
        f"{WRITES} writes, {READS} reads):\n"
        f"  page-based : {page_cost * 1000:8.3f} ms "
        f"({page_stats.pte_copies} PTEs, {page_stats.pages_copied} page copies)\n"
        f"  value-based: {value_cost * 1000:8.3f} ms "
        f"({value_stats.ref_checks} ref checks, "
        f"{value_stats.object_copies} object copies)",
    )
    # reference-heavy workload: the per-reference software tax loses to
    # the MMU-backed page scheme (the paper's positioning)
    assert page_cost < value_cost
    # copies happened on both sides, but reads were free only for pages
    assert page_stats.pages_copied > 0
    assert value_stats.ref_checks > READS


def test_papers_positioning_holds(benchmark):
    """Large-grained parallelism (the paper's target domain) is firmly in
    the page regime; language-level fine grain is firmly value."""

    def classify():
        coarse = AccessProfile(
            objects=500, object_bytes=2048, objects_written=100,
            references=5_000_000,  # a long computation
        )
        fine = AccessProfile(
            objects=20, object_bytes=32, objects_written=4,
            references=50,  # an expression-level speculation
        )
        return preferred_scheme(coarse), preferred_scheme(fine)

    coarse_winner, fine_winner = benchmark.pedantic(classify, iterations=1, rounds=1)
    assert coarse_winner == "page"
    assert fine_winner == "value"


if __name__ == "__main__":
    for row in reference_sweep():
        print(row)
    for row in object_size_sweep():
        print(row)
