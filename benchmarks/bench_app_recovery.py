"""Application bench: distributed execution of recovery blocks (§4.1).

The paper's claim: because every alternate of a recovery block is
guaranteed the same initial state, they can run concurrently — the
response-time cost of a failing primary disappears (a spare was already
running). The bench sweeps the primary's failure behaviour and compares
classic sequential standby-spares against the worlds execution on the
simulation kernel (deterministic virtual time).
"""

import pytest

from _harness import report, table
from repro.apps.recovery import RecoveryBlock

PRIMARY_S = 1.0
SPARE_S = 1.2
CRUDE_S = 0.4

# acceptance: a result is acceptable when its error bound is tight enough
TOLERANCE = 0.3


def _alternates(primary_fails: bool, crude_acceptable: bool):
    def primary(ws):
        if primary_fails:
            raise RuntimeError("primary fault")
        ws["estimate"] = 10.0
        ws["error"] = 0.05
        return "primary"

    def spare(ws):
        ws["estimate"] = 10.02
        ws["error"] = 0.2
        return "spare"

    def crude(ws):
        ws["estimate"] = 10.5
        ws["error"] = 0.1 if crude_acceptable else 0.9
        return "crude"

    return primary, spare, crude


def _accept(ws, _value):
    return ws.get("error", 1.0) < TOLERANCE


def run_case(primary_fails: bool, crude_acceptable: bool):
    primary, spare, crude = _alternates(primary_fails, crude_acceptable)
    block = RecoveryBlock(_accept, primary, spare, crude)

    # sequential virtual cost: sum of attempted alternates' durations
    durations = {"primary": PRIMARY_S, "spare": SPARE_S, "crude": CRUDE_S}
    seq = block.run_sequential({})
    seq_virtual = sum(durations[a] for a in seq.attempts)

    par = block.run_parallel(
        {}, backend="sim", sim_costs=[PRIMARY_S, SPARE_S, CRUDE_S], cpus=3
    )
    return seq, seq_virtual, par


def generate():
    rows = []
    for primary_fails, crude_ok, label in [
        (False, False, "healthy primary"),
        (True, False, "primary faults"),
        (True, True, "primary faults, crude spare acceptable"),
    ]:
        seq, seq_virtual, par = run_case(primary_fails, crude_ok)
        rows.append(
            (
                label,
                seq.alternate,
                seq_virtual,
                par.alternate,
                par.outcome.elapsed_s,
            )
        )
    return rows


def test_recovery_block_response_times(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["case", "seq winner", "seq virtual (s)", "par winner", "par virtual (s)"],
        rows, fmt="8.3f",
    )
    report("app_recovery_blocks", text)

    by = {r[0]: r for r in rows}
    healthy = by["healthy primary"]
    faulty = by["primary faults"]
    crude_ok = by["primary faults, crude spare acceptable"]

    # healthy: sequential pays the primary only; parallel about the same
    assert healthy[1] == "primary"
    assert healthy[2] == pytest.approx(PRIMARY_S)
    assert healthy[4] == pytest.approx(PRIMARY_S, rel=0.05)

    # faulty primary: sequential pays primary + spare in series; the
    # worlds execution still pays ~one spare's duration
    assert faulty[1] == "spare" and faulty[3] == "spare"
    assert faulty[2] == pytest.approx(PRIMARY_S + SPARE_S)
    assert faulty[4] == pytest.approx(SPARE_S, rel=0.05)
    assert faulty[4] < faulty[2] / 1.5

    # an acceptable crude spare makes the parallel block even faster
    # (fastest acceptable wins), while sequential still walks the chain
    assert crude_ok[3] == "crude"
    assert crude_ok[4] == pytest.approx(CRUDE_S, rel=0.1)


def test_fault_free_overhead_is_small(benchmark):
    """Racing spares costs little when the primary is healthy."""

    def run():
        _, seq_virtual, par = run_case(False, False)
        return par.outcome.elapsed_s - seq_virtual

    extra = benchmark.pedantic(run, iterations=1, rounds=1)
    assert extra < 0.01  # worlds overhead only


if __name__ == "__main__":
    for row in generate():
        print(row)
