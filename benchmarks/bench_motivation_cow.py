"""The abstract's motivation, measured: COW vs naive state copying.

"Problems with exploring multiple alternatives in parallel include ...
(2) combinatorial explosion in the amount of state which must be
preserved. These are solved by ... an application of 'copy-on-write'
virtual memory management."

The bench spawns ever wider blocks over a fixed-size state and compares
the *physical* memory the COW worlds actually consume against the naive
cost of giving every alternative a full copy — plus the same comparison
for nested (two-level) speculation where naive copying compounds.
"""

import pytest

from _harness import report, table
from repro.core import Alternative, run_alternatives_sim

STATE_VALUES = 64
VALUE_BYTES = 1000
TOUCH = 3  # values each alternative actually writes


def _initial():
    return {f"v{i}": bytes(VALUE_BYTES) for i in range(STATE_VALUES)}


def _writer(index: int) -> Alternative:
    def body(ctx, _i=index):
        for k in range(TOUCH):
            yield ctx.put(f"v{(_i * TOUCH + k) % STATE_VALUES}", bytes(VALUE_BYTES))
        yield ctx.compute(1.0 + 0.01 * _i)
        return _i

    return Alternative(body, name=f"writer{index}")


def width_sweep():
    rows = []
    for width in (1, 2, 4, 8, 16, 32):
        outcome, kernel = run_alternatives_sim(
            [_writer(i) for i in range(width)],
            initial=_initial(),
            cpus=width,
        )
        assert not outcome.failed
        state_pages = None
        # peak physical frames the pool ever held concurrently is not
        # tracked; use allocations-minus-frees at the spawn step instead:
        # measure live frames right after the block (committed state) and
        # total copies made during the run.
        copied = kernel.stats.pages_copied
        page = kernel.profile.page_size
        base_pages = (STATE_VALUES * (VALUE_BYTES + 50)) // page + 1
        naive_pages = base_pages * width  # full copy per alternative
        rows.append(
            (
                width,
                base_pages,
                copied,
                naive_pages,
                naive_pages / max(copied, 1),
            )
        )
        _ = state_pages
    return rows


def test_cow_defeats_state_explosion(benchmark):
    rows = benchmark.pedantic(width_sweep, iterations=1, rounds=1)
    text = table(
        ["alternatives", "state pages", "pages copied (COW)",
         "pages copied (naive)", "COW advantage"],
        rows, fmt="8.1f",
    )
    report(
        "motivation_cow",
        text + f"\n\n({STATE_VALUES} values x {VALUE_BYTES} B state; each "
        f"alternative rewrites {TOUCH} values)",
    )
    for width, base_pages, copied, naive, advantage in rows:
        # COW copies scale with what alternatives WRITE, not state size
        assert copied <= width * (TOUCH + 3)
        # naive copying scales with state x worlds; the advantage holds
        # across the sweep — the "explosion" tamed
        if width >= 2:
            assert advantage > 8.0


def test_nested_speculation_compounds(benchmark):
    """Two nested levels: naive copying squares, COW stays linear in
    writes."""

    def run():
        def inner(ctx, tag):
            yield ctx.put(f"inner-{tag}", bytes(VALUE_BYTES))
            yield ctx.compute(0.1)
            return tag

        def outer(ctx, tag):
            out = yield from ctx.run_alternatives(
                [
                    Alternative(lambda c, _t=f"{tag}.{j}": inner(c, _t),
                                name=f"inner{tag}.{j}")
                    for j in range(4)
                ]
            )
            yield ctx.compute(0.1 * (tag + 1))
            return out.value

        outcome, kernel = run_alternatives_sim(
            [
                Alternative(lambda c, _i=i: outer(c, _i), name=f"outer{i}")
                for i in range(4)
            ],
            initial=_initial(),
            cpus=20,
        )
        return outcome, kernel

    outcome, kernel = benchmark.pedantic(run, iterations=1, rounds=1)
    assert not outcome.failed
    page = kernel.profile.page_size
    base_pages = (STATE_VALUES * (VALUE_BYTES + 50)) // page + 1
    naive_pages = base_pages * (4 + 4 * 4)  # every world a full copy
    assert kernel.stats.pages_copied < naive_pages / 5


if __name__ == "__main__":
    for row in width_sweep():
        print(row)
