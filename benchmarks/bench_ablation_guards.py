"""Ablation: guard placement (paper section 2.2, Figure 1 text).

"The GUARDs can be executed serially before spawning the alternatives
(thus improving throughput at the expense of response time); in the
child process; at the synchronization point; or at any combination of
these places, for redundancy."

The bench runs a block where half the alternatives are doomed (their
guards reject) under each placement and reports the throughput side
(CPU-seconds consumed, speculation waste) against the response side —
using the kernel's utilization report.
"""

import pytest

from _harness import report, table
from repro.core import Alternative, Guard, run_alternatives_sim
from repro.core.alternative import GuardPlacement

N_GOOD = 2
N_DOOMED = 4
WORK_S = 2.0


def _build(placement: GuardPlacement):
    alternatives = []
    for i in range(N_GOOD):
        alternatives.append(
            Alternative(
                lambda ws, _i=i: f"good{_i}",
                name=f"good{i}",
                sim_cost=WORK_S + 0.1 * i,
                guard=Guard(check=lambda ws: True, accept=lambda ws, v: True,
                            placement=placement),
            )
        )
    for i in range(N_DOOMED):
        alternatives.append(
            Alternative(
                lambda ws, _i=i: f"doomed{_i}",
                name=f"doomed{i}",
                sim_cost=WORK_S,
                guard=Guard(check=lambda ws: False, accept=lambda ws, v: False,
                            placement=placement),
            )
        )
    return alternatives


def run_placement(placement: GuardPlacement):
    outcome, kernel = run_alternatives_sim(
        _build(placement), cpus=2  # contended: wasted work hurts response too
    )
    util = kernel.utilization_report()
    return outcome, util


def generate():
    rows = []
    for placement, label in [
        (GuardPlacement.BEFORE_SPAWN, "before-spawn"),
        (GuardPlacement.IN_CHILD, "in-child"),
        (GuardPlacement.AT_SYNC, "at-sync"),
    ]:
        outcome, util = run_placement(placement)
        rows.append(
            (
                label,
                outcome.value,
                outcome.elapsed_s,
                util.total_cpu_s,
                util.speculation_waste,
            )
        )
    return rows


def test_guard_placement_ablation(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["placement", "winner", "response (s)", "CPU consumed (s)", "waste frac"],
        rows,
    )
    report(
        "ablation_guard_placement",
        text + f"\n\n({N_GOOD} viable + {N_DOOMED} doomed alternatives of "
        f"{WORK_S} s each, 2 CPUs)",
    )
    by = {r[0]: r for r in rows}
    # all placements select a viable alternative
    assert all(str(r[1]).startswith("good") for r in rows)
    # before-spawn never runs the doomed work: least CPU consumed
    assert by["before-spawn"][3] < by["in-child"][3]
    assert by["before-spawn"][3] < by["at-sync"][3]
    # entry checks in the child stop doomed work immediately, so in-child
    # consumes no more than at-sync (which burns the full doomed cost)
    assert by["in-child"][3] <= by["at-sync"][3]
    # under CPU contention, not spawning the doomed work also gives the
    # best response time
    assert by["before-spawn"][2] <= by["in-child"][2] + 1e-9
    # at-sync wastes the largest fraction of consumed CPU on speculation
    assert by["at-sync"][4] >= by["in-child"][4]


def test_uncontended_response_equivalence(benchmark):
    """With one CPU per world, placements differ in throughput only."""

    def run():
        out = {}
        for placement in (GuardPlacement.BEFORE_SPAWN, GuardPlacement.AT_SYNC):
            outcome, kernel = run_alternatives_sim(
                _build(placement), cpus=N_GOOD + N_DOOMED
            )
            out[placement] = (outcome.elapsed_s, kernel.utilization_report().total_cpu_s)
        return out

    out = benchmark.pedantic(run, iterations=1, rounds=1)
    resp_pre, cpu_pre = out[GuardPlacement.BEFORE_SPAWN]
    resp_sync, cpu_sync = out[GuardPlacement.AT_SYNC]
    assert resp_pre == pytest.approx(resp_sync, rel=0.02)
    assert cpu_pre < cpu_sync  # the throughput gap remains


if __name__ == "__main__":
    for row in generate():
        print(row)
