"""Application bench: OR-parallelism in Prolog (paper section 4.2).

Not a numbered table in the paper, but the section's core claim made
measurable: at a choice point whose branches have wildly different
costs, committed-choice OR-parallel execution pays ~the cheapest
successful branch while depth-first sequential execution pays the sum of
every branch before the answer. The bench reports both, plus the
utilization ledger (OR-parallelism buys response time with wasted
speculative inferences).
"""

import pytest

from _harness import report, table
from repro.apps.prolog import Database, ORParallelEngine
from repro.apps.prolog.programs import SKEWED_SEARCH

PER_INFERENCE_S = 1e-4


def generate():
    db = Database.from_source(SKEWED_SEARCH)
    engine = ORParallelEngine(db)

    solution_seq, stats = engine.solve_first_sequential("find(W)")
    seq_inferences = stats.inferences + stats.builtin_calls

    work = engine.branch_work("find(W)")
    branch_rows = [
        (w.index, w.clause_str, w.inferences, "yes" if w.succeeds else "no")
        for w in work
    ]

    solution_par, outcome = engine.solve_first_sim(
        "find(W)", per_inference_s=PER_INFERENCE_S, cpus=len(work)
    )
    return {
        "seq_answer": str(solution_seq),
        "seq_virtual_s": seq_inferences * PER_INFERENCE_S,
        "branch_rows": branch_rows,
        "par_answer": str(solution_par),
        "par_virtual_s": outcome.elapsed_s,
        "winner": outcome.winner.name,
        "total_branch_inferences": sum(w.inferences for w in work),
    }


def test_or_parallel_prolog(benchmark):
    data = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["branch", "clause", "inferences", "finds proof"],
        data["branch_rows"], fmt="6.0f",
    )
    text += (
        f"\n\nsequential: {data['seq_answer']!r} in "
        f"{data['seq_virtual_s']:.4f} virtual s"
        f"\nOR-parallel: {data['par_answer']!r} in "
        f"{data['par_virtual_s']:.4f} virtual s (winner {data['winner']})"
        f"\nspeedup: {data['seq_virtual_s'] / data['par_virtual_s']:.1f}x"
    )
    report("app_prolog_orparallel", text)

    assert data["seq_answer"] == data["par_answer"]
    # committed-choice pays ~the cheapest successful branch
    cheapest = min(r[2] for r in data["branch_rows"] if r[3] == "yes")
    assert data["par_virtual_s"] == pytest.approx(
        cheapest * PER_INFERENCE_S, rel=0.25
    )
    # sequential depth-first paid for the dead ends first
    assert data["seq_virtual_s"] > 5 * data["par_virtual_s"]


def test_throughput_cost_of_or_parallelism(benchmark):
    """The flip side: OR-parallelism consumes more total inferences."""

    def run():
        db = Database.from_source(SKEWED_SEARCH)
        engine = ORParallelEngine(db)
        _, stats = engine.solve_first_sequential("find(W)")
        seq = stats.inferences + stats.builtin_calls
        par_total = sum(w.inferences for w in engine.branch_work("find(W)"))
        return seq, par_total

    seq, par_total = benchmark.pedantic(run, iterations=1, rounds=1)
    # the parallel run explores every branch to completion (or failure):
    # at least as much total work as the sequential prefix
    assert par_total >= seq * 0.9


if __name__ == "__main__":
    data = generate()
    for key, value in data.items():
        print(key, ":", value)
