"""Application bench: Jenkins-Traub quality and real timing.

Library-quality checks on the from-scratch zero finder: accuracy against
``numpy.roots`` across degrees (greedy-paired max error), real wall-clock
timing via pytest-benchmark, and the angle-dispersion profile that makes
the Table I race worthwhile.
"""

import numpy as np
import pytest

from _harness import report, table
from repro.apps.poly.rootfind import Polynomial, find_all_zeros
from repro.apps.poly.rootfind.parallel import default_table_polynomial


def _max_paired_error(zeros, reference) -> float:
    ours = list(np.asarray(zeros, dtype=complex))
    worst = 0.0
    for want in reference:
        best = min(range(len(ours)), key=lambda i: abs(ours[i] - want))
        worst = max(worst, abs(ours[best] - want))
        del ours[best]
    return worst


def accuracy_sweep():
    rng = np.random.default_rng(11)
    rows = []
    for degree in (4, 8, 12, 16, 20, 24):
        coeffs = rng.normal(size=degree + 1) + 1j * rng.normal(size=degree + 1)
        poly = Polynomial(coeffs)
        rep = find_all_zeros(poly, seed=degree)
        error = _max_paired_error(rep.zeros, np.roots(coeffs)) if not rep.failed else float("inf")
        rows.append((degree, rep.failed, error, rep.elapsed_s * 1000,
                     rep.angle_tries))
    return rows


def test_accuracy_vs_numpy(benchmark):
    rows = benchmark.pedantic(accuracy_sweep, iterations=1, rounds=1)
    text = table(
        ["degree", "failed", "max |Δroot| vs numpy", "time (ms)", "angle tries"],
        rows, fmt="10.2e",
    )
    report("app_rootfinder_accuracy", text)
    for degree, failed, error, _, _ in rows:
        assert not failed, f"degree {degree} failed"
        assert error < 1e-7, f"degree {degree}: error {error}"


def test_wilkinson_20(benchmark):
    """The classic ill-conditioned stress case, really benchmarked."""

    def solve():
        return find_all_zeros(Polynomial.wilkinson(20), seed=3)

    rep = benchmark(solve)
    assert not rep.failed
    reals = sorted(z.real for z in rep.zeros)
    assert np.allclose(reals, range(1, 21), atol=2e-2)  # famously sensitive


def test_table_polynomial_timing(benchmark):
    """Real wall-clock of one full Table-I-workload run (pytest-benchmark
    statistics across rounds show the machine's noise floor)."""
    poly = default_table_polynomial(degree=40)

    def solve():
        return find_all_zeros(poly, seed=0)

    rep = benchmark(solve)
    assert not rep.failed


def test_angle_dispersion_profile(benchmark):
    """The race's fuel: per-seed runtimes disperse measurably."""

    def profile():
        poly = default_table_polynomial(degree=40)
        times = []
        for seed in range(8):
            rep = find_all_zeros(poly, seed=seed)
            times.append(rep.elapsed_s)
        return times

    times = benchmark.pedantic(profile, iterations=1, rounds=1)
    spread = max(times) / min(times)
    assert spread > 1.05  # angles matter
    report(
        "app_rootfinder_dispersion",
        "per-angle-seed runtimes (ms): "
        + ", ".join(f"{t * 1000:.1f}" for t in times)
        + f"\nmax/min dispersion: {spread:.2f}x",
    )


if __name__ == "__main__":
    for row in accuracy_sweep():
        print(row)
