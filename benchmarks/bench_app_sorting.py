"""Application bench: the paper's quicksort motivation, quantified.

Section 3.2's Scheme A example — "quicksort is 'almost always'
O(n log n)" — and its failure mode. Over a domain of input classes the
sorting algorithms rotate as winners; the bench computes the full
Scheme A/B/C economics on measured comparison counts and runs the worlds
race on the simulation kernel for one adversarial input.
"""

import numpy as np
import pytest

from _harness import report, table
from repro.analysis.domain import DomainAnalysis
from repro.apps.sorting import domain_matrix, make_input, comparison_counts
from repro.core import Alternative, run_alternatives_sim

N = 400
COMPARISON_S = 1e-5  # virtual seconds per comparison


def generate():
    kinds, names, rows = domain_matrix(n=N)
    matrix_rows = [
        (kind, *counts, names[int(np.argmin(counts))])
        for kind, counts in zip(kinds, rows)
    ]
    domain = DomainAnalysis(rows)
    return kinds, names, rows, matrix_rows, domain.summary()


def test_sorting_domain_analysis(benchmark):
    kinds, names, rows, matrix_rows, summary = benchmark.pedantic(
        generate, iterations=1, rounds=1
    )
    text = table(["input class", *names, "winner"], matrix_rows, fmt="8.0f")
    text += "\n\ndomain summary (comparisons as cost):\n" + "\n".join(
        f"  {k:>20}: {v:,.2f}" for k, v in summary.items()
    )
    report("app_sorting_domain", text)

    # winners rotate — the unpredictability Scheme C feeds on
    winners = {r[-1] for r in matrix_rows}
    assert len(winners) >= 2
    # racing the sorts beats the random pick across the domain
    assert summary["domain_pi"] > 1.0
    # and beats even the best fixed algorithm (Scheme A's ceiling)
    assert summary["pi_vs_best_fixed"] > 1.0


def test_adversarial_input_race(benchmark):
    """On sorted input, quicksort degrades; the race shrugs it off."""

    def run():
        data = make_input("sorted", N)
        counts = comparison_counts(data)
        alternatives = [
            Alternative(
                lambda ws, _n=name: _n,
                name=name,
                sim_cost=count * COMPARISON_S,
            )
            for name, count in counts.items()
        ]
        outcome, _ = run_alternatives_sim(alternatives, cpus=len(alternatives))
        return counts, outcome

    counts, outcome = benchmark.pedantic(run, iterations=1, rounds=1)
    # the paper's 'almost always' choice is the worst here
    assert counts["quicksort"] == max(counts.values())
    assert outcome.value != "quicksort"
    best = min(counts.values())
    assert outcome.elapsed_s == pytest.approx(best * COMPARISON_S, rel=0.1)


if __name__ == "__main__":
    print(generate()[3])
