"""Bench-suite configuration."""

import sys
import os

# allow `python benchmarks/bench_x.py` and intra-suite imports
sys.path.insert(0, os.path.dirname(__file__))
