"""Ablation: scheduler quantum size (simulator fidelity check).

The kernel timeshares CPUs in quanta. A quantum much smaller than the
alternatives' runtimes approximates ideal processor sharing — the race's
winner under contention is the alternative with the least *work*, and it
finishes near (total outstanding work)/CPUs. A quantum comparable to the
runtimes degrades toward FCFS: whoever is dispatched first monopolizes a
CPU, and response becomes dispatch-order-dependent. This bench maps the
effect, validating that the Table I simulations (quantum << runtimes)
sit in the faithful regime.
"""

from dataclasses import replace

import pytest

from _harness import report, table
from repro.analysis.calibration import MODERN_SIM
from repro.core import Alternative, run_alternatives_sim

# one fast alternative hidden behind three slow ones in dispatch order
COSTS = [3.0, 3.0, 3.0, 1.0]
CPUS = 2


def run_with_quantum(quantum_s: float):
    profile = replace(MODERN_SIM, quantum_s=quantum_s)
    alternatives = [
        Alternative(lambda ws, _i=i: _i, name=f"a{i}", sim_cost=c)
        for i, c in enumerate(COSTS)
    ]
    outcome, _ = run_alternatives_sim(alternatives, profile=profile, cpus=CPUS)
    return outcome


def generate():
    rows = []
    for quantum in (0.001, 0.01, 0.1, 0.5, 2.0, 5.0):
        outcome = run_with_quantum(quantum)
        rows.append((quantum, outcome.winner.name, outcome.elapsed_s))
    return rows


def test_quantum_ablation(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(["quantum (s)", "winner", "response (s)"], rows)
    report(
        "ablation_quantum",
        text + f"\n\n(costs {COSTS} on {CPUS} CPUs; the 1.0 s alternative "
        "is dispatched last)",
    )
    by = {r[0]: r for r in rows}
    # fine quanta: processor sharing lets the cheap alternative win at
    # ~ (work to its completion across the pool) / CPUs = 2.0 s
    for quantum in (0.001, 0.01, 0.1):
        assert by[quantum][1] == "a3"
        assert by[quantum][2] == pytest.approx(2.0, rel=0.15)
    # giant quanta: FCFS — the cheap-but-late alternative waits for a
    # full slow run before it ever gets a CPU; a slow one wins first
    assert by[5.0][1] != "a3"
    assert by[5.0][2] == pytest.approx(3.0, rel=0.05)
    # responses degrade monotonically-ish from sharing to FCFS
    assert by[5.0][2] > by[0.001][2]


def test_table1_regime_is_fine_quantum(benchmark):
    """The default profile's quantum is far below the Table I runtimes."""

    def check():
        return MODERN_SIM.quantum_s

    quantum = benchmark.pedantic(check, iterations=1, rounds=1)
    assert quantum <= 0.01  # vs ~50 ms sequential rootfinder runs


if __name__ == "__main__":
    for row in generate():
        print(row)
