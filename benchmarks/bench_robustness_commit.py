"""Commit-journal robustness bench: what crash consistency costs.

Two tables:

1. **Commit latency** — wall time per journalled speculative block,
   journal off vs in-memory vs fsynced file storage, over a batch of
   seeds. The off/on delta is the write-ahead price of the intent ->
   seal -> apply protocol on the kernel's commit path; file storage adds
   the real fsync tax.
2. **Recovery time** — for each journal fault kind, crash a block at an
   injected site, then measure the surviving-journal reopen + recovery +
   deterministic re-run. Completion is asserted: every crashed block
   must still end with exactly-once source effects and one winner.

Run standalone with ``--quick`` for the CI smoke, or under
pytest-benchmark for the full tables.
"""

import sys
import time

from _harness import report, table
from repro.devices.teletype import Teletype
from repro.errors import JournalCrash
from repro.faults.plan import FaultKind, FaultPlan
from repro.journal import (
    CommitJournal,
    FileJournalStorage,
    MemoryJournalStorage,
    SourceGate,
    recover,
)
from repro.kernel import Kernel

SEEDS = range(20)
QUICK_SEEDS = range(5)

#: One profile per journal fault kind; rate 1.0 guarantees the crash
#: lands at the first matching site, so recovery timing is comparable.
CRASH_PROFILES = (
    ("torn-record", {FaultKind.TORN_RECORD: 1.0}),
    ("crash-before-seal", {FaultKind.CRASH_BEFORE_SEAL: 1.0}),
    ("crash-after-seal", {FaultKind.CRASH_AFTER_SEAL: 1.0}),
    ("partial-release", {FaultKind.PARTIAL_RELEASE: 0.7}),
)


def _program(ctx):
    yield ctx.device_write("tty", b"[start]")

    def fast(c):
        yield c.compute(0.5)
        yield c.device_write("tty", b"<fast>")
        return "fast"

    def slow(c):
        yield c.compute(2.0)
        yield c.device_write("tty", b"<slow>")
        return "slow"

    out = yield from ctx.run_alternatives([fast, slow])
    yield ctx.device_write("tty", b"[done]")
    return out.value


def _run_block(seed, journal):
    tty = Teletype("tty")
    kernel = Kernel(cpus=8, seed=seed, journal=journal)
    if journal is not None:
        kernel.add_device(SourceGate(tty, journal))
    else:
        kernel.add_device(SourceGate(tty, CommitJournal()))
    pid = kernel.spawn(_program)
    kernel.run()
    assert kernel.result_of(pid) == "fast"
    assert tty.output == b"[start]<fast>[done]"
    return tty


def sweep_commit_latency(seeds=SEEDS, tmpdir="."):
    """Mean per-block wall time: no journal / memory journal / file journal."""
    rows = []
    modes = (
        ("journal off", lambda i: None),
        ("memory journal", lambda i: CommitJournal(MemoryJournalStorage())),
        ("file journal (fsync)", lambda i: CommitJournal(
            FileJournalStorage(f"{tmpdir}/bench-journal-{i}.wal")
        )),
    )
    _run_block(0, None)  # warm imports/codepaths out of the first row
    base = None
    for name, make in modes:
        t0 = time.perf_counter()
        for seed in seeds:
            _run_block(seed, make(seed))
        per_block = (time.perf_counter() - t0) / len(seeds)
        if base is None:
            base = per_block
        rows.append((name, per_block * 1e3, per_block / base))
    return rows


def sweep_recovery(seeds=SEEDS, profiles=CRASH_PROFILES):
    """Per fault kind: crash fraction, recovery+re-run wall time, completion."""
    rows = []
    for name, rates in profiles:
        crashed = completed = 0
        recover_s = 0.0
        for seed in seeds:
            plan = FaultPlan(seed=seed, rates=rates)
            storage = MemoryJournalStorage()
            tty = Teletype("tty")
            j1 = CommitJournal(storage, fault_plan=plan)
            k1 = Kernel(cpus=8, seed=seed, journal=j1)
            k1.add_device(SourceGate(tty, j1))
            pid = k1.spawn(_program)
            try:
                k1.run()
            except JournalCrash:
                crashed += 1
                t0 = time.perf_counter()
                j2 = CommitJournal(MemoryJournalStorage(storage.load()))
                gate2 = SourceGate(tty, j2)
                recover(j2, gates=[gate2])
                k2 = Kernel(cpus=8, seed=seed, journal=j2)
                k2.add_device(gate2)
                pid = k2.spawn(_program)
                k2.run()
                recover_s += time.perf_counter() - t0
                completed += k2.result_of(pid) == "fast"
            else:
                completed += k1.result_of(pid) == "fast"
            assert tty.output == b"[start]<fast>[done]", (
                f"effects not exactly-once under {name} (seed {seed})"
            )
        n = len(seeds)
        rows.append((
            name, crashed / n, completed / n,
            (recover_s / crashed * 1e3) if crashed else 0.0,
        ))
    return rows


LATENCY_HEADERS = ("mode", "ms/block", "vs off")
RECOVERY_HEADERS = ("fault kind", "crashed", "completed", "recover+rerun ms")


def _check_latency_rows(rows):
    assert len(rows) == 3
    for _, ms, _ in rows:
        assert ms > 0


def _check_recovery_rows(rows):
    for name, crashed, completed, _ in rows:
        assert completed == 1.0, f"lost a block under {name}"
    # rate-1.0 profiles must actually crash something
    assert sum(r[1] for r in rows[:3]) > 0


def test_commit_latency(benchmark, tmp_path):
    rows = benchmark.pedantic(
        sweep_commit_latency, kwargs={"tmpdir": str(tmp_path)},
        iterations=1, rounds=1,
    )
    report("robustness_commit_latency", table(LATENCY_HEADERS, rows, fmt="8.3f"))
    _check_latency_rows(rows)


def test_recovery_time(benchmark):
    rows = benchmark.pedantic(sweep_recovery, iterations=1, rounds=1)
    report("robustness_commit_recovery", table(RECOVERY_HEADERS, rows, fmt="8.3f"))
    _check_recovery_rows(rows)


if __name__ == "__main__":
    import tempfile

    quick = "--quick" in sys.argv[1:]
    seeds = QUICK_SEEDS if quick else SEEDS
    with tempfile.TemporaryDirectory() as tmpdir:
        latency_rows = sweep_commit_latency(seeds, tmpdir=tmpdir)
    print(table(LATENCY_HEADERS, latency_rows, fmt="8.3f"))
    _check_latency_rows(latency_rows)
    recovery_rows = sweep_recovery(seeds)
    print(table(RECOVERY_HEADERS, recovery_rows, fmt="8.3f"))
    _check_recovery_rows(recovery_rows)
    print("ok")
