#!/usr/bin/env python3
"""Collect benchmarks/results/ into one REPORT.md (and/or BENCH_OBS.json).

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize.py          # text results -> REPORT.md
    python benchmarks/summarize.py --json   # *.json metrics -> BENCH_OBS.json

The text report groups the paper's numbered artifacts first, then the
motivation/ablation/application benches, in a stable order. ``--json``
merges every per-bench metrics file (written via
``_harness.report_json``) into one flat machine-readable list, each row
carrying ``bench``/``name``/``value``/``unit`` (and ``stddev`` when the
bench measured one).
"""

from __future__ import annotations

import argparse
import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPORT = os.path.join(os.path.dirname(__file__), "REPORT.md")
BENCH_OBS = os.path.join(RESULTS_DIR, "BENCH_OBS.json")

SECTIONS = [
    (
        "Paper artifacts",
        [
            ("fig1_alternatives", "Figure 1 — concurrent execution of alternatives"),
            ("fig2_predicates_sender_wins", "Figure 2 — predicates (sender wins)"),
            ("fig2_predicates_sender_loses", "Figure 2 — predicates (sender loses)"),
            ("fig3_pi_vs_rmu", "Figure 3 — PI vs R_mu (R_o = 0.5)"),
            ("fig4_pi_vs_ro", "Figure 4 — PI vs R_o (R_mu = e)"),
            ("table1_rootfinder", "Table I — parallel rootfinder"),
            ("sec32_schemes", "§3.2 — Schemes A/B/C"),
            ("sec33_superlinear", "§3.3 — superlinear speedup"),
            ("sec34_fork_cow_calibration", "§3.4 — fork/COW calibration"),
            ("sec34_write_fraction", "§3.4 — write-fraction sweep"),
            ("sec34_fork_real_host", "§3.4 — fork on this host"),
            ("sec34_elimination_sim", "§3.4 — sibling elimination (calibrated)"),
            ("sec34_elimination_real_host", "§3.4 — sibling elimination (this host)"),
            ("sec34_rfork_model", "§3.4 — rfork (1989 model)"),
            ("sec34_rfork_sweep", "§3.4 — rfork size sweep"),
            ("sec34_rfork_on_demand", "§3.4 — on-demand vs eager migration"),
            ("sec34_rfork_real_host", "§3.4 — rfork pipeline (this host)"),
        ],
    ),
    (
        "Motivation & ablations",
        [
            ("motivation_cow", "COW vs naive state copying (abstract)"),
            ("ablation_guard_placement", "Guard placement"),
            ("ablation_page_size", "Page size"),
            ("ablation_granularity_refs", "Granularity — reference intensity"),
            ("ablation_granularity_objsize", "Granularity — object size"),
            ("ablation_granularity_measured", "Granularity — measured substrates"),
            ("ablation_stagger", "Staggered spares"),
            ("ablation_quantum", "Scheduler quantum"),
        ],
    ),
    (
        "Applications",
        [
            ("app_prolog_orparallel", "OR-parallel Prolog"),
            ("app_recovery_blocks", "Recovery blocks"),
            ("app_sorting_domain", "Sorting domain"),
            ("app_rootfinder_accuracy", "Rootfinder accuracy"),
            ("app_rootfinder_dispersion", "Rootfinder angle dispersion"),
        ],
    ),
]


def merge_json() -> None:
    """Merge results/*.json (except the output itself) into BENCH_OBS.json."""
    rows = []
    names = sorted(os.listdir(RESULTS_DIR)) if os.path.isdir(RESULTS_DIR) else []
    for fname in names:
        if not fname.endswith(".json") or fname == os.path.basename(BENCH_OBS):
            continue
        path = os.path.join(RESULTS_DIR, fname)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"skipping {fname}: {exc}")
            continue
        bench = doc.get("bench", fname[:-5])
        for m in doc.get("metrics", []):
            row = {
                "bench": bench, "name": m["name"],
                "value": m["value"], "unit": m.get("unit", ""),
            }
            if "stddev" in m:
                row["stddev"] = m["stddev"]
            rows.append(row)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(BENCH_OBS, "w") as fh:
        json.dump({"metrics": rows}, fh, indent=2)
        fh.write("\n")
    print(f"wrote {BENCH_OBS} ({len(rows)} metrics)")


def main() -> None:
    missing = []
    lines = [
        "# Benchmark report",
        "",
        "Generated from `benchmarks/results/` by `benchmarks/summarize.py`.",
        "",
    ]
    for section, entries in SECTIONS:
        lines.append(f"## {section}")
        lines.append("")
        for name, title in entries:
            path = os.path.join(RESULTS_DIR, f"{name}.txt")
            lines.append(f"### {title}")
            lines.append("")
            if os.path.exists(path):
                with open(path) as fh:
                    lines.append("```")
                    lines.append(fh.read().rstrip())
                    lines.append("```")
            else:
                missing.append(name)
                lines.append("_(not generated — run the bench suite first)_")
            lines.append("")
    with open(REPORT, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"wrote {REPORT}")
    if missing:
        print(f"missing results: {', '.join(missing)}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", action="store_true",
        help="merge results/*.json metrics into BENCH_OBS.json",
    )
    args = parser.parse_args()
    if args.json:
        merge_json()
    else:
        main()
