#!/usr/bin/env python3
"""Collect benchmarks/results/*.txt into one REPORT.md.

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize.py

The report groups the paper's numbered artifacts first, then the
motivation/ablation/application benches, in a stable order.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPORT = os.path.join(os.path.dirname(__file__), "REPORT.md")

SECTIONS = [
    (
        "Paper artifacts",
        [
            ("fig1_alternatives", "Figure 1 — concurrent execution of alternatives"),
            ("fig2_predicates_sender_wins", "Figure 2 — predicates (sender wins)"),
            ("fig2_predicates_sender_loses", "Figure 2 — predicates (sender loses)"),
            ("fig3_pi_vs_rmu", "Figure 3 — PI vs R_mu (R_o = 0.5)"),
            ("fig4_pi_vs_ro", "Figure 4 — PI vs R_o (R_mu = e)"),
            ("table1_rootfinder", "Table I — parallel rootfinder"),
            ("sec32_schemes", "§3.2 — Schemes A/B/C"),
            ("sec33_superlinear", "§3.3 — superlinear speedup"),
            ("sec34_fork_cow_calibration", "§3.4 — fork/COW calibration"),
            ("sec34_write_fraction", "§3.4 — write-fraction sweep"),
            ("sec34_fork_real_host", "§3.4 — fork on this host"),
            ("sec34_elimination_sim", "§3.4 — sibling elimination (calibrated)"),
            ("sec34_elimination_real_host", "§3.4 — sibling elimination (this host)"),
            ("sec34_rfork_model", "§3.4 — rfork (1989 model)"),
            ("sec34_rfork_sweep", "§3.4 — rfork size sweep"),
            ("sec34_rfork_on_demand", "§3.4 — on-demand vs eager migration"),
            ("sec34_rfork_real_host", "§3.4 — rfork pipeline (this host)"),
        ],
    ),
    (
        "Motivation & ablations",
        [
            ("motivation_cow", "COW vs naive state copying (abstract)"),
            ("ablation_guard_placement", "Guard placement"),
            ("ablation_page_size", "Page size"),
            ("ablation_granularity_refs", "Granularity — reference intensity"),
            ("ablation_granularity_objsize", "Granularity — object size"),
            ("ablation_granularity_measured", "Granularity — measured substrates"),
            ("ablation_stagger", "Staggered spares"),
            ("ablation_quantum", "Scheduler quantum"),
        ],
    ),
    (
        "Applications",
        [
            ("app_prolog_orparallel", "OR-parallel Prolog"),
            ("app_recovery_blocks", "Recovery blocks"),
            ("app_sorting_domain", "Sorting domain"),
            ("app_rootfinder_accuracy", "Rootfinder accuracy"),
            ("app_rootfinder_dispersion", "Rootfinder angle dispersion"),
        ],
    ),
]


def main() -> None:
    missing = []
    lines = [
        "# Benchmark report",
        "",
        "Generated from `benchmarks/results/` by `benchmarks/summarize.py`.",
        "",
    ]
    for section, entries in SECTIONS:
        lines.append(f"## {section}")
        lines.append("")
        for name, title in entries:
            path = os.path.join(RESULTS_DIR, f"{name}.txt")
            lines.append(f"### {title}")
            lines.append("")
            if os.path.exists(path):
                with open(path) as fh:
                    lines.append("```")
                    lines.append(fh.read().rstrip())
                    lines.append("```")
            else:
                missing.append(name)
                lines.append("_(not generated — run the bench suite first)_")
            lines.append("")
    with open(REPORT, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"wrote {REPORT}")
    if missing:
        print(f"missing results: {', '.join(missing)}")


if __name__ == "__main__":
    main()
