#!/usr/bin/env python3
"""Collect benchmarks/results/ into one REPORT.md (and/or BENCH_OBS.json).

Run after ``pytest benchmarks/ --benchmark-only``:

    python benchmarks/summarize.py          # text results -> REPORT.md
    python benchmarks/summarize.py --json   # *.json metrics -> BENCH_OBS.json

The text report groups the paper's numbered artifacts first, then the
motivation/ablation/application benches, in a stable order. ``--json``
merges every per-bench metrics file (written via
``_harness.report_json``) into one flat machine-readable list, each row
carrying ``bench``/``name``/``value``/``unit`` (and ``stddev`` when the
bench measured one).
"""

from __future__ import annotations

import argparse
import json
import os
import sys


def _warn(message: str) -> None:
    print(f"summarize: warning: {message}", file=sys.stderr)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
REPORT = os.path.join(os.path.dirname(__file__), "REPORT.md")
BENCH_OBS = os.path.join(RESULTS_DIR, "BENCH_OBS.json")
BENCH_ASYNC = os.path.join(RESULTS_DIR, "BENCH_ASYNC.json")

#: benches whose metrics are additionally split into BENCH_ASYNC.json —
#: the async-backend acceptance numbers CI consumes on their own
ASYNC_BENCHES = ("async_concurrency",)

SECTIONS = [
    (
        "Paper artifacts",
        [
            ("fig1_alternatives", "Figure 1 — concurrent execution of alternatives"),
            ("fig2_predicates_sender_wins", "Figure 2 — predicates (sender wins)"),
            ("fig2_predicates_sender_loses", "Figure 2 — predicates (sender loses)"),
            ("fig3_pi_vs_rmu", "Figure 3 — PI vs R_mu (R_o = 0.5)"),
            ("fig4_pi_vs_ro", "Figure 4 — PI vs R_o (R_mu = e)"),
            ("table1_rootfinder", "Table I — parallel rootfinder"),
            ("sec32_schemes", "§3.2 — Schemes A/B/C"),
            ("sec33_superlinear", "§3.3 — superlinear speedup"),
            ("sec34_fork_cow_calibration", "§3.4 — fork/COW calibration"),
            ("sec34_write_fraction", "§3.4 — write-fraction sweep"),
            ("sec34_fork_real_host", "§3.4 — fork on this host"),
            ("sec34_elimination_sim", "§3.4 — sibling elimination (calibrated)"),
            ("sec34_elimination_real_host", "§3.4 — sibling elimination (this host)"),
            ("sec34_rfork_model", "§3.4 — rfork (1989 model)"),
            ("sec34_rfork_sweep", "§3.4 — rfork size sweep"),
            ("sec34_rfork_on_demand", "§3.4 — on-demand vs eager migration"),
            ("sec34_rfork_real_host", "§3.4 — rfork pipeline (this host)"),
        ],
    ),
    (
        "Motivation & ablations",
        [
            ("motivation_cow", "COW vs naive state copying (abstract)"),
            ("ablation_guard_placement", "Guard placement"),
            ("ablation_page_size", "Page size"),
            ("ablation_granularity_refs", "Granularity — reference intensity"),
            ("ablation_granularity_objsize", "Granularity — object size"),
            ("ablation_granularity_measured", "Granularity — measured substrates"),
            ("ablation_stagger", "Staggered spares"),
            ("ablation_quantum", "Scheduler quantum"),
        ],
    ),
    (
        "Robustness & serving",
        [
            ("robustness_faults", "Fault-plan supervision matrix"),
            ("robustness_watchdog", "Watchdog & stall recovery"),
            ("robustness_network_link", "Network faults — link retries"),
            ("robustness_network_lease", "Network faults — remote leases"),
            ("robustness_commit_latency", "Commit journal — latency overhead"),
            ("robustness_commit_recovery", "Commit journal — crash recovery"),
            ("restart_recovery", "Cold restart — recovery vs journal length"),
            ("chaos_soak", "Chaos soak — cross-layer fault schedule"),
            ("serve_throughput", "Speculation service — load sweep"),
            ("async_concurrency", "Asyncio backend — 10k-world concurrency"),
            ("cluster_scale", "Cluster — scale-out and shard-kill recovery"),
            ("cluster_remote", "Cluster — out-of-process shards and host kills"),
        ],
    ),
    (
        "Applications",
        [
            ("app_prolog_orparallel", "OR-parallel Prolog"),
            ("app_recovery_blocks", "Recovery blocks"),
            ("app_sorting_domain", "Sorting domain"),
            ("app_rootfinder_accuracy", "Rootfinder accuracy"),
            ("app_rootfinder_dispersion", "Rootfinder angle dispersion"),
        ],
    ),
]


def _file_rows(doc, fname: str) -> list[dict] | None:
    """Extract metric rows from one results document, or None if malformed."""
    if not isinstance(doc, dict):
        _warn(f"skipping {fname}: expected a JSON object, got {type(doc).__name__}")
        return None
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        _warn(f"skipping {fname}: 'metrics' missing or not a list")
        return None
    bench = doc.get("bench", fname[:-5])
    rows = []
    for m in metrics:
        if not isinstance(m, dict) or "name" not in m or "value" not in m:
            _warn(f"skipping {fname}: malformed metric row {m!r}")
            return None
        if isinstance(m["value"], bool) or not isinstance(m["value"], (int, float)):
            _warn(f"skipping {fname}: non-numeric value in {m['name']!r}")
            return None
        row = {
            "bench": bench, "name": m["name"],
            "value": m["value"], "unit": m.get("unit", ""),
        }
        if "stddev" in m:
            row["stddev"] = m["stddev"]
        rows.append(row)
    return rows


def merge_json(results_dir: str = RESULTS_DIR, out_path: str | None = None) -> int:
    """Merge results/*.json (except the output itself) into BENCH_OBS.json.

    Malformed or truncated files are skipped with a warning; returns the
    number of results files that merged cleanly, so the caller can fail
    only when *nothing* was salvageable.
    """
    if out_path is None:
        out_path = os.path.join(results_dir, os.path.basename(BENCH_OBS))
    rows = []
    valid_files = 0
    names = sorted(os.listdir(results_dir)) if os.path.isdir(results_dir) else []
    for fname in names:
        if not fname.endswith(".json") or fname == os.path.basename(out_path):
            continue
        if fname == os.path.basename(BENCH_ASYNC):
            continue  # our own split artifact, not a per-bench input
        if fname.endswith(".trace.json"):
            continue  # Chrome-trace exports live here too; not metrics
        path = os.path.join(results_dir, fname)
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            _warn(f"skipping {fname}: {exc}")
            continue
        file_rows = _file_rows(doc, fname)
        if file_rows is None:
            continue
        valid_files += 1
        rows.extend(file_rows)
    os.makedirs(results_dir, exist_ok=True)
    with open(out_path, "w") as fh:
        json.dump({"metrics": rows}, fh, indent=2)
        fh.write("\n")
    print(f"wrote {out_path} ({len(rows)} metrics from {valid_files} benches)")
    # the async-backend slice gets its own artifact: malformed inputs
    # were already skipped above, so this subset is always well-formed
    async_rows = [r for r in rows if r["bench"] in ASYNC_BENCHES]
    if async_rows:
        async_path = os.path.join(results_dir, os.path.basename(BENCH_ASYNC))
        with open(async_path, "w") as fh:
            json.dump({"metrics": async_rows}, fh, indent=2)
            fh.write("\n")
        print(f"wrote {async_path} ({len(async_rows)} async metrics)")
    return valid_files


def main() -> None:
    missing = []
    lines = [
        "# Benchmark report",
        "",
        "Generated from `benchmarks/results/` by `benchmarks/summarize.py`.",
        "",
    ]
    for section, entries in SECTIONS:
        lines.append(f"## {section}")
        lines.append("")
        for name, title in entries:
            path = os.path.join(RESULTS_DIR, f"{name}.txt")
            lines.append(f"### {title}")
            lines.append("")
            if os.path.exists(path):
                with open(path) as fh:
                    lines.append("```")
                    lines.append(fh.read().rstrip())
                    lines.append("```")
            else:
                missing.append(name)
                lines.append("_(not generated — run the bench suite first)_")
            lines.append("")
    with open(REPORT, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    print(f"wrote {REPORT}")
    if missing:
        print(f"missing results: {', '.join(missing)}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--json", action="store_true",
        help="merge results/*.json metrics into BENCH_OBS.json",
    )
    parser.add_argument(
        "--results-dir", default=RESULTS_DIR,
        help="directory of per-bench results (default: benchmarks/results)",
    )
    args = parser.parse_args()
    if args.json:
        if merge_json(args.results_dir) == 0:
            _warn("no valid results files found")
            sys.exit(1)
    else:
        main()
