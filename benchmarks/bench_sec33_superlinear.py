"""Section 3.3: superlinear speedup.

"An important fact which we can deduce from this performance analysis is
that with sufficient variance, and small enough overhead, N processors
can exhibit superlinear speedup by parallel execution of N serial
algorithms, as opposed to parallel execution of one serial algorithm
which has been 'parallelized'."

The bench sweeps the dispersion of an N-alternative workload and finds
where PI (against the sequential expectation C_mean) exceeds N —
measured on real simulation-kernel executions.
"""

import pytest

from _harness import report, table
from repro.analysis.model import performance_improvement, superlinear_condition
from repro.core import Alternative, run_alternatives_sim

N = 4
BEST_S = 1.0


def skewed_times(ratio: float) -> list[float]:
    """One fast alternative, N-1 slow ones `ratio` times slower."""
    return [BEST_S] + [BEST_S * ratio] * (N - 1)


def measured_pi(times: list[float]) -> float:
    alternatives = [
        Alternative(lambda ws, _i=i: _i, name=f"alg{i}", sim_cost=t)
        for i, t in enumerate(times)
    ]
    outcome, _ = run_alternatives_sim(alternatives, cpus=N)
    c_mean = sum(times) / len(times)
    return c_mean / outcome.elapsed_s


def generate():
    rows = []
    for ratio in [1, 2, 4, 5, 6, 8, 16, 32]:
        times = skewed_times(ratio)
        analytic = performance_improvement(times, overhead=0.0)
        measured = measured_pi(times)
        rows.append((ratio, analytic, measured, measured > N))
    return rows


def test_superlinear_crossover(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["slow/fast ratio", "PI analytic", "PI measured", f"> N={N}?"],
        rows,
    )
    report(
        "sec33_superlinear",
        text + "\n\nPI measured against the sequential expectation C_mean on"
        f" {N} virtual CPUs;\nPI > {N} is superlinear speedup from {N}"
        " processors.",
    )

    for ratio, analytic, measured, flag in rows:
        assert measured == pytest.approx(analytic, rel=0.02)
    # crossover: PI > N requires mean/best > N, i.e. ratio > (N^2-1)/(N-1)
    crossover_ratio = (N * N - 1) / (N - 1)  # = 5 for N = 4
    for ratio, _, measured, flag in rows:
        assert flag == (measured > N)
        if ratio < crossover_ratio:
            assert not flag
        if ratio > crossover_ratio:
            assert flag


def test_superlinear_condition_helper(benchmark):
    result = benchmark(superlinear_condition, skewed_times(32), 0.0)
    assert result is True
    assert not superlinear_condition(skewed_times(2), 0.0)


def test_overhead_destroys_superlinearity(benchmark):
    """Same dispersion, heavy overhead: back below N."""

    def run():
        times = skewed_times(32)
        return performance_improvement(times, overhead=10 * BEST_S)

    value = benchmark.pedantic(run, iterations=1, rounds=1)
    assert value < N


if __name__ == "__main__":
    for row in generate():
        print(row)
