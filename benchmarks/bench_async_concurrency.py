"""Asyncio backend at scale: tens of thousands of concurrent worlds.

The paper's profitability frontier (Fig. 4) says speculation pays while
the overhead ratio R_o stays small; the asyncio backend's pitch is that
for I/O-bound alternatives R_o collapses because a world is a task, not
a process. Four phases make that claim measurable:

- **scale** — one alternative block with 10,000 worlds, every one of
  them verifiably in flight at the same instant (a shared barrier event
  that only releases once the in-flight counter reaches N). No
  per-process backend can hold this block at all.
- **spawn cost** — per-world setup time (the backend's measured
  ``overhead.setup_s`` divided by worlds spawned) for async vs thread
  vs fork: the R_o numerator, side by side.
- **wide-K** — an I/O-bound burst where exactly one of 16 probe
  alternatives is fast and its position shifts per request. A fixed-K
  arm clamped to its 4-slot grant finds it ~4/16 of the time; the
  adaptive policy's per-class wide-K opt-in runs all 16 on the async
  backend and finds it every time. Wide-K must win p50 latency.
- **faults** — the journal exactly-once audit under the ``asyncio``
  fault site (slow tasks, swallowed cancellations, loop stalls) plus
  child crashes: every committed block has exactly one applied win txn.
"""

import asyncio
import random
import statistics
import sys
import time

from _harness import mean_std, metric, report, report_json, table
from repro.aio import alt_block_async
from repro.core.worlds import run_alternatives
from repro.faults.plan import FaultKind, FaultPlan
from repro.journal import CommitJournal
from repro.serve import AdaptiveSpeculationPolicy

SCALE_WORLDS = 10_000
SPAWN_WORLDS = {"async": 2_000, "thread": 32, "fork": 16}
WIDE_ALTS = 16
WIDE_GRANT = 4
WIDE_REQUESTS = 30
QUICK_WIDE_REQUESTS = 10
FAULT_BLOCKS = 40
QUICK_FAULT_BLOCKS = 15
FAST_S, SLOW_S = 0.01, 0.1


# -- phase 1: N worlds, all simultaneously in flight -----------------------
def run_scale(n=SCALE_WORLDS):
    state = {"inflight": 0, "peak": 0}

    async def world(ws, release, _i):
        state["inflight"] += 1
        state["peak"] = max(state["peak"], state["inflight"])
        if state["inflight"] >= n:
            release.set()
        await release.wait()
        state["inflight"] -= 1
        return _i

    async def block():
        release = asyncio.Event()
        alts = [
            (lambda ws, _i=i, _r=release: world(ws, _r, _i)) for i in range(n)
        ]
        t0 = time.perf_counter()
        out = await alt_block_async(alts)
        return out, time.perf_counter() - t0

    out, wall_s = asyncio.run(block())
    assert out.winner is not None, "scale block failed to commit"
    return {"worlds": n, "peak_inflight": state["peak"], "wall_s": wall_s}


# -- phase 2: per-world spawn cost, async vs thread vs fork ----------------
def _noop(ws):
    return 1


def run_spawn_cost():
    import os

    rows = {}
    for backend, n in SPAWN_WORLDS.items():
        if backend == "fork" and not hasattr(os, "fork"):
            continue
        out = run_alternatives([_noop] * n, backend=backend)
        assert out.winner is not None
        rows[backend] = {
            "worlds": n,
            "spawn_us_per_world": out.overhead.setup_s / n * 1e6,
        }
    return rows


# -- phase 3: adaptive wide-K vs grant-clamped fixed-K ---------------------
def _probe(delay_s, value):
    return lambda ws: asyncio.sleep(delay_s, result=value)


def run_wide_k(requests=WIDE_REQUESTS, seed=0):
    rng = random.Random(seed)
    names = [f"probe{i}" for i in range(WIDE_ALTS)]
    arms = {
        "fixed": (AdaptiveSpeculationPolicy(), {}),
        "wide": (
            AdaptiveSpeculationPolicy(class_max_k={"io-probe": WIDE_ALTS}),
            {"request_class": "io-probe"},
        ),
    }
    fast_positions = [rng.randrange(WIDE_ALTS) for _ in range(requests)]
    results = {}
    for arm, (policy, kwargs) in arms.items():
        latencies, hits = [], 0
        for fast_at in fast_positions:
            alts = [
                _probe(FAST_S if i == fast_at else SLOW_S, f"probe{i}")
                for i in range(WIDE_ALTS)
            ]
            decision = policy.decide(names, granted=WIDE_GRANT, **kwargs)
            launched = [alts[i] for i in decision.order]
            t0 = time.perf_counter()
            out = run_alternatives(launched, backend=decision.backend or "async")
            latencies.append(time.perf_counter() - t0)
            if out.value == f"probe{fast_at}":
                hits += 1
        results[arm] = {
            "k": decision.k,
            "p50_ms": statistics.median(latencies) * 1000,
            "fast_hit_rate": hits / requests,
        }
    return results


# -- phase 4: exactly-once journal audit under the asyncio fault site ------
def _racer(ws):
    return asyncio.sleep(0.002, result="won")


def run_fault_audit(blocks=FAULT_BLOCKS, seed=0):
    plan = FaultPlan(
        seed=seed,
        rates={
            FaultKind.SLOW_TASK: 0.3,
            FaultKind.CANCEL_IGNORED: 0.2,
            FaultKind.LOOP_STALL: 0.1,
            FaultKind.CRASH: 0.2,
        },
        slow_task_s=0.005,
        cancel_ignore_s=0.01,
        loop_stall_s=0.002,
    )
    journal = CommitJournal()
    committed, injected = [], 0
    for block_id in range(blocks):
        out = run_alternatives(
            [_racer] * 4, backend="async", fault_plan=plan,
            block_id=block_id, journal=journal,
        )
        injected += len(out.extras.get("injected_faults", ()))
        if out.winner is not None:
            committed.append(block_id)
    intents = [
        r for r in journal.records()
        if r["t"] == "intent" and r["kind"] == "block"
    ]
    violations = 0
    if sorted(r["data"]["block"] for r in intents) != committed:
        violations += 1
    violations += sum(
        1 for r in intents if journal.status(r["seq"]) != "applied"
    )
    return {
        "blocks": blocks,
        "committed": len(committed),
        "injected_faults": injected,
        "violations": violations,
    }


# -- harness ---------------------------------------------------------------
def sweep(wide_requests=WIDE_REQUESTS, fault_blocks=FAULT_BLOCKS):
    return {
        "scale": run_scale(),
        "spawn": run_spawn_cost(),
        "wide": run_wide_k(requests=wide_requests),
        "faults": run_fault_audit(blocks=fault_blocks),
    }


def _check(results):
    scale = results["scale"]
    assert scale["peak_inflight"] >= SCALE_WORLDS, (
        f"only {scale['peak_inflight']} worlds simultaneously in flight"
    )
    spawn = results["spawn"]
    assert spawn["async"]["spawn_us_per_world"] < (
        spawn["thread"]["spawn_us_per_world"]
    ), "async spawn cost did not beat thread"
    wide = results["wide"]
    assert wide["wide"]["fast_hit_rate"] == 1.0, (
        "wide-K missed the fast probe"
    )
    assert wide["wide"]["p50_ms"] < wide["fixed"]["p50_ms"], (
        "wide-K p50 did not beat grant-clamped fixed-K "
        f"({wide['wide']['p50_ms']:.1f}ms vs {wide['fixed']['p50_ms']:.1f}ms)"
    )
    faults = results["faults"]
    assert faults["violations"] == 0, "journal exactly-once audit failed"
    assert faults["injected_faults"] > 0, "fault plan never fired"


def _metrics(results):
    scale, spawn = results["scale"], results["spawn"]
    wide, faults = results["wide"], results["faults"]
    rows = [
        metric("async_peak_inflight_worlds", float(scale["peak_inflight"]), "worlds"),
        metric("async_scale_block_wall", scale["wall_s"], "s"),
        metric("async_spawn_cost", spawn["async"]["spawn_us_per_world"], "us/world"),
        metric("thread_spawn_cost", spawn["thread"]["spawn_us_per_world"], "us/world"),
        metric("wide_k_p50", wide["wide"]["p50_ms"], "ms"),
        metric("fixed_k_p50", wide["fixed"]["p50_ms"], "ms"),
        metric("wide_k_fast_hit_rate", wide["wide"]["fast_hit_rate"], "ratio"),
        metric("fixed_k_fast_hit_rate", wide["fixed"]["fast_hit_rate"], "ratio"),
        metric("async_exactly_once_violations", float(faults["violations"]), "count"),
        metric("async_injected_faults", float(faults["injected_faults"]), "count"),
    ]
    if "fork" in spawn:
        rows.append(
            metric("fork_spawn_cost", spawn["fork"]["spawn_us_per_world"], "us/world")
        )
    return rows


def _render(results):
    scale, spawn = results["scale"], results["spawn"]
    wide, faults = results["wide"], results["faults"]
    parts = [
        f"scale: {scale['peak_inflight']} worlds simultaneously in flight "
        f"(one block, {scale['wall_s']:.2f}s wall)",
        "",
        table(
            ("backend", "worlds", "spawn_us/world"),
            [
                (b, row["worlds"], row["spawn_us_per_world"])
                for b, row in spawn.items()
            ],
            fmt="10.1f",
        ),
        "",
        table(
            ("arm", "K", "p50_ms", "fast_hit_rate"),
            [
                (arm, row["k"], row["p50_ms"], row["fast_hit_rate"])
                for arm, row in wide.items()
            ],
            fmt="8.2f",
        ),
        "",
        f"faults: {faults['committed']}/{faults['blocks']} blocks committed, "
        f"{faults['injected_faults']} faults injected, "
        f"{faults['violations']} exactly-once violations",
    ]
    return "\n".join(parts)


def test_async_concurrency(benchmark):
    results = benchmark.pedantic(sweep, iterations=1, rounds=1)
    report("async_concurrency", _render(results))
    report_json("async_concurrency", _metrics(results))
    _check(results)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    swept = sweep(
        wide_requests=QUICK_WIDE_REQUESTS if quick else WIDE_REQUESTS,
        fault_blocks=QUICK_FAULT_BLOCKS if quick else FAULT_BLOCKS,
    )
    report("async_concurrency", _render(swept))
    report_json("async_concurrency", _metrics(swept))
    _check(swept)
    print("ok")
