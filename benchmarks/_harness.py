"""Shared helpers for the experiment benches.

Every bench regenerates one of the paper's tables or figures and both
prints it (visible with ``pytest benchmarks/ --benchmark-only -s``) and
writes it under ``benchmarks/results/`` so the artifacts survive the run.
"""

from __future__ import annotations

import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str) -> str:
    """Print a result block and persist it to benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def table(headers: Sequence[str], rows: Sequence[Sequence], fmt: str = "10.4f") -> str:
    """Fixed-width text table; numbers via ``fmt``, the rest via str()."""
    def cell(value) -> str:
        if isinstance(value, float):
            return format(value, fmt)
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
