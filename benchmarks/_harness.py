"""Shared helpers for the experiment benches.

Every bench regenerates one of the paper's tables or figures and both
prints it (visible with ``pytest benchmarks/ --benchmark-only -s``) and
writes it under ``benchmarks/results/`` so the artifacts survive the run.
"""

from __future__ import annotations

import json
import os
from typing import Sequence

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def report(name: str, text: str) -> str:
    """Print a result block and persist it to benchmarks/results/."""
    banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
    print(banner + text)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as fh:
        fh.write(text + "\n")
    return text


def metric(name: str, value: float, unit: str = "", stddev: float | None = None) -> dict:
    """One machine-readable benchmark number (the BENCH_OBS.json row shape)."""
    row: dict = {"name": name, "value": float(value), "unit": unit}
    if stddev is not None:
        row["stddev"] = float(stddev)
    return row


def report_json(name: str, metrics: Sequence[dict]) -> str:
    """Persist a bench's metrics to ``benchmarks/results/<name>.json``.

    Each entry is a :func:`metric` dict; ``summarize.py --json`` merges
    every such file into one ``BENCH_OBS.json``.
    """
    for row in metrics:
        missing = {"name", "value", "unit"} - set(row)
        if missing:
            raise ValueError(f"metric {row!r} is missing {sorted(missing)}")
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as fh:
        json.dump({"bench": name, "metrics": list(metrics)}, fh, indent=2)
        fh.write("\n")
    return path


def mean_std(samples: Sequence[float]) -> tuple[float, float]:
    """Sample mean and (population) standard deviation."""
    n = len(samples)
    if n == 0:
        return 0.0, 0.0
    mu = sum(samples) / n
    var = sum((s - mu) ** 2 for s in samples) / n
    return mu, var ** 0.5


def table(headers: Sequence[str], rows: Sequence[Sequence], fmt: str = "10.4f") -> str:
    """Fixed-width text table; numbers via ``fmt``, the rest via str()."""
    def cell(value) -> str:
        if isinstance(value, float):
            return format(value, fmt)
        return str(value)

    rendered = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in rendered)) if rendered else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
