"""Section 3.2: the three selection schemes.

- Scheme A (statistics) picks the historically best method — and loses
  whenever the input deviates from history;
- Scheme B (random pick) "will perform at the arithmetic mean of the
  computations' performance" and is "frustrated by failures or infinite
  loops";
- Scheme C (parallel worlds) pays ~the best alternative plus overhead.

The bench builds an input domain where the methods' strengths rotate,
evaluates all three schemes analytically AND by executing Scheme C on
the simulation kernel, and reproduces the Scheme B frustration with a
diverging alternative.
"""

import math

import pytest

from _harness import report, table
from repro.analysis.domain import DomainAnalysis
from repro.core import Alternative, run_alternatives_sim
from repro.core.schemes import (
    scheme_a,
    scheme_b,
    scheme_b_expectation,
    scheme_c_expectation,
)
from repro.util.rng import ReplayableRNG

# runtimes (s) of 3 algorithms over a 6-input domain: each algorithm is
# best somewhere (the paper's "different and unpredictable points")
TIMES = [
    [1.0, 4.0, 5.0],
    [1.2, 3.5, 4.0],
    [5.0, 1.0, 4.5],
    [4.0, 1.5, 5.0],
    [4.5, 5.0, 1.0],
    [3.5, 4.0, 1.3],
]
OVERHEAD = 0.1


def measured_scheme_c(times: list[float]) -> float:
    """Actually run one input's alternatives on the simulation kernel.

    The machine profile injects the same OVERHEAD seconds of block setup
    the analytic column assumes, so the two columns are comparable.
    """
    from dataclasses import replace

    from repro.analysis.calibration import MODERN_SIM

    profile = replace(
        MODERN_SIM,
        fork_fixed_s=OVERHEAD / len(times),
        pte_copy_s=0.0,
        kill_sync_s=0.0,
        kill_async_s=0.0,
    )
    alternatives = [
        Alternative(lambda ws, _i=i: _i, name=f"alg{i}", sim_cost=t)
        for i, t in enumerate(times)
    ]
    outcome, _ = run_alternatives_sim(alternatives, profile=profile, cpus=len(times))
    return outcome.elapsed_s


def generate():
    domain = DomainAnalysis(TIMES, overhead=OVERHEAD)
    rows = []
    for i, times in enumerate(TIMES):
        rows.append(
            (
                f"input{i}",
                times[domain.best_fixed_algorithm()],
                scheme_b_expectation(times),
                scheme_c_expectation(times, OVERHEAD),
                measured_scheme_c(times),
            )
        )
    summary = domain.summary()
    return rows, summary


def test_schemes_comparison(benchmark):
    rows, summary = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["input", "A (best fixed)", "B = C_mean", "C analytic", "C measured"],
        rows,
    )
    text += "\n\ndomain summary:\n" + "\n".join(
        f"  {k:>20}: {v:.4f}" for k, v in summary.items()
    )
    report("sec32_schemes", text)

    # Scheme C beats Scheme B on every input of this domain
    for _, _, b, c_analytic, c_measured in rows:
        assert c_analytic < b
        assert c_measured == pytest.approx(c_analytic, rel=0.02)

    # domain-level: C beats B and even the best fixed choice
    assert summary["domain_pi"] > 1.0
    assert summary["pi_vs_best_fixed"] > 1.0
    assert summary["win_fraction"] == 1.0
    # winners rotate across the domain (unpredictability)
    domain = DomainAnalysis(TIMES, overhead=OVERHEAD)
    assert (domain.winner_histogram() > 0).all()


def test_scheme_b_frustrated_by_divergence(benchmark):
    """An infinite-loop alternative ruins B's expectation; C shrugs."""
    times_with_divergence = [2.0, math.inf, 1.0]

    def evaluate():
        b = scheme_b_expectation(times_with_divergence)
        c = scheme_c_expectation(times_with_divergence, OVERHEAD)
        # and actually run it: one alternative never terminates
        def diverges(ctx):
            while True:
                yield ctx.compute(1.0)

        alternatives = [
            Alternative(lambda ws: "t2", name="t2", sim_cost=2.0),
            Alternative(diverges, name="spin"),
            Alternative(lambda ws: "t1", name="t1", sim_cost=1.0),
        ]
        outcome, _ = run_alternatives_sim(alternatives, cpus=3)
        return b, c, outcome

    b, c, outcome = benchmark.pedantic(evaluate, iterations=1, rounds=1)
    assert math.isinf(b)
    assert c == pytest.approx(1.0 + OVERHEAD)
    assert outcome.value == "t1"
    assert outcome.elapsed_s == pytest.approx(1.0, rel=0.05)


def test_scheme_selectors(benchmark):
    """The A and B selectors behave as specified."""

    def run():
        history = [[1.0, 9.0], [1.2, 8.0], [0.9, 7.5]]
        a_pick = scheme_a(history)
        rng = ReplayableRNG(0)
        b_picks = {scheme_b(4, rng) for _ in range(200)}
        return a_pick, b_picks

    a_pick, b_picks = benchmark.pedantic(run, iterations=1, rounds=1)
    assert a_pick == 0  # historically dominant
    assert b_picks == {0, 1, 2, 3}  # uniform random reaches everything


if __name__ == "__main__":
    rows, summary = generate()
    for row in rows:
        print(row)
    print(summary)
