"""Figure 3: PI as a function of R_mu, with R_o held at 0.5.

The paper plots ``PI = (1/(1+R_o)) * R_mu`` for R_mu in [0, 5] at
R_o = 0.5 — a line of slope 2/3 crossing PI = 1 at R_mu = 1.5.

We regenerate it two ways:

- **analytic** — the closed form;
- **measured** — actual simulation-kernel executions: 4 alternatives
  whose virtual costs hit the target R_mu, on a machine profile whose
  fork cost injects exactly R_o = 0.5 of setup overhead; the measured PI
  is C_mean divided by the parent's observed response time.

The measured points land on the analytic line to within scheduling
granularity, and the PI > 1 crossover sits at R_mu = 1 + R_o = 1.5.
"""

from dataclasses import replace

import pytest

from _harness import report, table
from repro.analysis.calibration import MODERN_SIM
from repro.analysis.model import figure3_curve, pi_from_ratios
from repro.core import Alternative, run_alternatives_sim

R_O = 0.5
BEST_S = 1.0
N_ALTS = 4
R_MU_GRID = [1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0]


def _costs_for_r_mu(r_mu: float) -> list[float]:
    """N alternative durations with min = BEST_S and mean = r_mu * BEST_S."""
    mean = r_mu * BEST_S
    # best stays at BEST_S; spread the rest symmetrically around the
    # remaining mass so the mean is exact
    others_mean = (mean * N_ALTS - BEST_S) / (N_ALTS - 1)
    # keep every cost >= BEST_S so the minimum stays pinned
    spread = min(0.25 * others_mean, others_mean - BEST_S)
    others = [others_mean - spread, others_mean, others_mean + spread]
    costs = [BEST_S] + others
    assert min(costs) == BEST_S
    return costs


def _profile_with_overhead(overhead_s: float):
    """A machine whose alt_spawn costs exactly ``overhead_s`` in total."""
    return replace(
        MODERN_SIM,
        fork_fixed_s=overhead_s / N_ALTS,
        pte_copy_s=0.0,
        kill_sync_s=0.0,
        kill_async_s=0.0,
        page_copy_s=0.0,
    )


def measure_pi(r_mu: float, r_o: float = R_O) -> float:
    """One simulated execution; returns C_mean / measured response."""
    costs = _costs_for_r_mu(r_mu)
    profile = _profile_with_overhead(r_o * BEST_S)
    alternatives = [
        Alternative(lambda ws, _i=i: _i, name=f"alt{i}", sim_cost=cost)
        for i, cost in enumerate(costs)
    ]
    outcome, _ = run_alternatives_sim(
        alternatives, profile=profile, cpus=N_ALTS
    )
    c_mean = sum(costs) / len(costs)
    return c_mean / outcome.elapsed_s


def generate() -> list[tuple[float, float, float]]:
    """(R_mu, analytic PI, measured PI) rows."""
    analytic = dict(figure3_curve(R_MU_GRID, R_O))
    return [(rm, analytic[rm], measure_pi(rm)) for rm in R_MU_GRID]


def test_figure3(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["R_mu", "PI analytic", "PI measured"],
        [(rm, a, m) for rm, a, m in rows],
    )
    report("fig3_pi_vs_rmu", text + "\n\n(R_o = 0.5; paper Figure 3)")

    for r_mu, analytic, measured in rows:
        # measured executions track the closed form
        assert measured == pytest.approx(analytic, rel=0.02)
    # the crossover: parallel wins iff R_mu > 1 + R_o
    below = [m for rm, _, m in rows if rm < 1.5]
    above = [m for rm, _, m in rows if rm > 1.5]
    assert all(m < 1.0 for m in below)
    assert all(m > 1.0 for m in above)
    # slope of the line is 1/(1+R_o) = 2/3
    (rm1, _, m1), (rm2, _, m2) = rows[0], rows[-1]
    slope = (m2 - m1) / (rm2 - rm1)
    assert slope == pytest.approx(1 / (1 + R_O), rel=0.03)


def test_breakeven_point(benchmark):
    """PI at exactly R_mu = 1 + R_o is exactly 1 (analytically)."""
    value = benchmark(pi_from_ratios, 1.0 + R_O, R_O)
    assert value == pytest.approx(1.0)


if __name__ == "__main__":
    for row in generate():
        print(row)
