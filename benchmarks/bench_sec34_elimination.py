"""Section 3.4: sibling elimination, synchronous vs asynchronous.

"the elimination of 16 subprocesses can be accomplished in about 40
milliseconds if waiting for their termination, and 20 milliseconds if
the elimination is done asynchronously."

The calibrated simulation regenerates those numbers as the parent's
response-time penalty; the real fork backend then kills 16 actual
processes both ways on this host. The shape claim: asynchronous
elimination gives better response time (paper section 2.2.1), at the
cost of background work (throughput).
"""

import os

import pytest

from _harness import report, table
from repro.analysis.calibration import ATT_3B2_310
from repro.core import Alternative, EliminationPolicy, run_alternatives_sim

N_SIBLINGS = 16


def simulated_elimination():
    """Response-time penalty of eliminating 16 children, both policies."""
    rows = []
    penalties = {}
    for policy in (EliminationPolicy.SYNCHRONOUS, EliminationPolicy.ASYNCHRONOUS):
        alternatives = [Alternative(lambda ws: "fast", name="fast", sim_cost=0.5)]
        alternatives += [
            Alternative(lambda ws, _i=i: _i, name=f"slow{i}", sim_cost=50.0)
            for i in range(N_SIBLINGS)
        ]
        outcome, kernel = run_alternatives_sim(
            alternatives,
            profile=ATT_3B2_310,
            cpus=N_SIBLINGS + 1,
            elimination=policy,
        )
        penalty_ms = (outcome.elapsed_s - 0.5 - outcome.overhead.setup_s) * 1000
        penalties[policy] = penalty_ms
        rows.append(
            (
                policy.value,
                outcome.overhead.completion_s * 1000,
                penalty_ms,
                outcome.elapsed_s,
            )
        )
    return rows, penalties


def real_fork_elimination():
    """Kill 16 real sleeping children, waiting vs not waiting."""
    import signal
    import time

    results = {}
    for wait in (True, False):
        pids = []
        for _ in range(N_SIBLINGS):
            pid = os.fork()
            if pid == 0:
                time.sleep(60)
                os._exit(0)
            pids.append(pid)
        t0 = time.perf_counter()
        for pid in pids:
            os.kill(pid, signal.SIGKILL)
        if wait:
            for pid in pids:
                os.waitpid(pid, 0)
        elapsed_ms = (time.perf_counter() - t0) * 1000
        if not wait:
            for pid in pids:  # reap outside the measured window
                os.waitpid(pid, 0)
        results["sync" if wait else "async"] = elapsed_ms
    return results


def test_simulated_elimination_matches_paper(benchmark):
    rows, penalties = benchmark.pedantic(simulated_elimination, iterations=1, rounds=1)
    text = table(
        ["policy", "completion overhead (ms)", "parent penalty (ms)", "response (s)"],
        rows, fmt="9.3f",
    )
    report(
        "sec34_elimination_sim",
        text + f"\n\n(AT&T 3B2/310 calibration, {N_SIBLINGS} eliminated "
        "siblings; paper: ~40 ms sync, ~20 ms async)",
    )
    # the paper's numbers: parent pays ~40 ms when waiting, ~0 when not
    assert penalties[EliminationPolicy.SYNCHRONOUS] == pytest.approx(40.0, rel=0.05)
    assert penalties[EliminationPolicy.ASYNCHRONOUS] == pytest.approx(0.0, abs=1.0)
    # the full async cost is still paid, just off the critical path
    completion = {r[0]: r[1] for r in rows}
    assert completion["async"] == pytest.approx(20.0, rel=0.05)
    assert completion["sync"] == pytest.approx(40.0, rel=0.05)


@pytest.mark.skipif(not hasattr(os, "fork"), reason="needs os.fork")
def test_real_elimination_shape(benchmark):
    results = benchmark.pedantic(real_fork_elimination, iterations=1, rounds=1)
    report(
        "sec34_elimination_real_host",
        f"this host, {N_SIBLINGS} real children:\n"
        f"  kill + wait  : {results['sync']:.3f} ms\n"
        f"  kill only    : {results['async']:.3f} ms\n"
        "(paper: ~40 ms vs ~20 ms on 1989 hardware)",
    )
    # asynchronous elimination returns control no slower than waiting
    assert results["async"] <= results["sync"] * 1.5
    # and modern hardware beats 1989 by orders of magnitude
    assert results["sync"] < 40.0


if __name__ == "__main__":
    print(simulated_elimination())
    print(real_fork_elimination())
