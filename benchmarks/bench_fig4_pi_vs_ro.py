"""Figure 4: PI as a function of R_o, with R_mu held at e.

The paper plots ``PI = (1/(1+R_o)) * e`` on log-log axes for R_o roughly
in [0.01, 1]: PI falls from ~e toward e/2, crossing the whole useful
range — "varying the overhead has a significant effect on the
performance improvement we achieve, when scaled against the variance in
execution times."

Analytic curve plus measured simulation-kernel executions, as in the
Figure 3 bench.
"""

import math

import pytest

from _harness import report, table
from repro.analysis.model import figure4_curve
from bench_fig3_pi_vs_rmu import measure_pi

R_MU = math.e
R_O_GRID = [0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 0.7, 1.0]


def generate() -> list[tuple[float, float, float]]:
    analytic = dict(figure4_curve(R_O_GRID, R_MU))
    return [(ro, analytic[ro], measure_pi(R_MU, ro)) for ro in R_O_GRID]


def test_figure4(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["R_o", "PI analytic", "PI measured"],
        [(ro, a, m) for ro, a, m in rows],
    )
    report("fig4_pi_vs_ro", text + f"\n\n(R_mu = e = {R_MU:.4f}; paper Figure 4, log-log)")

    for _, analytic, measured in rows:
        assert measured == pytest.approx(analytic, rel=0.02)
    # monotonically decreasing in overhead
    measured_series = [m for _, _, m in rows]
    assert measured_series == sorted(measured_series, reverse=True)
    # endpoints: near e at negligible overhead, e/2 at R_o = 1
    assert rows[0][2] == pytest.approx(R_MU, rel=0.03)
    assert rows[-1][2] == pytest.approx(R_MU / 2, rel=0.03)
    # PI stays above 1 across the whole plotted range (R_mu = e is
    # comfortable dispersion) — the paper's curve never dips below ~1.35
    assert min(measured_series) > 1.3


def test_log_log_slope_tail(benchmark):
    """For large R_o the log-log curve approaches slope -1."""

    def tail_slope() -> float:
        lo, hi = 20.0, 200.0
        pi_lo = measure_pi(R_MU, lo)
        pi_hi = measure_pi(R_MU, hi)
        return (math.log(pi_hi) - math.log(pi_lo)) / (math.log(hi) - math.log(lo))

    slope = benchmark.pedantic(tail_slope, iterations=1, rounds=1)
    assert slope == pytest.approx(-1.0, abs=0.05)


if __name__ == "__main__":
    for row in generate():
        print(row)
