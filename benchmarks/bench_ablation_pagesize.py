"""Ablation: page size (2 KiB vs 4 KiB machines).

The paper's two calibration machines differ in page size; the COW
economics shift with it: larger pages mean fewer page-table entries to
copy at fork (cheaper setup) but more false sharing — a small write
privatizes more bytes (costlier runtime copying). This bench runs the
same workload on both calibrated machines plus synthetic variants that
isolate the page-size effect at fixed per-byte copy throughput.
"""

from dataclasses import replace

import pytest

from _harness import report, table
from repro.analysis.calibration import ATT_3B2_310, MachineProfile
from repro.core import Alternative, run_alternatives_sim

STATE_BYTES = 256 * 1024
VALUES = 128  # state is spread over this many heap values
WRITES = 12  # the speculative child updates this many values


def _profile_with_page_size(page_size: int) -> MachineProfile:
    """3B2-like machine rescaled to a page size, same byte throughput.

    Copy throughput is held at the 3B2's bytes/s (326 pages x 2 KiB), so
    only the granularity changes; pte copy cost stays per-entry.
    """
    bytes_per_s = 326.0 * 2048
    return replace(
        ATT_3B2_310,
        page_size=page_size,
        page_copy_s=page_size / bytes_per_s,
    )


def run_workload(profile: MachineProfile):
    value_bytes = STATE_BYTES // VALUES

    def child(ctx):
        for i in range(WRITES):
            yield ctx.put(f"v{i * (VALUES // WRITES)}", bytes(value_bytes))
        return "done"

    outcome, kernel = run_alternatives_sim(
        [Alternative(child, name="writer")],
        initial={f"v{i}": bytes(value_bytes) for i in range(VALUES)},
        profile=profile,
        cpus=1,
    )
    return outcome, kernel


def generate():
    rows = []
    for page_size in (1024, 2048, 4096, 8192, 16384):
        profile = _profile_with_page_size(page_size)
        outcome, kernel = run_workload(profile)
        rows.append(
            (
                page_size,
                kernel.stats.pte_copies,
                outcome.overhead.setup_s * 1000,
                kernel.stats.pages_copied,
                kernel.stats.bytes_copied // 1024,
                outcome.overhead.runtime_s * 1000,
                outcome.overhead.total_s * 1000,
            )
        )
    return rows


def test_page_size_ablation(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["page size", "PTEs copied", "setup (ms)", "pages copied",
         "KiB copied", "COW (ms)", "total ovh (ms)"],
        rows, fmt="8.2f",
    )
    report(
        "ablation_page_size",
        text + f"\n\n(256 KiB state in {VALUES} values, child rewrites "
        f"{WRITES}; copy throughput fixed at the 3B2's bytes/s)",
    )
    by_size = {r[0]: r for r in rows}
    # setup falls with page size (fewer PTEs to copy at fork)
    setups = [r[2] for r in rows]
    assert setups == sorted(setups, reverse=True)
    # bytes actually copied grow with page size (false sharing)
    kib = [r[4] for r in rows]
    assert kib == sorted(kib)
    # the 2 KiB machine copies at least twice the KiB of... the other way:
    # 16 KiB pages copy strictly more data than 1 KiB pages for the same
    # 12 logical writes
    assert by_size[16384][4] >= 4 * by_size[1024][4]


def test_calibrated_machines_same_workload(benchmark):
    """The two paper machines end-to-end on one workload: the HP's faster
    copy engine and smaller page count beat the 3B2 on both buckets."""
    from repro.analysis.calibration import HP_9000_350

    def run():
        out = {}
        for profile in (ATT_3B2_310, HP_9000_350):
            outcome, _ = run_workload(profile)
            out[profile.name] = outcome.overhead
        return out

    overheads = benchmark.pedantic(run, iterations=1, rounds=1)
    assert overheads["HP 9000/350"].setup_s < overheads["AT&T 3B2/310"].setup_s
    assert overheads["HP 9000/350"].runtime_s < overheads["AT&T 3B2/310"].runtime_s


if __name__ == "__main__":
    for row in generate():
        print(row)
