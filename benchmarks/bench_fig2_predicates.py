"""Figure 2: use of predicates — a message out of a speculative block.

The paper's Figure 2 shows method_n sending a message to a process
outside the block: the receiver's predicates are checked against the
sender's, and since accepting requires further assumptions, the receiver
is split into a believing copy and a doubting copy; resolution of the
block later eliminates exactly one of them.

This bench executes the scenario both ways (sender wins / sender loses),
renders the kernel's predicate-event trace, and asserts the pruning
invariants.
"""

import pytest

from _harness import report
from repro.kernel import Kernel, ProcState, TIMEOUT


def run_scenario(sender_wins: bool):
    kernel = Kernel(cpus=4, trace=True)

    def outside_process(ctx):
        msg = yield ctx.recv(timeout=30.0)
        if msg is TIMEOUT:
            return "no-news"
        return f"news:{msg.data}"

    receiver_pid = kernel.spawn(outside_process, name="outside")

    def block_parent(ctx):
        def method_n(c):
            yield c.compute(0.1)
            yield c.send(receiver_pid, "speculative")
            yield c.compute(0.1 if sender_wins else 10.0)
            return "method_n"

        def method_1(c):
            yield c.compute(5.0 if sender_wins else 0.5)
            return "method_1"

        out = yield from ctx.run_alternatives([method_n, method_1])
        return out.value

    parent_pid = kernel.spawn(block_parent, name="parent")
    kernel.run()
    return kernel, receiver_pid, parent_pid


def render(kernel: Kernel) -> str:
    events = kernel.trace.of_kind(
        "deliver", "world-split", "msg-accept", "msg-ignore",
        "sync-defer", "sync-retry", "fact", "kill", "commit", "done",
    )
    return "\n".join(str(e) for e in events)


def test_figure2_sender_wins(benchmark):
    kernel, receiver_pid, parent_pid = benchmark.pedantic(
        run_scenario, args=(True,), iterations=1, rounds=1
    )
    report("fig2_predicates_sender_wins", render(kernel))

    assert kernel.result_of(parent_pid) == "method_n"
    # the believing receiver copy survived and consumed the message
    assert kernel.result_of(receiver_pid) == "news:speculative"
    assert len(kernel.trace.of_kind("world-split")) == 1
    # exactly one world of the receiver pid survives to completion
    done = [w for w in kernel.worlds_of(receiver_pid) if w.state is ProcState.DONE]
    assert len(done) == 1


def test_figure2_sender_loses(benchmark):
    kernel, receiver_pid, parent_pid = benchmark.pedantic(
        run_scenario, args=(False,), iterations=1, rounds=1
    )
    report("fig2_predicates_sender_loses", render(kernel))

    assert kernel.result_of(parent_pid) == "method_1"
    # the doubting copy survived; the speculative message left no trace
    assert kernel.result_of(receiver_pid) == "no-news"
    assert len(kernel.trace.of_kind("world-split")) == 1
    done = [w for w in kernel.worlds_of(receiver_pid) if w.state is ProcState.DONE]
    assert len(done) == 1


def test_figure2_consistency_both_ways(benchmark):
    """Whatever resolves, no live world ever references a resolved pid."""

    def run_both():
        outputs = []
        for wins in (True, False):
            kernel, receiver_pid, _ = run_scenario(wins)
            for world in kernel.live_worlds():
                for pid in world.predicates.all_pids():
                    assert pid not in kernel.facts
            outputs.append(kernel.result_of(receiver_pid))
        return outputs

    outputs = benchmark.pedantic(run_both, iterations=1, rounds=1)
    assert outputs == ["news:speculative", "no-news"]


if __name__ == "__main__":
    for wins in (True, False):
        kernel, *_ = run_scenario(wins)
        print(f"--- sender {'wins' if wins else 'loses'} ---")
        print(render(kernel))
