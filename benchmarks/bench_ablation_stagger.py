"""Ablation: staggered spare spawning in recovery blocks.

The pure race (stagger 0) gives the best response under faults but runs
every spare speculatively; pure sequential standby-spares (stagger >=
primary's duration) wastes nothing but pays failures in series. The
stagger knob sweeps the space between — this bench maps the frontier on
the simulation kernel.
"""

import pytest

from _harness import report, table
from repro.apps.recovery import RecoveryBlock
from repro.core import run_alternatives_sim

PRIMARY_S = 1.0
SPARE_S = 1.0
STAGGERS = [0.0, 0.25, 0.5, 1.0, 2.0]


def _block():
    def primary(ws):
        if ws.get("inject_fault"):
            raise RuntimeError("fault")
        return "primary"

    def spare1(ws):
        return "spare1"

    def spare2(ws):
        return "spare2"

    return RecoveryBlock(lambda ws, v: True, primary, spare1, spare2)


def run_point(stagger: float, fault: bool):
    block = _block()
    outcome = run_alternatives_sim(
        block.as_alternatives(sim_costs=[PRIMARY_S, SPARE_S, SPARE_S],
                              stagger_s=stagger),
        initial={"inject_fault": fault},
        cpus=3,
    )
    result, kernel = outcome
    util = kernel.utilization_report()
    return result, util


def generate():
    rows = []
    for stagger in STAGGERS:
        healthy, util_h = run_point(stagger, fault=False)
        faulty, util_f = run_point(stagger, fault=True)
        rows.append(
            (
                stagger,
                healthy.elapsed_s,
                util_h.wasted_cpu_s,
                faulty.elapsed_s,
                util_f.wasted_cpu_s,
            )
        )
    return rows


def test_stagger_frontier(benchmark):
    rows = benchmark.pedantic(generate, iterations=1, rounds=1)
    text = table(
        ["stagger (s)", "healthy resp (s)", "healthy waste (s)",
         "faulty resp (s)", "faulty waste (s)"],
        rows,
    )
    report(
        "ablation_stagger",
        text + "\n\n(primary 1.0 s + two 1.0 s spares; waste = CPU-seconds "
        "burned by eliminated worlds)",
    )
    by = {r[0]: r for r in rows}

    # healthy response is stagger-independent: the primary sets the pace
    for _, healthy_resp, _, _, _ in rows:
        assert healthy_resp == pytest.approx(PRIMARY_S, rel=0.05)

    # healthy waste falls monotonically with stagger and hits zero once
    # spares start after the primary finishes
    wastes = [r[2] for r in rows]
    assert all(b <= a + 1e-9 for a, b in zip(wastes, wastes[1:]))
    assert by[2.0][2] == pytest.approx(0.0, abs=1e-9)
    assert by[0.0][2] == pytest.approx(2 * PRIMARY_S, rel=0.1)

    # faulty response grows with stagger: fault cost = one stagger
    assert by[0.0][3] == pytest.approx(SPARE_S, rel=0.05)
    assert by[1.0][3] == pytest.approx(1.0 + SPARE_S, rel=0.05)
    assert by[2.0][3] == pytest.approx(2.0 + SPARE_S, rel=0.05)

    # the knob's promise: at stagger = primary duration, zero healthy
    # waste AND a fault costs one primary-duration, not a serial chain
    sweet = by[1.0]
    assert sweet[2] == pytest.approx(0.0, abs=0.05)
    assert sweet[3] < 2 * (PRIMARY_S + SPARE_S)


if __name__ == "__main__":
    for row in generate():
        print(row)
