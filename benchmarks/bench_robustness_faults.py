"""Robustness bench: completion and latency vs injected fault rate.

Sweeps a deterministic child-crash rate over real forked blocks and
compares a bare ``run_alternatives`` against the same block under a
:class:`~repro.faults.Supervisor` (bounded retry waves of standby
spares). The claim being measured: supervision converts "the whole block
failed" into "the block paid one or two extra waves of latency", and the
price at fault rate 0 is nil.

A second table shows the watchdog ladder: with injected 30-second hangs,
block latency is bounded by ``soft_deadline + grace`` instead of the
hang duration (or a block-level timeout).
"""

import time

from _harness import report, table
from repro.core.policy import WatchdogPolicy
from repro.core.worlds import run_alternatives
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.supervisor import Supervisor

RATES = (0.0, 0.1, 0.3, 0.5, 0.7)
SEEDS = range(6)
MAX_RETRIES = 3


def _block():
    def a0(ws):
        time.sleep(0.01)
        return 42

    def a1(ws):
        time.sleep(0.04)
        return 42

    def a2(ws):
        time.sleep(0.08)
        return 42

    a0.__name__, a1.__name__, a2.__name__ = "a0", "a1", "a2"
    return [a0, a1, a2]


def sweep():
    rows = []
    for rate in RATES:
        stats = {
            "bare_done": 0, "bare_lat": 0.0,
            "sup_done": 0, "sup_lat": 0.0, "sup_attempts": 0,
        }
        for seed in SEEDS:
            plan = FaultPlan.crashes(seed=seed, rate=rate)

            t0 = time.perf_counter()
            bare = run_alternatives(_block(), backend="fork", fault_plan=plan)
            stats["bare_lat"] += time.perf_counter() - t0
            stats["bare_done"] += bare.winner is not None

            sup = Supervisor(
                max_retries=MAX_RETRIES, backoff_s=0.005, fault_plan=plan
            )
            t0 = time.perf_counter()
            out = sup.run(_block(), backend="fork")
            stats["sup_lat"] += time.perf_counter() - t0
            stats["sup_done"] += out.winner is not None
            stats["sup_attempts"] += out.attempts
        n = len(SEEDS)
        rows.append(
            (
                rate,
                stats["bare_done"] / n,
                stats["bare_lat"] / n,
                stats["sup_done"] / n,
                stats["sup_lat"] / n,
                stats["sup_attempts"] / n,
            )
        )
    return rows


def watchdog_case():
    """Latency of an all-hung block: bare timeout vs watchdog ladder."""
    plan = FaultPlan(seed=0, rates={FaultKind.HANG: 1.0}, hang_s=30.0)

    t0 = time.perf_counter()
    bare = run_alternatives(
        _block(), backend="fork", fault_plan=plan, timeout=1.0
    )
    bare_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    dogged = run_alternatives(
        _block(),
        backend="fork",
        fault_plan=plan,
        watchdog=WatchdogPolicy(soft_deadline_s=0.2, term_grace_s=0.1),
    )
    dogged_s = time.perf_counter() - t0
    return [
        ("block timeout 1.0s", bare_s, bare.timed_out, "-"),
        (
            "watchdog 0.2s + 0.1s grace",
            dogged_s,
            dogged.timed_out,
            " -> ".join(
                e["action"]
                for e in dogged.watchdog_events
                if e["index"] == 0
            ),
        ),
    ]


def test_completion_vs_fault_rate(benchmark):
    rows = benchmark.pedantic(sweep, iterations=1, rounds=1)
    text = table(
        [
            "crash rate", "bare done", "bare lat (s)",
            "supervised done", "supervised lat (s)", "mean attempts",
        ],
        rows, fmt="8.3f",
    )
    report("robustness_faults", text)

    by_rate = {r[0]: r for r in rows}
    # fault-free: both modes always commit, supervision adds ~no attempts
    assert by_rate[0.0][1] == 1.0 and by_rate[0.0][3] == 1.0
    assert by_rate[0.0][5] == 1.0
    # the supervised block commits at every swept rate
    for rate in RATES:
        assert by_rate[rate][3] == 1.0, f"supervised block failed at rate {rate}"
        assert by_rate[rate][1] <= by_rate[rate][3]
    # at 70% crashes whole first waves get wiped: retries genuinely happen
    assert by_rate[0.7][5] > 1.0


def test_watchdog_bounds_hang_latency(benchmark):
    rows = benchmark.pedantic(watchdog_case, iterations=1, rounds=1)
    text = table(
        ["strategy", "latency (s)", "timed out", "escalation"], rows, fmt="8.3f"
    )
    report("robustness_watchdog", text)
    bare_s = rows[0][1]
    dogged_s = rows[1][1]
    assert dogged_s < bare_s  # the ladder beats waiting for the block timeout
    assert dogged_s < 5.0  # and is nowhere near the 30s hang
    assert rows[1][3].startswith("sigterm")


if __name__ == "__main__":
    for row in sweep():
        print(row)
    for row in watchdog_case():
        print(row)
