"""Cold-restart recovery time vs journal length, with and without compaction.

The durable-restart layer's headline number: how long a dead process
takes to become a serving process again, as a function of how much WAL
it must replay. Compaction's payoff is that the replay length is bounded
by records-since-snapshot instead of the journal's whole history — this
bench measures both curves, asserts the bound, and proves the corrupt-
snapshot path *degrades* (full replay + structured quarantine report)
rather than losing data.

Run standalone with ``--quick`` for the CI smoke, or under
``pytest benchmarks/ --benchmark-only`` for the timed variant. Emits
``benchmarks/results/restart_recovery.{txt,json}``.
"""

import sys
import time
from dataclasses import dataclass

from _harness import mean_std, metric, report, report_json, table
from repro.journal import (
    CommitJournal,
    MemoryJournalStorage,
    find_block_win,
    record_block_win,
)
from repro.journal.wal import SNAP_MAGIC, _FRAME

LENGTHS = (200, 1000, 4000)
QUICK_LENGTHS = (100, 400)
REPEATS = 5
QUICK_REPEATS = 2

HEADERS = (
    "records", "open ms (raw)", "open ms (compacted)", "speedup",
    "replay after compact",
)


@dataclass
class _Winner:
    index: int
    name: str
    value: object


def _grow_journal(storage, n_requests: int) -> None:
    """A serving-shaped history: admits, block wins, reads, releases."""
    journal = CommitJournal(storage=storage)
    for i in range(n_requests):
        txn = journal.begin(
            "admit", request=i, tenant=f"t{i % 4}", spec={"n": i},
            priority=0, cost=1.0, timeout=None,
        )
        journal.seal(txn)
        record_block_win(journal, i, 0, _Winner(0, "fast", i * 7))
        journal.mark_applied(txn, status="committed")
        if i % 16 == 0:
            journal.note_read("tty", b"x" * 32)


def _open_ms(storage, repeats: int) -> tuple[float, float, CommitJournal]:
    samples = []
    journal = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        journal = CommitJournal(storage=storage)
        samples.append((time.perf_counter() - t0) * 1e3)
    mu, sd = mean_std(samples)
    return mu, sd, journal


def sweep_restart(lengths=LENGTHS, repeats=REPEATS) -> list[list]:
    rows = []
    for n in lengths:
        raw = MemoryJournalStorage()
        _grow_journal(raw, n)
        raw_ms, _, raw_journal = _open_ms(raw, repeats)

        compacted = MemoryJournalStorage(raw.load())
        journal = CommitJournal(storage=compacted)
        journal.compact()
        # the replay bound: nothing outside the snapshot remains
        replay = journal.records_since_snapshot()
        assert replay == 0, (
            f"compaction left {replay} records to replay "
            "(must be bounded by records-since-snapshot)"
        )
        compact_ms, _, compact_journal = _open_ms(compacted, repeats)
        assert compact_journal.restored_from_snapshot

        # the exactly-once ledger is preserved bit-for-bit
        for i in (0, n // 2, n - 1):
            a = find_block_win(raw_journal, i)
            b = find_block_win(compact_journal, i)
            assert a == b and a["value"] == i * 7, (i, a, b)

        rows.append([
            n, raw_ms, compact_ms,
            raw_ms / compact_ms if compact_ms > 0 else float("inf"),
            replay,
        ])
    return rows


def corrupt_snapshot_recovery(n_requests: int = 200) -> dict:
    """A corrupted snapshot must degrade to full replay + quarantine."""
    storage = MemoryJournalStorage()
    _grow_journal(storage, n_requests)
    journal = CommitJournal(storage=storage)
    journal.snapshot()

    raw = bytearray(storage.load())
    at = raw.index(SNAP_MAGIC) + len(SNAP_MAGIC) + _FRAME.size + 8
    raw[at] ^= 0xFF
    damaged = MemoryJournalStorage(bytes(raw))

    t0 = time.perf_counter()
    reopened = CommitJournal(storage=damaged)
    degraded_ms = (time.perf_counter() - t0) * 1e3

    assert not reopened.restored_from_snapshot, "corrupt snapshot must not load"
    assert len(reopened.quarantines) == 1, "damage must be quarantined"
    entry = reopened.quarantines[0]
    assert entry.site == "snapshot" and entry.crc_expected != entry.crc_got
    # full-replay equivalence: every committed value survives
    for i in range(n_requests):
        win = find_block_win(reopened, i)
        assert win is not None and win["value"] == i * 7, i
    return {
        "degraded_open_ms": degraded_ms,
        "quarantined_records": len(reopened.quarantines),
        "values_recovered": n_requests,
    }


def _check_rows(rows) -> None:
    for n, raw_ms, compact_ms, speedup, replay in rows:
        assert replay == 0, (n, replay)
    # at the longest journal, opening the compacted image must not be
    # slower than replaying the full WAL (it is usually much faster)
    n, raw_ms, compact_ms, speedup, _ = rows[-1]
    assert compact_ms <= raw_ms * 1.5, (
        f"compacted open ({compact_ms:.1f} ms) slower than raw replay "
        f"({raw_ms:.1f} ms) at {n} records"
    )


def _emit(rows, corrupt) -> None:
    report("restart_recovery", table(HEADERS, rows, fmt="8.2f"))
    n, raw_ms, compact_ms, speedup, replay = rows[-1]
    report_json("restart_recovery", [
        metric("restart_open_raw_ms", raw_ms, "ms"),
        metric("restart_open_compacted_ms", compact_ms, "ms"),
        metric("restart_compaction_speedup", speedup, "x"),
        metric("restart_replay_after_compact", replay, "records"),
        metric("restart_journal_records", n, "records"),
        metric(
            "restart_corrupt_snapshot_open_ms",
            corrupt["degraded_open_ms"], "ms",
        ),
        metric(
            "restart_quarantined_records",
            corrupt["quarantined_records"], "records",
        ),
    ])


def test_restart_recovery(benchmark):
    rows = benchmark.pedantic(
        sweep_restart, kwargs={"lengths": QUICK_LENGTHS, "repeats": 2},
        iterations=1, rounds=1,
    )
    _check_rows(rows)
    _emit(rows, corrupt_snapshot_recovery(100))


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    lengths = QUICK_LENGTHS if quick else LENGTHS
    repeats = QUICK_REPEATS if quick else REPEATS
    rows = sweep_restart(lengths, repeats)
    print(table(HEADERS, rows, fmt="8.2f"))
    _check_rows(rows)
    corrupt = corrupt_snapshot_recovery(100 if quick else 200)
    print(
        f"corrupt snapshot: degraded open {corrupt['degraded_open_ms']:.2f} ms, "
        f"{corrupt['quarantined_records']} quarantined, "
        f"{corrupt['values_recovered']} values recovered"
    )
    _emit(rows, corrupt)
    print("ok")
