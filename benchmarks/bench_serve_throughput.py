"""Serving throughput: latency / throughput / shed-rate vs offered load.

Eight tenants contend for a four-slot world budget through the
speculation service (repro.serve). Three phases per policy arm:

- **light**: paced submissions well under capacity — nothing may shed;
- **burst**: every tenant dumps its backlog at once with no deadline —
  every admitted request commits, which is where the adaptive-vs-naive
  p50 comparison and the exactly-once journal audit are honest (a
  deadlined phase would shed the slow tail and bias p50 downward);
- **overload**: the same burst under a tight deadline — the
  deadline-aware shedder must drop part of the tail.

The naive arm (FixedSpeculationPolicy + require_full_grant) is the
paper's "every caller assumes it owns the machine" strawman: each
request waits for one slot per alternative and spawns all of them, so
the pool serialises. The adaptive arm learns the winning alternative
and degrades K under load, so requests pipeline four-wide.
"""

import statistics
import sys
import threading
import time

from _harness import metric, report, report_json, table
from repro.errors import AdmissionRejected
from repro.journal import CommitJournal, MemoryJournalStorage
from repro.obs import Observability
from repro.serve import (
    AdaptiveSpeculationPolicy,
    AdmissionQueue,
    FixedSpeculationPolicy,
    SpeculationService,
    WorldBudget,
)

TENANTS = 8
SLOTS = 4
WORKERS = 8

LIGHT_GAP_S = 0.05
LIGHT_DEADLINE_S = 2.0
OVERLOAD_DEADLINE_S = 0.08

REQUESTS = {"light": 3, "burst": 10, "overload": 10}
QUICK_REQUESTS = {"light": 2, "burst": 6, "overload": 8}

HEADERS = (
    "arm", "phase", "offered", "committed", "shed", "rejected",
    "p50_ms", "p95_ms", "thru_rps",
)


def alt_fast(ws):
    time.sleep(0.004)
    ws["path"] = "fast"
    return "fast"


def alt_slow_a(ws):
    time.sleep(0.02)
    return "slow-a"


def alt_slow_b(ws):
    time.sleep(0.02)
    return "slow-b"


def alt_slow_c(ws):
    time.sleep(0.02)
    return "slow-c"


ALTS = [alt_fast, alt_slow_a, alt_slow_b, alt_slow_c]


def make_service(arm, journal=None, obs=None):
    budget = WorldBudget(SLOTS, obs=obs)
    queue = AdmissionQueue(depth=256, tenant_depth=64, obs=obs)
    if arm == "adaptive":
        svc = SpeculationService(
            budget, queue=queue, policy=AdaptiveSpeculationPolicy(),
            workers=WORKERS, journal=journal, obs=obs,
        )
    else:
        svc = SpeculationService(
            budget, queue=queue, policy=FixedSpeculationPolicy(),
            workers=WORKERS, require_full_grant=True,
            journal=journal, obs=obs,
        )
    return budget, svc


def run_phase(svc, requests_per_tenant, gap_s, deadline_s):
    """Submit from TENANTS threads; return (results, rejected, wall_s)."""
    tickets = []
    rejected = [0]
    lock = threading.Lock()

    def tenant_loop(name):
        for _ in range(requests_per_tenant):
            try:
                ticket = svc.submit(name, ALTS, deadline_s=deadline_s)
            except AdmissionRejected:
                with lock:
                    rejected[0] += 1
            else:
                with lock:
                    tickets.append(ticket)
            if gap_s:
                time.sleep(gap_s)

    start = time.monotonic()
    threads = [
        threading.Thread(target=tenant_loop, args=(f"tenant-{i}",))
        for i in range(TENANTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    results = [t.result(timeout=60.0) for t in tickets]
    wall_s = time.monotonic() - start
    return results, rejected[0], wall_s


def phase_row(arm, phase, results, rejected, wall_s):
    committed = [r for r in results if r.status == "committed"]
    shed = sum(1 for r in results if r.status == "shed")
    latencies = sorted(r.latency_s for r in committed)
    p50 = statistics.median(latencies) * 1000 if latencies else 0.0
    p95 = latencies[int(0.95 * (len(latencies) - 1))] * 1000 if latencies else 0.0
    thru = len(committed) / wall_s if wall_s > 0 else 0.0
    offered = len(results) + rejected
    return (arm, phase, offered, len(committed), shed, rejected, p50, p95, thru)


def audit_exactly_once(journal, results):
    """Every committed request appears in the journal exactly once, applied.

    Returns the number of violations (0 is the pass condition).
    """
    committed_seqs = sorted(r.seq for r in results if r.status == "committed")
    intents = [
        r for r in journal.records()
        if r["t"] == "intent" and r["kind"] == "block"
    ]
    blocks = sorted(r["data"]["block"] for r in intents)
    violations = 0
    if blocks != committed_seqs:
        violations += 1
    for rec in intents:
        if journal.status(rec["seq"]) != "applied":
            violations += 1
    return violations


def run_arm(arm, counts):
    storage = MemoryJournalStorage()
    journal = CommitJournal(storage=storage)
    obs = Observability()
    budget, svc = make_service(arm, journal=journal, obs=obs)
    rows, all_results = [], []
    with svc:
        for phase, gap_s, deadline_s in (
            ("light", LIGHT_GAP_S, LIGHT_DEADLINE_S),
            ("burst", 0.0, None),
            ("overload", 0.0, OVERLOAD_DEADLINE_S),
        ):
            results, rejected, wall_s = run_phase(
                svc, counts[phase], gap_s, deadline_s
            )
            rows.append(phase_row(arm, phase, results, rejected, wall_s))
            all_results.extend(results)
    violations = audit_exactly_once(journal, all_results)
    hwm = budget.high_watermark
    hwm_metric = obs.registry.get("mw_serve_slots_hwm").value()
    return rows, violations, hwm, hwm_metric


def sweep(counts):
    out = {}
    for arm in ("adaptive", "naive"):
        out[arm] = run_arm(arm, counts)
    return out


def shed_rate(row):
    _, _, offered, _, shed, rejected, *_ = row
    admitted = offered - rejected
    return shed / admitted if admitted else 0.0


def _check(results):
    for arm, (rows, violations, hwm, hwm_metric) in results.items():
        by_phase = {r[1]: r for r in rows}
        assert violations == 0, f"{arm}: journal exactly-once audit failed"
        assert hwm <= SLOTS, f"{arm}: budget exceeded ({hwm} > {SLOTS})"
        assert hwm_metric <= SLOTS, f"{arm}: mw_serve_slots_hwm over budget"
        assert shed_rate(by_phase["light"]) == 0.0, f"{arm}: light phase shed"
        assert by_phase["burst"][4] == 0, f"{arm}: deadline-less burst shed"
    adaptive = {r[1]: r for r in results["adaptive"][0]}
    assert shed_rate(adaptive["overload"]) > 0.0, "overload phase never shed"
    naive = {r[1]: r for r in results["naive"][0]}
    assert adaptive["burst"][6] < naive["burst"][6], (
        "adaptive p50 did not beat naive spawn-all-N "
        f"({adaptive['burst'][6]:.1f}ms vs {naive['burst'][6]:.1f}ms)"
    )


def _metrics(results):
    adaptive = {r[1]: r for r in results["adaptive"][0]}
    naive = {r[1]: r for r in results["naive"][0]}
    return [
        metric("serve_light_shed_rate", shed_rate(adaptive["light"]), "ratio"),
        metric("serve_overload_shed_rate", shed_rate(adaptive["overload"]), "ratio"),
        metric("serve_burst_p50_adaptive", adaptive["burst"][6], "ms"),
        metric("serve_burst_p50_naive", naive["burst"][6], "ms"),
        metric("serve_burst_throughput_adaptive", adaptive["burst"][8], "req/s"),
        metric("serve_burst_throughput_naive", naive["burst"][8], "req/s"),
        metric("serve_slots_hwm", float(results["adaptive"][2]), "slots"),
        metric("serve_exactly_once_violations",
               float(results["adaptive"][1] + results["naive"][1]), "count"),
    ]


def _render(results):
    rows = results["adaptive"][0] + results["naive"][0]
    return table(HEADERS, rows, fmt="8.2f")


def test_serve_throughput(benchmark):
    results = benchmark.pedantic(sweep, args=(REQUESTS,), iterations=1, rounds=1)
    report("serve_throughput", _render(results))
    report_json("serve_throughput", _metrics(results))
    _check(results)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    counts = QUICK_REQUESTS if quick else REQUESTS
    swept = sweep(counts)
    print(_render(swept))
    report_json("serve_throughput", _metrics(swept))
    _check(swept)
    print("ok")
