"""Network robustness bench: completion and added latency vs link loss.

Sweeps the link's transfer-failure probability and, for each rate, runs
real remote forks (checkpoint -> ship over the fault-injected link ->
restart in a forked child) across a batch of seeds. Reported per rate:

- completion fraction (every task must commit — by retries or by the
  local fallback; losing work is not an acceptable outcome);
- how the commits split between first-try, retried, and fallen-back;
- mean protocol attempts and the added *virtual* latency the
  unreliability cost (failed attempts, duplicate copies, backoff pauses)
  on top of the rate-0 baseline transfer.

A second table gives the same treatment to leased remote worlds: node
crash probability vs how often the lease machinery re-lands the work
locally, and what the detection (heartbeat misses -> probe ->
declare-dead) costs in beats.

Run standalone with ``--quick`` for the CI smoke (a trimmed sweep that
still exercises every code path), or under pytest-benchmark for the
full tables.
"""

import sys

from _harness import report, table
from repro.analysis.calibration import NetworkProfile
from repro.distrib.netsim import SimulatedLink
from repro.distrib.rfork import RemoteFork
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.supervisor import Supervisor

#: A fast link so wall-clock stays bench-friendly; the virtual-time
#: accounting is what the tables report.
LINK_PROFILE = NetworkProfile("bench-lan", latency_s=0.002, bandwidth_bytes_s=1e7)

RATES = (0.0, 0.1, 0.3, 0.5, 0.7)
SEEDS = range(8)
QUICK_RATES = (0.0, 0.3, 0.7)
QUICK_SEEDS = range(3)


def _task(state):
    return state["x"] * 2


def _make_rfork(rate, seed):
    plan = FaultPlan(seed=seed, rates={FaultKind.XFER_DROP: rate})
    link = SimulatedLink(LINK_PROFILE, fault_plan=plan, seed=seed)
    return RemoteFork(link=link)


def sweep_link_loss(rates=RATES, seeds=SEEDS):
    """Completion + latency vs drop probability, with the path breakdown."""
    rows = []
    for rate in rates:
        done = first_try = retried = fell_back = 0
        attempts = 0
        virtual_s = 0.0
        for seed in seeds:
            rfork = _make_rfork(rate, seed)
            result, cost = rfork.execute(_task, {"x": 21}, name=f"bench-{seed}")
            report_ = rfork.last_report
            done += result == 42
            attempts += report_["attempts"]
            virtual_s += rfork.link.clock
            if report_["fallback"] == "local":
                fell_back += 1
            elif report_["retries"]:
                retried += 1
            else:
                first_try += 1
        n = len(seeds)
        rows.append((rate, done / n, first_try, retried, fell_back,
                     attempts / n, virtual_s / n))
    # added latency is relative to the clean-link baseline
    base = rows[0][6]
    return [r[:6] + (r[6] - base,) for r in rows]


def sweep_remote_crash(rates=RATES, seeds=SEEDS):
    """Leased remote worlds: crash probability vs re-landing behaviour."""
    rows = []
    for rate in rates:
        done = relanded = 0
        beats_missed = 0
        for seed in seeds:
            plan = FaultPlan(seed=seed, rates={FaultKind.REMOTE_CRASH: rate})
            link = SimulatedLink(LINK_PROFILE, fault_plan=plan, seed=seed)
            rfork = RemoteFork(link=link)
            sup = Supervisor(fault_plan=plan)
            outcome = sup.run_remote(
                _task, {"x": 21}, rfork=rfork, work_s=1.0,
                local_backend="sequential",
            )
            done += outcome.winner is not None and outcome.winner.value == 42
            relanded += outcome.relanded
            beats_missed += outcome.extras["remote"].get("beats_missed", 0)
        n = len(seeds)
        rows.append((rate, done / n, relanded / n, beats_missed / n))
    return rows


LINK_HEADERS = (
    "drop rate", "completed", "first-try", "retried", "fallback",
    "mean attempts", "added latency (s)",
)
CRASH_HEADERS = ("crash rate", "completed", "relanded", "mean beats missed")


def _check_link_rows(rows):
    by_rate = {r[0]: r for r in rows}
    for rate, completed, *_ in rows:
        assert completed == 1.0, f"lost work at drop rate {rate}"
    assert by_rate[0.0][3] == 0 and by_rate[0.0][4] == 0  # clean link: no retries
    assert abs(by_rate[0.0][6]) < 1e-12  # and no added latency
    top = max(rows, key=lambda r: r[0])
    assert top[3] + top[4] > 0  # heavy loss genuinely exercised the protocol
    assert top[6] > 0  # and unreliability had a visible price


def _check_crash_rows(rows):
    by_rate = {r[0]: r for r in rows}
    for rate, completed, *_ in rows:
        assert completed == 1.0, f"lost work at crash rate {rate}"
    assert by_rate[0.0][2] == 0.0  # no crash, no re-landing
    top = max(rows, key=lambda r: r[0])
    assert top[2] > 0  # crashes really re-land work locally


def test_completion_vs_link_loss(benchmark):
    rows = benchmark.pedantic(sweep_link_loss, iterations=1, rounds=1)
    report("robustness_network_link", table(LINK_HEADERS, rows, fmt="8.3f"))
    _check_link_rows(rows)


def test_lease_recovery_vs_crash_rate(benchmark):
    rows = benchmark.pedantic(sweep_remote_crash, iterations=1, rounds=1)
    report("robustness_network_lease", table(CRASH_HEADERS, rows, fmt="8.3f"))
    _check_crash_rows(rows)


if __name__ == "__main__":
    quick = "--quick" in sys.argv[1:]
    rates = QUICK_RATES if quick else RATES
    seeds = QUICK_SEEDS if quick else SEEDS
    link_rows = sweep_link_loss(rates, seeds)
    print(table(LINK_HEADERS, link_rows, fmt="8.3f"))
    _check_link_rows(link_rows)
    crash_rows = sweep_remote_crash(rates, seeds)
    print(table(CRASH_HEADERS, crash_rows, fmt="8.3f"))
    _check_crash_rows(crash_rows)
    print("ok")
