"""Out-of-process shards: RPC overhead, ship-vs-fork throughput, kill fuzz.

Four experiments over :mod:`repro.cluster.remote`:

- **RPC overhead** — p50/p95 of a framed heartbeat round-trip to a live
  shard-host process over its Unix socket (connect once, then measure).
  This is the per-call tax every remote submit/steal pays on top of the
  in-process path;
- **ship vs fork** — the same tenant burst against an in-process
  2-shard router and a 2-shard router of real shard-host processes.
  Both must commit everything exactly-once; the throughput ratio prices
  what process isolation costs when nothing fails;
- **kill phase** — a 4-host remote burst with one host SIGKILLed
  mid-burst (a real ``kill -9``: no drain, no goodbye, only its journal
  file survives) and taken over. Every request still commits, and
  kill-phase throughput holds ≥ 70% of the healthy remote run;
- **kill fuzz** — seeded ``transport``-site decisions pick which hosts
  die and when (up to 2 of 3, ``host_kill_fraction`` placing the kill).
  After each run the cross-journal audit proves exactly-once commits
  across the surviving + replayed journal files.

``--quick`` shrinks bursts and seed count for CI smoke.
"""

import functools
import shutil
import statistics
import sys
import tempfile
import time

from _harness import metric, report, report_json, table
from repro.cluster import (
    ClusterRouter,
    ClusterShard,
    RemoteShardClient,
    host_kill_decision,
)
from repro.faults.plan import FaultKind, FaultPlan

TENANTS = 16
SLOTS = 2
WORKERS = 4

PINGS = {"full": 300, "quick": 80}
BURST = {"full": 48, "quick": 16}
KILL_BURST = {"full": 40, "quick": 16}
FUZZ_SEEDS = {"full": 25, "quick": 5}
FUZZ_BURST = {"full": 16, "quick": 12}

WORK_S = 0.004

HEADERS = ("phase", "shards", "offered", "committed", "failover", "thru_rps")


def val(ws, i=0):
    # module-level so it pickles across the process boundary
    time.sleep(WORK_S)
    return i * 7


def make_alts(i):
    return [functools.partial(val, i=i)]


class _Fleet:
    """A set of remote shard hosts with a shared scratch dir."""

    def __init__(self, n_shards, label, **kwargs):
        self.dir = tempfile.mkdtemp(prefix=f"mw-bench-{label}-")
        self.shards = [
            RemoteShardClient(
                sid,
                workdir=f"{self.dir}/shard{sid}",
                slots=SLOTS, workers=WORKERS,
                **kwargs,
            )
            for sid in range(n_shards)
        ]

    def cleanup(self):
        for s in self.shards:
            if s.process_alive():
                s.sigkill()
        shutil.rmtree(self.dir, ignore_errors=True)


def run_burst(router, n_requests, kill=None, remotes=None):
    """Submit a burst; ``kill`` maps shard_id → request index at which
    that shard's host is SIGKILLed (remote) or crashed (local)."""
    kill = dict(kill or {})

    def execute(sid):
        if remotes is not None:
            remotes[sid].sigkill()
        else:
            router.kill_shard(sid)
        router.takeover(sid)

    tickets = []
    start = time.monotonic()
    for i in range(n_requests):
        for sid, at in list(kill.items()):
            if i == at:
                execute(sid)
                del kill[sid]
        tickets.append(router.submit(f"tenant-{i % TENANTS}", make_alts(i)))
    for sid in kill:
        execute(sid)
    results = [t.result(timeout=60.0) for t in tickets]
    wall_s = time.monotonic() - start
    return results, wall_s


def check_burst(results, label):
    committed = [r for r in results if r.committed]
    assert len(committed) == len(results), (
        f"{label}: {len(results) - len(committed)} requests did not commit: "
        + str([(r.status, r.reason) for r in results if not r.committed][:5])
    )
    for i, r in enumerate(results):
        assert r.value == i * 7, f"{label}: request {i} returned {r.value!r}"


def audit(router, results, label):
    counts = router.audit_applied()
    violations = sum(
        1 for r in results if r.committed and counts.get(r.seq, 0) != 1
    )
    assert violations == 0, (
        f"{label}: {violations} requests violated exactly-once"
    )
    return violations


def rpc_overhead(n_pings):
    """Round-trip latency of a framed ping over the Unix socket."""
    fleet = _Fleet(1, "ping")
    try:
        shard = fleet.shards[0].start()
        for _ in range(10):  # warm the connection + host
            shard.answers_heartbeat()
        samples = []
        for _ in range(n_pings):
            t0 = time.monotonic()
            ok = shard.answers_heartbeat()
            samples.append(time.monotonic() - t0)
            assert ok
        shard.stop()
    finally:
        fleet.cleanup()
    samples.sort()
    return {
        "p50_ms": statistics.median(samples) * 1e3,
        "p95_ms": samples[int(len(samples) * 0.95)] * 1e3,
    }


def ship_vs_fork(n_requests):
    """Same burst, in-process shards vs real shard-host processes."""
    local = ClusterRouter(
        [ClusterShard(sid, slots=SLOTS, workers=WORKERS) for sid in range(2)]
    ).start(detect=False)
    try:
        results, wall_s = run_burst(local, n_requests)
        check_burst(results, "local")
        audit(local, results, "local")
        local_thru = len(results) / wall_s
    finally:
        local.stop()

    fleet = _Fleet(2, "ship")
    router = ClusterRouter(fleet.shards).start(detect=False)
    try:
        results, wall_s = run_burst(router, n_requests)
        check_burst(results, "remote")
        audit(router, results, "remote")
        remote_thru = len(results) / wall_s
    finally:
        router.stop()
        fleet.cleanup()
    rows = [
        ("local", 2, n_requests, n_requests, 0, local_thru),
        ("remote", 2, n_requests, n_requests, 0, remote_thru),
    ]
    return rows, local_thru, remote_thru


def kill_phase(n_requests):
    """Healthy 4-host remote burst, then the same burst with one host
    SIGKILLed halfway; recovery = kill thru / healthy thru."""
    fleet = _Fleet(4, "healthy")
    router = ClusterRouter(fleet.shards).start(detect=False)
    try:
        results, wall_s = run_burst(router, n_requests)
        check_burst(results, "remote-healthy")
        audit(router, results, "remote-healthy")
        healthy_thru = len(results) / wall_s
    finally:
        router.stop()
        fleet.cleanup()

    fleet = _Fleet(4, "kill")
    router = ClusterRouter(fleet.shards).start(detect=False)
    try:
        victim = router.ring.route("tenant-0")
        results, wall_s = run_burst(
            router, n_requests,
            kill={victim: n_requests // 2}, remotes=fleet.shards,
        )
        check_burst(results, "remote-kill")
        audit(router, results, "remote-kill")
        moved = sum(1 for r in results if r.failover)
        kill_thru = len(results) / wall_s
    finally:
        router.stop()
        fleet.cleanup()
    rows = [
        ("healthy", 4, n_requests, n_requests, 0, healthy_thru),
        ("sigkill", 4, n_requests, n_requests, moved, kill_thru),
    ]
    return rows, kill_thru / healthy_thru, moved


def kill_fuzz(n_seeds, n_requests):
    """Seeded mid-burst host SIGKILLs; returns exactly-once violations."""
    violations = 0
    kills = 0
    for seed in range(1, n_seeds + 1):
        plan = FaultPlan(
            seed=seed,
            rates={FaultKind.HOST_SIGKILL: 0.6},
            host_kill_fraction=0.5,
        )
        fleet = _Fleet(3, f"fuzz{seed}", call_timeout_s=0.4,
                       breaker_threshold=2, breaker_cooldown_s=0.2)
        router = ClusterRouter(fleet.shards).start(detect=False)
        try:
            doomed = [
                (sid, host_kill_decision(plan, sid, epoch=0))
                for sid in range(3)
                if host_kill_decision(plan, sid, epoch=0) is not None
            ][:2]  # keep one survivor
            schedule = {sid: int(frac * n_requests) for sid, frac in doomed}
            kills += len(schedule)
            results, _ = run_burst(
                router, n_requests, kill=schedule, remotes=fleet.shards
            )
            check_burst(results, f"fuzz[{seed}]")
            violations += audit(router, results, f"fuzz[{seed}]")
        finally:
            router.stop()
            fleet.cleanup()
    return violations, kills


def sweep(mode):
    ping = rpc_overhead(PINGS[mode])
    ship_rows, local_thru, remote_thru = ship_vs_fork(BURST[mode])
    kill_rows, recovery, moved = kill_phase(KILL_BURST[mode])
    violations, kills = kill_fuzz(FUZZ_SEEDS[mode], FUZZ_BURST[mode])
    return {
        "rows": ship_rows + kill_rows,
        "ping": ping,
        "local_thru": local_thru,
        "remote_thru": remote_thru,
        "recovery": recovery,
        "failover_requests": moved,
        "fuzz_violations": violations,
        "fuzz_kills": kills,
        "fuzz_seeds": FUZZ_SEEDS[mode],
    }


def _check(out):
    assert out["ping"]["p50_ms"] < 100.0, (
        f"RPC round-trip p50 {out['ping']['p50_ms']:.2f}ms is implausibly "
        "slow for a local Unix socket"
    )
    assert out["remote_thru"] > 0 and out["local_thru"] > 0
    assert out["recovery"] >= 0.70, (
        f"SIGKILL-phase throughput recovered only {out['recovery']:.0%} "
        "of the healthy remote run (floor: 70%)"
    )
    assert out["fuzz_violations"] == 0, "kill fuzz: exactly-once violated"
    assert out["fuzz_kills"] > 0, "kill fuzz never killed a host"


def _metrics(out):
    return [
        metric("remote_rpc_p50", out["ping"]["p50_ms"], "ms"),
        metric("remote_rpc_p95", out["ping"]["p95_ms"], "ms"),
        metric("remote_thru_2shard", out["remote_thru"], "req/s"),
        metric("local_thru_2shard", out["local_thru"], "req/s"),
        metric("remote_vs_local_thru",
               out["remote_thru"] / out["local_thru"], "ratio"),
        metric("remote_kill_recovery", out["recovery"], "ratio"),
        metric("remote_kill_failover_requests",
               float(out["failover_requests"]), "count"),
        metric("remote_fuzz_seeds", float(out["fuzz_seeds"]), "count"),
        metric("remote_fuzz_host_kills", float(out["fuzz_kills"]), "count"),
        metric("remote_exactly_once_violations",
               float(out["fuzz_violations"]), "count"),
    ]


def _render(out):
    lines = [
        table(HEADERS, out["rows"], fmt="8.2f"),
        f"rpc round-trip: p50 {out['ping']['p50_ms']:.3f}ms "
        f"p95 {out['ping']['p95_ms']:.3f}ms",
    ]
    return "\n".join(lines)


def test_cluster_remote(benchmark):
    out = benchmark.pedantic(sweep, args=("quick",), iterations=1, rounds=1)
    report("cluster_remote", _render(out))
    report_json("cluster_remote", _metrics(out))
    _check(out)


if __name__ == "__main__":
    mode = "quick" if "--quick" in sys.argv[1:] else "full"
    out = sweep(mode)
    print(_render(out))
    report_json("cluster_remote", _metrics(out))
    _check(out)
    print("ok")
