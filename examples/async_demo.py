#!/usr/bin/env python3
"""Tens of thousands of worlds: the asyncio backend at work.

The fork and thread backends spend a process or a thread per world,
which caps a block at tens of concurrent alternatives. When the
alternatives are I/O-bound — network probes, replica reads, tool calls
— `repro.aio` makes a world an asyncio *task* instead, and the same
block holds ten thousand concurrent worlds in one process. Three acts:

1. **a replica race** — query five "replicas" with very different
   latencies; the fastest acceptable answer commits, the rest are
   eliminated by task cancellation (the substrate's SIGKILL);
2. **the sync vs coroutine entry points** — `backend="async"` from
   plain code, `await alt_block_async(...)` from inside a host loop;
3. **scale** — a single block of 10,000 worlds, all verifiably in
   flight at the same instant.

Run: PYTHONPATH=src python examples/async_demo.py
"""

import asyncio
import time

from repro import Alternative, Guard, run_alternatives
from repro.aio import alt_block_async


# ---------------------------------------------------------------------------
# act 1: race five replicas, commit the fastest acceptable answer
# ---------------------------------------------------------------------------
REPLICAS = {
    "cache": 0.002,        # fast, but stale (the guard rejects it)
    "local-disk": 0.02,
    "zone-b": 0.08,
    "zone-c": 0.12,
    "cold-storage": 0.50,
}


def probe(name, latency_s):
    async def body(ws):
        await asyncio.sleep(latency_s)       # the simulated I/O wait
        ws["served_by"] = name
        return {"value": 42, "fresh": name != "cache"}

    return Alternative(
        body,
        guard=Guard(name="fresh-only", accept=lambda ws, r: r["fresh"]),
        name=name,
    )


def replica_race():
    alts = [probe(n, s) for n, s in REPLICAS.items()]
    t0 = time.perf_counter()
    out = run_alternatives(alts, backend="async")
    wall_ms = (time.perf_counter() - t0) * 1000
    print(f"winner: {out.winner.name} in {wall_ms:.1f} ms "
          f"(cache was faster but stale — guard rejected it)")
    print(f"eliminated: {out.extras['eliminated']} slower replicas, "
          f"state: served_by={out.extras['state']['served_by']}")
    assert out.winner.name == "local-disk"


# ---------------------------------------------------------------------------
# act 2: the coroutine-native entry, for hosts that already run a loop
# ---------------------------------------------------------------------------
async def host_application():
    # a web handler / agent loop / scheduler that wants a speculative
    # block *inside* its own event loop: no second loop, no thread hop
    out = await alt_block_async(
        [probe(n, s) for n, s in REPLICAS.items()]
    )
    print(f"inside the host loop: winner={out.winner.name}, "
          f"elapsed={out.elapsed_s * 1000:.1f} ms")
    return out


# ---------------------------------------------------------------------------
# act 3: ten thousand worlds, all in flight at once
# ---------------------------------------------------------------------------
def ten_thousand_worlds(n=10_000):
    state = {"inflight": 0, "peak": 0}

    async def world(ws, release, i):
        state["inflight"] += 1
        state["peak"] = max(state["peak"], state["inflight"])
        if state["inflight"] >= n:
            release.set()                    # the last one in frees all
        await release.wait()
        state["inflight"] -= 1
        return i

    async def block():
        release = asyncio.Event()
        alts = [
            (lambda ws, _i=i, _r=release: world(ws, _r, _i))
            for i in range(n)
        ]
        t0 = time.perf_counter()
        out = await alt_block_async(alts)
        return out, time.perf_counter() - t0

    out, wall_s = asyncio.run(block())
    print(f"{state['peak']} worlds simultaneously in flight; "
          f"world {out.value} committed after {wall_s:.2f} s "
          f"({wall_s / n * 1e6:.1f} us/world)")
    assert state["peak"] == n


if __name__ == "__main__":
    print("-- act 1: replica race (backend='async') --")
    replica_race()
    print("\n-- act 2: coroutine-native entry (alt_block_async) --")
    asyncio.run(host_application())
    print("\n-- act 3: 10,000 concurrent worlds --")
    ten_thousand_worlds()
