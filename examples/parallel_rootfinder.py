#!/usr/bin/env python3
"""The Table I workload: a parallel Jenkins-Traub rootfinder.

The complex Jenkins-Traub zero finder starts from ``s = beta * e^{i*theta}``
with theta a random angle. Different angles converge at different speeds
(and some fail outright), so racing several angle choices as Multiple
Worlds buys the best angle's runtime. This reproduces the paper's section
4.3 experiment and prints a Table I of our own.
"""

import numpy as np

from repro.apps.poly.rootfind import (
    ParallelRootfinder,
    Polynomial,
    find_all_zeros,
)
from repro.apps.poly.rootfind.parallel import (
    default_table_polynomial,
    render_table_one,
)


def main() -> None:
    poly = default_table_polynomial(degree=32)
    print(f"polynomial: degree {poly.degree}, clustered + scattered roots\n")

    print("=== single runs: the angle choice matters ===")
    finder = ParallelRootfinder(poly)
    for run in finder.sequential_runs(range(6)):
        status = "FAILED" if run.failed else f"{len(run.zeros)} zeros"
        print(f"  angle-seed {run.seed}: {run.elapsed_s * 1000:7.1f} ms  "
              f"({run.angle_tries} angle tries, {status})")

    print("\n=== Table I (2 simulated processors, like the Ardent Titan) ===")
    rows = finder.table_one([1, 2, 3, 4, 5, 6], processors=2)
    print(render_table_one(rows))
    print("\nreading the table: par ~= min + overhead while processes <= "
          "processors;\nbeyond that the processors saturate and par grows — "
          "the paper's procs>=3 rows.")

    print("\n=== sanity: the zeros are real zeros ===")
    report = find_all_zeros(poly, seed=0)
    # compare |p(z)| against its own floating-point error bound: a ratio
    # below 1 means the zero is as exact as the arithmetic can express
    ratios = []
    for z in report.zeros:
        value, bound = poly.eval_with_error_bound(z)
        ratios.append(abs(value) / bound if bound > 0 else 0.0)
    print(f"max |p(z)| / rounding-bound over {len(report.zeros)} zeros: "
          f"{max(ratios):.3f}  (< 1 means machine-exact)")

    print("\n=== and the classic stress test ===")
    wilkinson = Polynomial.wilkinson(15)
    report = find_all_zeros(wilkinson, seed=1)
    reals = sorted(z.real for z in report.zeros)
    print(f"Wilkinson-15 roots: {np.round(reals, 4).tolist()}")


if __name__ == "__main__":
    main()
