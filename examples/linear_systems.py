#!/usr/bin/env python3
"""A linear-system polyalgorithm under Multiple Worlds.

Rice's polyalgorithm idea (paper section 4.3) on ``Ax = b``: four methods
— conjugate gradient, Jacobi, Gauss-Seidel, direct LU — each strongest on
a different matrix class. The analyst's applicability advice gates which
methods even try; Multiple Worlds races the method orderings so the
problem never waits on a misjudged first choice.
"""

import numpy as np

from repro.apps.poly.linear_solvers import (
    is_diagonally_dominant,
    is_spd,
    is_symmetric,
    linear_polyalgorithm,
    residual,
)


def make_problems():
    rng = np.random.default_rng(42)
    n = 40

    m = rng.normal(size=(n, n))
    spd = m @ m.T + n * np.eye(n)

    dominant = rng.normal(size=(n, n))
    dominant += np.diagflat(np.abs(dominant).sum(axis=1) + 1.0)

    general = rng.normal(size=(n, n))

    # symmetric but indefinite: structure that misleads the CG heuristic
    sym = rng.normal(size=(n, n))
    tricky = (sym + sym.T) / 2

    b = rng.normal(size=n)
    return {
        "symmetric positive definite": (spd, b),
        "diagonally dominant": (dominant, b),
        "general dense": (general, b),
        "symmetric indefinite (misleading)": (tricky, b),
    }


def describe(a):
    tags = []
    if is_spd(a):
        tags.append("SPD")
    elif is_symmetric(a):
        tags.append("symmetric")
    if is_diagonally_dominant(a, strict=False):
        tags.append("diag-dominant")
    return ", ".join(tags) or "no exploitable structure"


def main() -> None:
    poly = linear_polyalgorithm(tol=1e-8)
    for label, (a, b) in make_problems().items():
        print(f"=== {label} [{describe(a)}] ===")
        seq = poly.run_sequential({"A": a, "b": b})
        x = np.asarray(seq.value)
        print(f"  sequential: {seq.method:<20} attempts={seq.attempts} "
              f"residual={residual(a, b, x):.2e}")
        par = poly.run_worlds({"A": a.tolist(), "b": b.tolist()}, backend="thread")
        x = np.asarray(par.value)
        print(f"  worlds    : {par.method:<20} "
              f"(winning ordering {par.outcome.winner.name}) "
              f"residual={residual(a, b, x):.2e}")
        print()
    print("on the misleading matrix the CG-first ordering stalls and a "
          "different\nworld's ordering delivers — without anyone having "
          "diagnosed the matrix first.")


if __name__ == "__main__":
    main()
