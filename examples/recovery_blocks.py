#!/usr/bin/env python3
"""Recovery blocks (paper section 4.1): standby spares, sped up.

A recovery block computes a navigation fix three ways:

- ``kalman`` — the primary: precise, but we inject a transient fault;
- ``weighted_average`` — alternate 1: simple, usually fine;
- ``last_known_good`` — alternate 2: always passes but least useful.

The acceptance test (the ``ensure`` clause) bounds the residual error.
Classic sequential execution pays for the primary's failure *before*
trying a spare; the Multiple Worlds version races all three and commits
the first acceptable answer, so a faulty primary costs nothing extra.
"""

import statistics
import time

from repro.apps.recovery import RecoveryBlock, flaky

MEASUREMENTS = [10.1, 9.8, 10.3, 9.9, 30.0, 10.0, 10.2]  # one outlier
TRUTH = 10.05


def kalman(ws):
    """The 'precise' estimator (a trimmed mean standing in for a filter)."""
    time.sleep(0.05)  # the expensive model
    samples = sorted(ws["measurements"])[1:-1]
    ws["fix"] = sum(samples) / len(samples)
    return ws["fix"]


def weighted_average(ws):
    time.sleep(0.01)
    ws["fix"] = statistics.median(ws["measurements"])
    return ws["fix"]


def last_known_good(ws):
    """The crudest spare: dead-reckon from the stale fix (drifts)."""
    ws["fix"] = ws["last_fix"] + ws["drift"]
    return ws["fix"]


def acceptable(ws, _result):
    """ensure: the fix is within 0.25 units of the running estimate.

    Tight enough that the dead-reckoning spare only passes when the
    drift is small — an acceptance test must encode *sufficiency*, or a
    raced recovery block will happily commit its crudest spare.
    """
    return abs(ws["fix"] - ws["last_fix"]) < 0.25


def main() -> None:
    state = {"measurements": MEASUREMENTS, "last_fix": TRUTH, "drift": 0.4}

    print("=== healthy primary ===")
    block = RecoveryBlock(acceptable, kalman, weighted_average, last_known_good)
    seq = block.run_sequential(state)
    par = block.run_parallel(state, backend="fork")
    print(f"sequential: {seq.alternate} -> {seq.value:.3f}  "
          f"({seq.elapsed_s * 1000:.1f} ms, attempts={seq.attempts})")
    print(f"parallel  : {par.alternate} -> {par.value:.3f}  "
          f"({par.elapsed_s * 1000:.1f} ms)")

    print("\n=== primary with an injected transient fault ===")
    faulty_primary = flaky(kalman, failures_before_success=1, name="kalman")
    block = RecoveryBlock(acceptable, faulty_primary, weighted_average, last_known_good)
    seq = block.run_sequential(state)
    # fresh injection for the parallel run (the counter was consumed)
    faulty_primary = flaky(kalman, failures_before_success=1, name="kalman")
    block = RecoveryBlock(acceptable, faulty_primary, weighted_average, last_known_good)
    par = block.run_parallel(state, backend="fork")
    print(f"sequential: {seq.alternate} -> {seq.value:.3f}  "
          f"({seq.elapsed_s * 1000:.1f} ms, attempts={seq.attempts})")
    print(f"parallel  : {par.alternate} -> {par.value:.3f}  "
          f"({par.elapsed_s * 1000:.1f} ms)")
    print("\nthe parallel block never pays for the primary's failure: a "
          "spare was already running in its own world.")


if __name__ == "__main__":
    main()
