#!/usr/bin/env python3
"""Quickstart: run mutually exclusive alternatives as Multiple Worlds.

Three alternatives attack the same task — "produce a sorted copy of the
data" — with very different speeds, and one of them is wrong (it fails
its guard). We run the block twice:

1. on the deterministic **simulation** backend (virtual time, calibrated
   overheads, reproducible to the microsecond), and
2. on the real **fork** backend (actual processes, actual kernel COW).

The result in both cases: the fastest *acceptable* alternative's state
change survives, everything else leaves no trace.
"""

import time

from repro import Alternative, EliminationPolicy, Guard, run_alternatives


# ---------------------------------------------------------------------------
# the alternatives: each receives a workspace dict it may freely mutate;
# at most one alternative's mutations survive the block.
# ---------------------------------------------------------------------------
def quicksortish(ws):
    """Fast and correct."""
    ws["data"] = sorted(ws["data"])
    return "quicksortish"


def bogo_lite(ws):
    """Fast but WRONG — the guard will reject it."""
    ws["data"] = list(reversed(ws["data"]))
    return "bogo-lite"


def bubble(ws):
    """Slow and correct (sleeps to simulate being naive)."""
    data = list(ws["data"])
    for i in range(len(data)):
        for j in range(len(data) - 1 - i):
            if data[j] > data[j + 1]:
                data[j], data[j + 1] = data[j + 1], data[j]
    time.sleep(0.3)
    ws["data"] = data
    return "bubble"


def is_sorted(ws, _result):
    data = ws["data"]
    return all(data[i] <= data[i + 1] for i in range(len(data) - 1))


ALTERNATIVES = [
    Alternative(quicksortish, guard=Guard(accept=is_sorted), sim_cost=1.0),
    Alternative(bogo_lite, guard=Guard(accept=is_sorted), sim_cost=0.2),
    Alternative(bubble, guard=Guard(accept=is_sorted), sim_cost=6.0),
]

INITIAL = {"data": [5, 3, 8, 1, 9, 2]}


def main() -> None:
    print("=== simulation backend (virtual time) ===")
    outcome = run_alternatives(
        ALTERNATIVES,
        initial=INITIAL,
        backend="sim",
        cpus=3,
        elimination=EliminationPolicy.ASYNCHRONOUS,
    )
    print(f"winner     : {outcome.winner.name}")
    print(f"sorted data: {outcome.extras['state']['data']}")
    print(f"virtual response time: {outcome.elapsed_s:.6f} s "
          f"(bogo-lite was faster but its guard rejected it)")
    print(f"overhead   : {outcome.overhead.as_dict()}")
    losers = {l.name: l.error for l in outcome.losers}
    print(f"losers     : {losers}")

    print("\n=== fork backend (real processes, real COW) ===")
    outcome = run_alternatives(ALTERNATIVES, initial=INITIAL, backend="fork")
    print(f"winner     : {outcome.winner.name}")
    print(f"sorted data: {outcome.extras['state']['data']}")
    print(f"wall-clock response time: {outcome.elapsed_s:.4f} s "
          f"(did not wait for bubble's 0.3 s nap)")


if __name__ == "__main__":
    main()
