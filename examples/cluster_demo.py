#!/usr/bin/env python3
"""A 3-shard speculation cluster surviving a shard kill mid-burst.

One :class:`~repro.serve.service.SpeculationService` is one machine;
``repro.cluster`` shards tenants across several and keeps the
exactly-once commit guarantee when one of them dies. This demo:

1. routes a burst of lookups from six tenants across three shards
   (consistent hashing — each tenant has a stable home shard);
2. kills one shard mid-burst and takes it over: requests whose commit
   already applied in the dead shard's journal are *replayed* with
   their original value, the rest *re-land* on surviving shards under
   the same request seq;
3. gracefully decommissions a second shard — its backlog re-routes
   (``cancelled`` + ``retry_after_s``) instead of failing callers;
4. audits every journal the cluster ever owned: each committed request
   applied exactly once, kills and all.

Run it:

    PYTHONPATH=src python examples/cluster_demo.py
"""

import collections
import time

from repro.cluster import ClusterRouter, ClusterShard


def cache_lookup(ws):
    time.sleep(0.003)
    return f"hit:{ws['key']}"


def disk_lookup(ws):
    time.sleep(0.015)
    return f"read:{ws['key']}"


ALTERNATIVES = [cache_lookup, disk_lookup]


def burst(router, n, tag):
    return [
        (
            f"tenant-{i % 6}",
            router.submit(
                f"tenant-{i % 6}", ALTERNATIVES,
                initial={"key": f"{tag}{i}"},
            ),
        )
        for i in range(n)
    ]


def settle(tickets):
    tally = collections.Counter()
    for tenant, ticket in tickets:
        result = ticket.result(timeout=30)
        tally[(result.status, result.failover or "served")] += 1
    return tally


def main():
    shards = [ClusterShard(i, slots=2, workers=4) for i in range(3)]
    router = ClusterRouter(shards).start(detect=False)

    print("== 1. healthy burst across 3 shards")
    tickets = burst(router, 18, "a")
    for (status, how), n in sorted(settle(tickets).items()):
        print(f"   {n:3d} × {status} ({how})")
    homes = {t: router.ring.route(t) for t in sorted({t for t, _ in tickets})}
    print(f"   tenant homes: {homes}")

    print("== 2. kill shard mid-burst, take it over")
    victim = router.ring.route("tenant-0")
    tickets = burst(router, 9, "b")
    router.kill_shard(victim)
    report = router.takeover(victim)
    tickets += burst(router, 9, "c")
    print(
        f"   shard {victim} died: replayed={report['replayed']} "
        f"relanded={report['relanded']} failed={report['failed']}"
    )
    for (status, how), n in sorted(settle(tickets).items()):
        print(f"   {n:3d} × {status} ({how})")

    print("== 3. graceful decommission re-routes the backlog")
    survivor = next(s["shard"] for s in router.snapshot()["members"])
    tickets = burst(router, 9, "d")
    router.decommission(survivor)
    for (status, how), n in sorted(settle(tickets).items()):
        print(f"   {n:3d} × {status} ({how})")

    print("== 4. exactly-once audit across every journal")
    counts = collections.Counter(router.audit_applied().values())
    print(f"   applied-count histogram: {dict(counts)}")
    assert set(counts) <= {1}, "a commit applied twice (or never)!"
    print("   every committed request applied exactly once")

    router.stop()


if __name__ == "__main__":
    main()
