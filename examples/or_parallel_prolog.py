#!/usr/bin/env python3
"""OR-parallel Prolog (paper section 4.2).

A route-planning knowledge base where clause order is pessimal for
depth-first search: the first rules explore an expensive dead-end region
before the rule that actually reaches the goal. Sequential SLD resolution
grinds through the dead ends in order; the OR-parallel engine runs every
clause of the top goal as its own world and commits the first proof.
"""

from repro.apps.prolog import Database, Interpreter, ORParallelEngine

PROGRAM = """
% a graph: dense maze on the left, a short corridor on the right
edge(start, m1).  edge(m1, m2).  edge(m2, m3).  edge(m3, m4).
edge(m4, m1).     edge(m2, m1).  edge(m3, m2).  edge(m4, m3).
edge(start, c1).  edge(c1, c2).  edge(c2, goal).

% depth-bounded path search (the maze has cycles)
path(X, X, _).
path(X, Y, D) :- D > 0, edge(X, Z), D1 is D - 1, path(Z, Y, D1).

% three strategies for reaching the goal; the productive one is LAST
reach(P) :- maze_search(P).
reach(P) :- exhaustive_sweep(P).
reach(P) :- corridor(P).

maze_search(m_route)   :- path(start, goal, 7), fail.   % explores, fails
exhaustive_sweep(sweep) :- path(start, goal, 9), fail.  % worse
corridor(c_route)       :- path(c1, goal, 3).
"""


def main() -> None:
    db = Database.from_source(PROGRAM)

    print("=== sequential SLD resolution ===")
    interp = Interpreter(db)
    solution = interp.solve_first("reach(P)")
    stats = interp.last_stats
    seq_work = stats.inferences + stats.builtin_calls
    print(f"answer: {solution}")
    print(f"work  : {seq_work} inferences (ground through both dead ends first)")

    print("\n=== OR-parallel (committed choice) ===")
    engine = ORParallelEngine(db)
    for work_item in engine.branch_work("reach(P)"):
        status = "finds a proof" if work_item.succeeds else "fails"
        print(f"  branch {work_item.index} [{work_item.clause_str:<35}] "
              f"{work_item.inferences:>6} inferences, {status}")

    solution, outcome = engine.solve_first_sim("reach(P)", per_inference_s=1e-4)
    print(f"answer: {solution}")
    print(f"winner: {outcome.winner.name}")
    par_virtual = outcome.elapsed_s
    seq_virtual = seq_work * 1e-4
    print(f"virtual response: parallel {par_virtual:.4f} s "
          f"vs sequential {seq_virtual:.4f} s "
          f"({seq_virtual / par_virtual:.1f}x better)")

    print("\n=== the same race on real threads ===")
    solution, _ = engine.solve_first_parallel("reach(P)", backend="thread")
    print(f"answer: {solution}")


if __name__ == "__main__":
    main()
