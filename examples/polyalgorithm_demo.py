#!/usr/bin/env python3
"""Polyalgorithms (paper section 4.3): "fastest first" scheduling.

A scalar root-finding polyalgorithm bundles Newton, secant and bisection.
On friendly functions Newton wins in a handful of iterations; on nasty
ones it diverges and a robust method must step in. The NAPSS-style
sequential loop pays for every failure in series; the Multiple Worlds
version runs one ordering per world — each trying a different method
first — and commits whichever ordering finishes first.
"""

import math

from repro.apps.poly import Method, PolyAlgorithm, bisection, newton, secant


def m_newton(ws):
    return newton(ws["f"], ws["x0"], max_iter=40)


def m_secant(ws):
    return secant(ws["f"], ws["a"], ws["b"], max_iter=60)


def m_bisection(ws):
    return bisection(ws["f"], ws["a"], ws["b"])


def accept(ws, value):
    return abs(ws["f"](value)) < 1e-8


POLY = PolyAlgorithm(
    [
        Method("newton", m_newton, accept=accept),
        Method("secant", m_secant, accept=accept),
        Method("bisection", m_bisection, accept=accept,
               applies=lambda ws: ws["f"](ws["a"]) * ws["f"](ws["b"]) < 0),
    ],
    name="scalar-rootfinder",
)

PROBLEMS = {
    "friendly parabola": {
        "f": lambda x: x * x - 2, "a": 0.0, "b": 2.0, "x0": 1.5,
    },
    "flat-tailed atan (bad Newton start)": {
        "f": lambda x: math.atan(x - 1.0), "a": -50.0, "b": 60.0, "x0": 400.0,
    },
    "oscillatory": {
        "f": lambda x: math.sin(3 * x) + 0.5 * x - 0.25,
        "a": -2.0, "b": 2.0, "x0": 1.9,
    },
}


def main() -> None:
    for label, problem in PROBLEMS.items():
        print(f"=== {label} ===")
        seq = POLY.run_sequential(problem)
        print(f"  sequential : solved by {seq.method:<10} "
              f"after attempts {seq.attempts} -> {seq.value:.8f}")
        par = POLY.run_worlds(problem, backend="thread")
        print(f"  worlds     : solved by {par.method:<10} "
              f"(winning ordering: {par.outcome.winner.name}) "
              f"-> {par.value:.8f}")
        print()
    print("on the nasty inputs the sequential loop burns attempts before a "
          "robust\nmethod runs; the worlds version already had every "
          "ordering going.")


if __name__ == "__main__":
    main()
