#!/usr/bin/env python3
"""Competing transactions on a shared store (paper sections 2.1 and 5).

"'Multiple Worlds' could be viewed as a set of 'competing' transactions,
at most one of which will take effect."

Two pricing strategies race to rebalance an order book persisted on a
backing-store device (sink state). Each world's writes are journaled
privately — a world can read its own writes, outsiders see nothing —
and the winner's journal is applied atomically at commit. A teletype
confirmation (source state) is only allowed once the block resolves.
"""

from repro.devices.backing_store import BackingStoreDevice
from repro.kernel import Kernel


def fmt_book(raw: bytes) -> str:
    return raw.decode(errors="replace").rstrip("\x00")


def main() -> None:
    kernel = Kernel(cpus=4, trace=True)
    book = BackingStoreDevice("book", size=64)
    book.write(b"bid=100 ask=105", offset=0)
    kernel.add_device(book)

    def trader(ctx):
        def aggressive(c):
            before = yield c.device_read("book", 15, 0)
            assert before == b"bid=100 ask=105"
            yield c.device_write("book", b"bid=104 ask=105", 0)
            # internal consistency: the transaction reads its own write
            mine = yield c.device_read("book", 15, 0)
            assert mine == b"bid=104 ask=105"
            yield c.compute(0.3)  # risk checks
            return "aggressive"

        def conservative(c):
            yield c.device_write("book", b"bid=101 ask=106", 0)
            yield c.compute(0.1)  # cheaper risk checks
            return "conservative"

        out = yield from ctx.run_alternatives([aggressive, conservative])
        yield from ctx.print(f"committed strategy: {out.value}")
        return out.value

    pid = kernel.spawn(trader, name="trader")
    kernel.run()

    print(f"winner              : {kernel.result_of(pid)}")
    print(f"book after commit   : {fmt_book(book.read(15))!r}")
    print(f"journals discarded  : {book.discarded_writes} write(s) "
          "(the loser's updates left no trace)")
    print(f"teletype            : {kernel.device('tty').text.strip()!r}")
    print(f"virtual time        : {kernel.now:.4f} s "
          "(the cheaper strategy's risk checks set the pace)")

    staged_blocks = len(kernel.trace.of_kind("source-block"))
    print(f"\nwhile speculative, printing was blocked {staged_blocks} time(s); "
          "the confirmation\nonly reached the terminal after the block resolved.")


if __name__ == "__main__":
    main()
