#!/usr/bin/env python3
"""The speculation service: two tenants contending for four world slots.

``run_alternatives`` assumes the caller owns the machine — fine for one
block, wrong for a shared service. ``repro.serve`` puts a governor in
front: a :class:`WorldBudget` caps the worlds alive at once, an
admission queue keeps tenants fair under backlog, and an adaptive policy
decides *how many* of each request's alternatives are worth speculating
on, given what the pool and the win-rate statistics look like right now.

Two tenants hammer the same 4-slot budget with a 3-alternative lookup
(one fast cache that usually hits, two slow fallbacks):

- ``batch`` submits a big burst of low-priority requests;
- ``interactive`` submits fewer, high-priority, deadlined requests —
  and preempts speculative slots when the pool is full.

Watch the ``k`` column: the service starts out speculating on all three
alternatives, then the statistics converge on the cache and K drops to
1 — the paper's "speculate only with spare capacity" rule, live.
"""

import time

from repro.serve import SpeculationService, WorldBudget


def cache_lookup(ws):
    time.sleep(0.004)
    ws["source"] = "cache"
    return f"hit:{ws['key']}"


def disk_lookup(ws):
    time.sleep(0.02)
    ws["source"] = "disk"
    return f"read:{ws['key']}"


def remote_lookup(ws):
    time.sleep(0.03)
    ws["source"] = "remote"
    return f"fetch:{ws['key']}"


ALTERNATIVES = [cache_lookup, disk_lookup, remote_lookup]


def main():
    budget = WorldBudget(4)
    with SpeculationService(budget, workers=4) as svc:
        tickets = []
        # the batch tenant floods; interactive arrives mid-burst with
        # priority 5 and a 250 ms deadline
        for i in range(12):
            tickets.append(
                ("batch", svc.submit(
                    "batch", ALTERNATIVES, initial={"key": f"b{i}"},
                )))
        for i in range(4):
            tickets.append(
                ("interactive", svc.submit(
                    "interactive", ALTERNATIVES, initial={"key": f"i{i}"},
                    priority=5, deadline_s=0.25,
                )))

        print(f"{'tenant':>12}  {'status':>9}  {'k':>2}  {'reason':>9}  "
              f"{'wait ms':>8}  {'total ms':>8}  value")
        for tenant, ticket in tickets:
            r = ticket.result(timeout=30)
            print(f"{tenant:>12}  {r.status:>9}  {r.k:>2}  "
                  f"{r.policy_reason:>9}  {r.queue_wait_s * 1e3:>8.1f}  "
                  f"{r.latency_s * 1e3:>8.1f}  {r.value!r}")

    print(f"\nslots high-watermark: {budget.high_watermark} "
          f"(budget {budget.slots} — never exceeded)")
    snapshot = svc.policy.stats.snapshot()
    for name, rec in sorted(snapshot.items()):
        print(f"  {name:>15}: {rec['wins']}/{rec['attempts']} wins, "
              f"win-EWMA {rec['win_ewma']:.2f}, "
              f"latency-EWMA {rec['latency_ewma_s'] * 1e3:.1f} ms")


if __name__ == "__main__":
    main()
