#!/usr/bin/env python3
"""The message layer in action: world splitting (paper Figure 2).

A logger process sits OUTSIDE an alternative block. One alternative sends
it a message mid-computation. Because the sender is speculative, the
logger cannot simply accept: it splits into two worlds — one believing
the sender will commit, one not. When the block resolves, exactly one
logger world survives, and only then may it touch the teletype (a source
device).

Run it twice: once where the talkative alternative wins, once where it
loses. The printed output differs; the internal consistency does not.
"""

from repro.kernel import Kernel, TIMEOUT


def logger(ctx):
    """Waits for news; prints it only once its world is certain."""
    msg = yield ctx.recv(timeout=60.0)
    if msg is TIMEOUT:
        yield from ctx.print("logger: no news survived the block")
        return "quiet"
    yield from ctx.print(f"logger: confirmed news: {msg.data}")
    return msg.data


def run_scenario(talker_total: float, rival_total: float) -> None:
    kernel = Kernel(cpus=4, trace=True)
    log_pid = kernel.spawn(logger, name="logger")

    def block_parent(ctx):
        def talker(c):
            yield c.compute(0.1)
            yield c.send(log_pid, "talker got partial results")
            yield c.compute(talker_total - 0.1)
            return "talker"

        def rival(c):
            yield c.compute(rival_total)
            return "rival"

        out = yield from ctx.run_alternatives([talker, rival])
        return out.value

    parent_pid = kernel.spawn(block_parent, name="parent")
    kernel.run()

    winner = kernel.result_of(parent_pid)
    tty = kernel.device("tty").text.strip()
    splits = len(kernel.trace.of_kind("world-split"))
    kills = len(kernel.trace.of_kind("kill"))
    print(f"  block winner    : {winner}")
    print(f"  world splits    : {splits}, worlds eliminated: {kills}")
    print(f"  teletype output : {tty!r}")
    print(f"  logger returned : {kernel.result_of(log_pid)!r}")


def main() -> None:
    print("=== scenario A: the talkative alternative wins ===")
    run_scenario(talker_total=0.5, rival_total=5.0)
    print("\n=== scenario B: the talkative alternative loses ===")
    run_scenario(talker_total=5.0, rival_total=0.5)
    print("\nin scenario B the message was received by a world that was "
          "later\neliminated — no trace of it reaches the teletype.")


if __name__ == "__main__":
    main()
