"""A dict-like object heap stored in paged memory.

Workloads need to manipulate ordinary Python values while still exercising
the COW machinery — state must live in pages for the "Multiple Worlds"
write-fraction economics to be real. :class:`PagedHeap` pickles values into
an :class:`~repro.memory.address_space.AddressSpace` and keeps a small
per-process descriptor table (name → extent), mirroring the per-process
descriptor table of the paper's Figure 2.
"""

from __future__ import annotations

import pickle
from typing import Any, Iterator

from repro.memory.address_space import AddressSpace
from repro.memory.frame import FramePool


class PagedHeap:
    """Named, picklable values backed by COW pages.

    Updating a value allocates a fresh extent and rewrites the descriptor,
    so an update touches only the pages holding that value — exactly the
    "updated and newly-written pages are predicated by virtue of their
    residence in a per-process descriptor table" behaviour of Figure 2.
    Freed extents go on a first-fit free list.
    """

    def __init__(self, space: AddressSpace | None = None, pool: FramePool | None = None) -> None:
        if space is None:
            if pool is None:
                pool = FramePool()
            space = AddressSpace(pool)
        self.space = space
        self._index: dict[str, tuple[int, int]] = {}
        self._free: list[tuple[int, int]] = []

    # -- allocation ------------------------------------------------------------
    def _take_extent(self, nbytes: int) -> int:
        for i, (addr, size) in enumerate(self._free):
            if size >= nbytes:
                del self._free[i]
                if size > nbytes:
                    self._free.append((addr + nbytes, size - nbytes))
                return addr
        return self.space.alloc(nbytes)

    def _release_extent(self, addr: int, size: int) -> None:
        if size > 0:
            self._free.append((addr, size))

    # -- dict interface ----------------------------------------------------------
    def put(self, key: str, value: Any) -> None:
        """Store ``value`` under ``key`` (replacing any previous value)."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        addr = self._take_extent(len(blob))
        self.space.write(addr, blob)
        old = self._index.get(key)
        self._index[key] = (addr, len(blob))
        if old is not None:
            self._release_extent(*old)

    def get(self, key: str) -> Any:
        """The value stored under ``key``."""
        try:
            addr, size = self._index[key]
        except KeyError:
            raise KeyError(key) from None
        return pickle.loads(self.space.read(addr, size))

    def delete(self, key: str) -> None:
        try:
            addr, size = self._index.pop(key)
        except KeyError:
            raise KeyError(key) from None
        self._release_extent(addr, size)

    def __contains__(self, key: str) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._index)

    def keys(self) -> list[str]:
        return sorted(self._index)

    def items(self) -> Iterator[tuple[str, Any]]:
        for key in self.keys():
            yield key, self.get(key)

    def as_dict(self) -> dict[str, Any]:
        """A plain dict snapshot of every stored value."""
        return {key: self.get(key) for key in self.keys()}

    def update(self, mapping: dict[str, Any]) -> None:
        for key, value in mapping.items():
            self.put(key, value)

    # -- fork / commit --------------------------------------------------------------
    def fork(self) -> "PagedHeap":
        """A COW child heap: shared pages, copied descriptor table."""
        child = PagedHeap(self.space.fork())
        child._index = dict(self._index)
        child._free = list(self._free)
        return child

    def replace_with(self, winner: "PagedHeap") -> None:
        """Commit ``winner``'s state into this heap (``alt_wait`` absorb)."""
        if winner is self:
            return
        self.space.replace_with(winner.space)
        self._index = winner._index
        self._free = winner._free
        winner._index = {}
        winner._free = []

    def release(self) -> None:
        self.space.release()
        self._index = {}
        self._free = []

    def write_fraction(self):
        return self.space.write_fraction()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PagedHeap(keys={len(self._index)}, pages={len(self.space.table)})"
