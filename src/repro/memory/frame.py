"""Physical page frames with reference counting.

A :class:`Frame` is one fixed-size physical page. COW sharing works by
letting multiple page tables map the same frame; the frame's refcount says
how many mappings exist, and a write through a table that does not own the
frame exclusively copies it first (see
:meth:`repro.memory.pagetable.PageTable.write`).
"""

from __future__ import annotations

from repro.errors import AddressError
from repro.memory.stats import MemoryStats
from repro.util.ids import IdAllocator


class Frame:
    """One physical page: ``page_size`` bytes plus a refcount.

    Frames are created and copied only through a :class:`FramePool` so the
    pool's :class:`~repro.memory.stats.MemoryStats` sees every allocation.
    """

    __slots__ = ("fid", "data", "refcount")

    def __init__(self, fid: int, data: bytearray) -> None:
        self.fid = fid
        self.data = data
        self.refcount = 1

    @property
    def shared(self) -> bool:
        """True when more than one mapping references this frame."""
        return self.refcount > 1

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Frame(fid={self.fid}, refs={self.refcount}, size={len(self.data)})"


class FramePool:
    """Allocator for :class:`Frame` objects of one fixed page size.

    The pool is the "physical memory" of one simulated machine. It exists
    to centralize accounting: every zero-fill allocation, COW copy and
    release increments the shared :class:`MemoryStats`.
    """

    def __init__(self, page_size: int = 4096, stats: MemoryStats | None = None) -> None:
        if page_size <= 0:
            raise AddressError(f"page size must be positive, got {page_size}")
        self.page_size = page_size
        self.stats = stats if stats is not None else MemoryStats()
        self._ids = IdAllocator()
        self.live_frames = 0

    def allocate(self, data: bytes | bytearray | None = None) -> Frame:
        """A fresh frame, zero-filled or initialized from ``data``.

        ``data`` shorter than a page is zero-padded; longer is an error.
        """
        if data is None:
            payload = bytearray(self.page_size)
        else:
            if len(data) > self.page_size:
                raise AddressError(
                    f"frame payload of {len(data)} bytes exceeds page size {self.page_size}"
                )
            payload = bytearray(data) + bytearray(self.page_size - len(data))
        frame = Frame(self._ids.next(), payload)
        self.stats.frames_allocated += 1
        self.live_frames += 1
        return frame

    def copy(self, frame: Frame) -> Frame:
        """A private duplicate of ``frame`` (the COW copy operation)."""
        clone = Frame(self._ids.next(), bytearray(frame.data))
        self.stats.frames_allocated += 1
        self.stats.pages_copied += 1
        self.stats.bytes_copied += len(frame.data)
        self.live_frames += 1
        return clone

    def retain(self, frame: Frame) -> Frame:
        """Add one reference to ``frame`` (a new shared mapping)."""
        frame.refcount += 1
        return frame

    def release(self, frame: Frame) -> None:
        """Drop one reference; reclaim the frame when none remain."""
        if frame.refcount <= 0:
            raise AddressError(f"double release of frame {frame.fid}")
        frame.refcount -= 1
        if frame.refcount == 0:
            self.stats.frames_freed += 1
            self.live_frames -= 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FramePool(page_size={self.page_size}, live={self.live_frames})"
