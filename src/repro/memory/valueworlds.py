"""Value-granularity worlds: the Wilson §5 comparator, executable.

Paper section 5 contrasts page-based "Multiple Worlds" with Wilson's
value-based "Alternate Universes". :class:`VersionedStore` implements the
value-based side: each world is a delta dict over a shared base, every
reference pays a software lookup chain (no MMU doing the check for
free), and copies happen per *object* written.

The instrumentation mirrors :class:`~repro.memory.stats.MemoryStats` so
the two schemes can be compared on the same workload: ``ref_checks``
(the per-reference tax), ``object_copies`` and ``bytes_copied``.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import WorldsError


@dataclass
class ValueStats:
    """Software bookkeeping counters of the value-based scheme."""

    ref_checks: int = 0
    object_copies: int = 0
    bytes_copied: int = 0
    worlds_created: int = 0
    commits: int = 0
    discards: int = 0


class ValueWorld:
    """One speculative view: a delta over its parent chain."""

    __slots__ = ("store", "world_id", "parent", "_delta", "_deleted", "live")

    def __init__(self, store: "VersionedStore", world_id: int,
                 parent: "ValueWorld | None") -> None:
        self.store = store
        self.world_id = world_id
        self.parent = parent
        self._delta: dict[str, Any] = {}
        self._deleted: set[str] = set()
        self.live = True

    # -- access -----------------------------------------------------------
    def _check_live(self) -> None:
        if not self.live:
            raise WorldsError(f"value world {self.world_id} used after close")

    def get(self, key: str, default: Any = None) -> Any:
        """Read through the delta chain; every hop is a software check."""
        self._check_live()
        world: ValueWorld | None = self
        while world is not None:
            self.store.stats.ref_checks += 1
            if key in world._deleted:
                return default
            if key in world._delta:
                return world._delta[key]
            world = world.parent
        self.store.stats.ref_checks += 1
        return self.store._base.get(key, default)

    def put(self, key: str, value: Any) -> None:
        """Write into this world's delta; first write copies the object."""
        self._check_live()
        self.store.stats.ref_checks += 1
        if key not in self._delta:
            self.store.stats.object_copies += 1
            try:
                self.store.stats.bytes_copied += len(
                    pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
                )
            except Exception:
                self.store.stats.bytes_copied += 64
        self._delta[key] = value
        self._deleted.discard(key)

    def delete(self, key: str) -> None:
        self._check_live()
        self.store.stats.ref_checks += 1
        self._delta.pop(key, None)
        self._deleted.add(key)

    def __contains__(self, key: str) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def keys(self) -> list[str]:
        """All visible keys (walks the whole chain)."""
        self._check_live()
        visible = set(self.store._base)
        chain = []
        world: ValueWorld | None = self
        while world is not None:
            chain.append(world)
            world = world.parent
        for w in reversed(chain):  # oldest first so deletions layer right
            visible -= w._deleted
            visible |= set(w._delta)
        return sorted(visible)

    def as_dict(self) -> dict[str, Any]:
        return {k: self.get(k) for k in self.keys()}

    def items(self) -> Iterator[tuple[str, Any]]:
        for key in self.keys():
            yield key, self.get(key)

    # -- lifecycle ------------------------------------------------------------
    def fork(self) -> "ValueWorld":
        """A child world layered on this one (near-zero startup cost)."""
        self._check_live()
        return self.store._new_world(parent=self)

    def commit(self) -> None:
        """Fold this world's delta into its parent (or the base)."""
        self._check_live()
        target_delta: dict[str, Any]
        if self.parent is not None:
            self.parent._check_live()
            target_delta = self.parent._delta
            for key in self._deleted:
                target_delta.pop(key, None)
                self.parent._deleted.add(key)
            target_delta.update(self._delta)
            for key in self._delta:
                self.parent._deleted.discard(key)
        else:
            for key in self._deleted:
                self.store._base.pop(key, None)
            self.store._base.update(self._delta)
        self.store.stats.commits += 1
        self.live = False

    def discard(self) -> None:
        """Throw this world away; nothing it wrote is observable."""
        self._check_live()
        self.store.stats.discards += 1
        self._delta.clear()
        self._deleted.clear()
        self.live = False


class VersionedStore:
    """A base state plus a tree of value-granularity worlds."""

    def __init__(self, base: dict[str, Any] | None = None) -> None:
        self._base: dict[str, Any] = dict(base or {})
        self.stats = ValueStats()
        self._next_world = 1

    def _new_world(self, parent: ValueWorld | None) -> ValueWorld:
        world = ValueWorld(self, self._next_world, parent)
        self._next_world += 1
        self.stats.worlds_created += 1
        return world

    def root_world(self) -> ValueWorld:
        """A world writing directly over the base (commit publishes)."""
        return self._new_world(parent=None)

    def base_snapshot(self) -> dict[str, Any]:
        return dict(self._base)
