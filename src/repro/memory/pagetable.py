"""Per-process page tables with copy-on-write inheritance.

This is the state-management strategy of paper section 2.3: "copy-on-write
with page map inheritance from the parent". A fork copies only the page
*map*; frames stay shared until written. ``alt_wait``'s commit (section 2.2)
is :meth:`PageTable.replace_with` — the parent atomically replaces its page
pointer with the child's.
"""

from __future__ import annotations

from typing import Iterator

from repro.errors import AddressError, PageFault
from repro.memory.frame import Frame, FramePool
from repro.memory.stats import MemoryStats, WriteFractionReport


class PageTable:
    """Virtual page number → :class:`Frame` mapping for one process.

    All tables of one machine share a :class:`FramePool`; COW copies and
    zero fills are charged to the pool's stats. A table additionally tracks
    which of its mappings were inherited at the most recent fork and which
    of those it has privatized since, which yields the paper's *write
    fraction* directly.
    """

    def __init__(self, pool: FramePool) -> None:
        self.pool = pool
        self._entries: dict[int, Frame] = {}
        self._inherited: frozenset[int] = frozenset()
        self._privatized: set[int] = set()
        self._created: set[int] = set()
        self._released = False

    # -- introspection -----------------------------------------------------
    @property
    def page_size(self) -> int:
        return self.pool.page_size

    @property
    def stats(self) -> MemoryStats:
        return self.pool.stats

    def mapped_vpns(self) -> list[int]:
        """Sorted virtual page numbers with a mapping."""
        return sorted(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, vpn: int) -> bool:
        return vpn in self._entries

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._entries))

    def frame_of(self, vpn: int) -> Frame:
        """The frame currently backing ``vpn`` (faults if unmapped)."""
        try:
            return self._entries[vpn]
        except KeyError:
            raise PageFault(vpn) from None

    def resident_bytes(self) -> int:
        """Bytes of *unique* physical memory this table references.

        Shared frames are charged fractionally (1/refcount) so summing
        ``resident_bytes`` over all tables of a pool never exceeds the
        pool's physical footprint.
        """
        return int(
            sum(len(f.data) / f.refcount for f in self._entries.values())
        )

    # -- mapping management --------------------------------------------------
    def _check_live(self) -> None:
        if self._released:
            raise AddressError("page table used after release")

    def map_new(self, vpn: int, data: bytes | None = None) -> Frame:
        """Map a fresh private frame at ``vpn`` (zero-filled or ``data``)."""
        self._check_live()
        if vpn < 0:
            raise AddressError(f"negative virtual page number {vpn}")
        if vpn in self._entries:
            raise AddressError(f"page {vpn} is already mapped")
        frame = self.pool.allocate(data)
        self._entries[vpn] = frame
        self._created.add(vpn)
        return frame

    def map_shared(self, vpn: int, frame: Frame) -> None:
        """Map an existing frame at ``vpn``, sharing it (file mapping)."""
        self._check_live()
        if vpn < 0:
            raise AddressError(f"negative virtual page number {vpn}")
        if vpn in self._entries:
            raise AddressError(f"page {vpn} is already mapped")
        self._entries[vpn] = self.pool.retain(frame)

    def ensure(self, vpn: int) -> Frame:
        """The frame at ``vpn``, demand-zero-mapping it if absent."""
        self._check_live()
        if vpn in self._entries:
            return self._entries[vpn]
        return self.map_new(vpn)

    def unmap(self, vpn: int) -> None:
        """Remove the mapping at ``vpn`` and drop its frame reference."""
        self._check_live()
        frame = self.frame_of(vpn)
        self.pool.release(frame)
        del self._entries[vpn]
        self._privatized.discard(vpn)
        self._created.discard(vpn)

    # -- access ---------------------------------------------------------------
    def read(self, vpn: int) -> bytes:
        """The full content of page ``vpn`` as immutable bytes."""
        self._check_live()
        self.stats.page_reads += 1
        return bytes(self.frame_of(vpn).data)

    def read_slice(self, vpn: int, offset: int, length: int) -> bytes:
        """``length`` bytes starting at ``offset`` within page ``vpn``."""
        self._check_live()
        if offset < 0 or length < 0 or offset + length > self.page_size:
            raise AddressError(
                f"slice [{offset}:{offset + length}] outside page of {self.page_size} bytes"
            )
        self.stats.page_reads += 1
        return bytes(self.frame_of(vpn).data[offset : offset + length])

    def write(self, vpn: int, data: bytes, offset: int = 0) -> None:
        """Write ``data`` into page ``vpn`` at ``offset``, COW-copying first.

        Writing to an unmapped page demand-zero-maps it (heap growth). A
        write to a frame shared with any other table copies the frame into
        this table first and counts one COW fault.
        """
        self._check_live()
        if offset < 0 or offset + len(data) > self.page_size:
            raise AddressError(
                f"write [{offset}:{offset + len(data)}] outside page of {self.page_size} bytes"
            )
        if vpn not in self._entries:
            frame = self.map_new(vpn)
        else:
            frame = self._entries[vpn]
            if frame.shared:
                private = self.pool.copy(frame)
                self.pool.release(frame)
                self._entries[vpn] = private
                self.stats.cow_faults += 1
                if vpn in self._inherited:
                    self._privatized.add(vpn)
                frame = private
        frame.data[offset : offset + len(data)] = data
        self.stats.page_writes += 1

    # -- fork / commit / release ----------------------------------------------
    def fork(self) -> "PageTable":
        """A COW child table: same mappings, every frame now shared.

        Only page-table entries are copied (``pte_copies``); no page data
        moves until somebody writes.
        """
        self._check_live()
        child = PageTable(self.pool)
        for vpn, frame in self._entries.items():
            child._entries[vpn] = self.pool.retain(frame)
        inherited = frozenset(self._entries)
        child._inherited = inherited
        child._privatized = set()
        child._created = set()
        # The parent's pages are equally shared from this point; reset its
        # tracking so its write fraction is measured against the same event.
        self._inherited = inherited
        self._privatized = set()
        self._created = set()
        self.stats.forks += 1
        self.stats.pte_copies += len(self._entries)
        return child

    def replace_with(self, winner: "PageTable") -> None:
        """Atomically become ``winner`` (the ``alt_wait`` commit).

        The parent absorbs the selected child's state by taking over its
        mappings wholesale; the child table is consumed (released) in the
        process. After this call reads through ``self`` see exactly the
        winner's pages — never a partial mix.
        """
        self._check_live()
        winner._check_live()
        if winner is self:
            return
        if winner.pool is not self.pool:
            raise AddressError("cannot commit a page table from a different pool")
        for frame in self._entries.values():
            self.pool.release(frame)
        self._entries = winner._entries
        self._inherited = frozenset()
        self._privatized = set()
        self._created = set()
        winner._entries = {}
        winner._released = True

    def release(self) -> None:
        """Drop every mapping (process death / sibling elimination)."""
        if self._released:
            return
        for frame in self._entries.values():
            self.pool.release(frame)
        self._entries = {}
        self._released = True

    @property
    def released(self) -> bool:
        return self._released

    # -- measurement ------------------------------------------------------------
    def write_fraction(self) -> WriteFractionReport:
        """Distinct inherited pages privatized since the last fork."""
        return WriteFractionReport(
            pages_inherited=len(self._inherited),
            pages_written=len(self._privatized),
            pages_created=len(self._created),
        )

    def same_content(self, other: "PageTable") -> bool:
        """True when both tables map the same vpns to equal byte content."""
        if set(self._entries) != set(other._entries):
            return False
        return all(
            self._entries[vpn].data == other._entries[vpn].data
            for vpn in self._entries
        )

    def content_dict(self) -> dict[int, bytes]:
        """A plain ``{vpn: bytes}`` snapshot (test/debug helper)."""
        return {vpn: bytes(f.data) for vpn, f in self._entries.items()}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PageTable(pages={len(self._entries)}, "
            f"inherited={len(self._inherited)}, privatized={len(self._privatized)})"
        )
