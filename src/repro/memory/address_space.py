"""Byte-addressable process address spaces over paged COW memory.

An :class:`AddressSpace` gives a process the flat-bytes view it expects
while every actual access decomposes into page-granularity operations on a
:class:`~repro.memory.pagetable.PageTable`, so COW sharing and fault
accounting stay precise.
"""

from __future__ import annotations

from repro.errors import AddressError
from repro.memory.frame import FramePool
from repro.memory.pagetable import PageTable
from repro.memory.stats import WriteFractionReport


class AddressSpace:
    """A flat byte-addressed space with a bump allocator.

    The space starts empty; :meth:`alloc` hands out address ranges and
    reads/writes may span page boundaries. Forking produces a COW child
    space; :meth:`replace_with` commits a child's space into the parent.
    """

    def __init__(self, pool: FramePool, table: PageTable | None = None, brk: int = 0) -> None:
        self.pool = pool
        self.table = table if table is not None else PageTable(pool)
        self._brk = brk

    @property
    def page_size(self) -> int:
        return self.pool.page_size

    @property
    def brk(self) -> int:
        """Current top of the allocated region."""
        return self._brk

    # -- allocation ---------------------------------------------------------
    def alloc(self, nbytes: int, align: int = 8) -> int:
        """Reserve ``nbytes`` and return the start address."""
        if nbytes < 0:
            raise AddressError(f"cannot allocate {nbytes} bytes")
        if align < 1:
            raise AddressError(f"bad alignment {align}")
        start = (self._brk + align - 1) // align * align
        self._brk = start + nbytes
        return start

    def alloc_pages(self, npages: int) -> int:
        """Reserve ``npages`` whole pages, returning a page-aligned address."""
        if npages < 0:
            raise AddressError(f"cannot allocate {npages} pages")
        return self.alloc(npages * self.page_size, align=self.page_size)

    # -- access ---------------------------------------------------------------
    def _span(self, addr: int, length: int) -> list[tuple[int, int, int]]:
        """Decompose ``[addr, addr+length)`` into (vpn, offset, count) runs."""
        if addr < 0 or length < 0:
            raise AddressError(f"bad access addr={addr} length={length}")
        runs = []
        pos = addr
        remaining = length
        while remaining > 0:
            vpn, offset = divmod(pos, self.page_size)
            count = min(remaining, self.page_size - offset)
            runs.append((vpn, offset, count))
            pos += count
            remaining -= count
        return runs

    def read(self, addr: int, length: int) -> bytes:
        """``length`` bytes starting at ``addr`` (zero for untouched pages)."""
        pieces = []
        for vpn, offset, count in self._span(addr, length):
            if vpn in self.table:
                pieces.append(self.table.read_slice(vpn, offset, count))
            else:
                pieces.append(bytes(count))
        return b"".join(pieces)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` starting at ``addr`` (may span pages)."""
        pos = 0
        for vpn, offset, count in self._span(addr, len(data)):
            self.table.write(vpn, data[pos : pos + count], offset)
            pos += count

    def read_u64(self, addr: int) -> int:
        return int.from_bytes(self.read(addr, 8), "little")

    def write_u64(self, addr: int, value: int) -> None:
        self.write(addr, int(value).to_bytes(8, "little", signed=False))

    # -- fork / commit ----------------------------------------------------------
    def fork(self) -> "AddressSpace":
        """A COW child space sharing every current page."""
        return AddressSpace(self.pool, self.table.fork(), self._brk)

    def replace_with(self, winner: "AddressSpace") -> None:
        """Atomically adopt ``winner``'s pages and break value (commit)."""
        self.table.replace_with(winner.table)
        self._brk = winner._brk

    def release(self) -> None:
        """Free every mapping (process teardown)."""
        self.table.release()

    # -- measurement ---------------------------------------------------------------
    def write_fraction(self) -> WriteFractionReport:
        return self.table.write_fraction()

    def same_content(self, other: "AddressSpace") -> bool:
        return self.table.same_content(other.table)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AddressSpace(pages={len(self.table)}, brk={self._brk})"
