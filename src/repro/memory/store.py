"""Single-level store: files as named sets of pages.

Paper section 2.1: "files are named sets of pages", with the entire memory
hierarchy buried under the page abstraction (the MULTICS single-level-store
argument). The store is *sink* state — page operations are idempotent, so
speculative worlds may read file pages freely and their private writes stay
hidden until commit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import FileSystemError
from repro.memory.address_space import AddressSpace
from repro.memory.frame import Frame, FramePool


@dataclass
class StoredFile:
    """A named set of pages plus the file's true byte length."""

    name: str
    frames: list[Frame] = field(default_factory=list)
    length: int = 0

    @property
    def pages(self) -> int:
        return len(self.frames)


class SingleLevelStore:
    """A flat namespace of page-backed files sharing one frame pool.

    Mapping a file into an address space shares the file's frames COW-style
    (a *private* mapping): reads hit the same physical pages that back the
    file, the first write to a page privatizes it in the mapping process,
    and the file itself only changes via :meth:`write_file` /
    :meth:`sync_back`.
    """

    def __init__(self, pool: FramePool | None = None, page_size: int = 4096) -> None:
        self.pool = pool if pool is not None else FramePool(page_size)
        self._files: dict[str, StoredFile] = {}

    @property
    def page_size(self) -> int:
        return self.pool.page_size

    # -- namespace ------------------------------------------------------------
    def exists(self, name: str) -> bool:
        return name in self._files

    def names(self) -> list[str]:
        return sorted(self._files)

    def stat(self, name: str) -> StoredFile:
        try:
            return self._files[name]
        except KeyError:
            raise FileSystemError(f"no such file: {name!r}") from None

    def delete(self, name: str) -> None:
        stored = self.stat(name)
        for frame in stored.frames:
            self.pool.release(frame)
        del self._files[name]

    # -- whole-file I/O ----------------------------------------------------------
    def write_file(self, name: str, data: bytes) -> StoredFile:
        """Create or replace ``name`` with ``data``, split into pages."""
        if self.exists(name):
            self.delete(name)
        frames = []
        for start in range(0, len(data), self.page_size):
            frames.append(self.pool.allocate(data[start : start + self.page_size]))
        if not data:
            frames = []
        stored = StoredFile(name, frames, len(data))
        self._files[name] = stored
        return stored

    def read_file(self, name: str) -> bytes:
        """The full content of ``name``."""
        stored = self.stat(name)
        blob = b"".join(bytes(f.data) for f in stored.frames)
        return blob[: stored.length]

    def append(self, name: str, data: bytes) -> StoredFile:
        """Append ``data`` (rewrites the final partial page if any)."""
        current = self.read_file(name) if self.exists(name) else b""
        return self.write_file(name, current + data)

    # -- page mapping -------------------------------------------------------------
    def map_into(self, space: AddressSpace, name: str) -> int:
        """Map ``name``'s pages into ``space`` privately; return base address.

        The mapping shares the file's frames; the mapper's first write to
        any page triggers an ordinary COW copy, leaving the file untouched.
        """
        if space.pool is not self.pool:
            raise FileSystemError(
                "address space and store must share a frame pool to map files"
            )
        stored = self.stat(name)
        base = space.alloc_pages(max(stored.pages, 1))
        base_vpn = base // self.page_size
        for i, frame in enumerate(stored.frames):
            space.table.map_shared(base_vpn + i, frame)
        return base

    def sync_back(self, space: AddressSpace, name: str, base: int) -> None:
        """Write the mapped region at ``base`` back into the file.

        This is the explicit commit of a private mapping — the equivalent
        of msync() for our COW-only mapping model.
        """
        stored = self.stat(name)
        data = space.read(base, stored.length)
        self.write_file(name, data)

    def total_pages(self) -> int:
        return sum(f.pages for f in self._files.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SingleLevelStore(files={len(self._files)}, pages={self.total_pages()})"
