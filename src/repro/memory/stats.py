"""Memory-operation counters.

The paper's overhead analysis (sections 3.1 and 3.4) is driven by how many
pages a speculative child actually copies: the *write fraction*. Smith &
Maguire measured write fractions of 0.2-0.5 in their fork study [18]; these
counters let every experiment report the same quantity.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryStats:
    """Mutable counter bundle shared by the page tables of one machine.

    Attributes
    ----------
    frames_allocated:
        Fresh physical frames created (zero-fill or explicit map).
    frames_freed:
        Frames whose refcount reached zero.
    cow_faults:
        Writes that hit a shared frame and triggered a private copy.
    pages_copied:
        Frames duplicated (one per COW fault, plus eager copies).
    bytes_copied:
        Payload bytes moved by those copies.
    page_reads / page_writes:
        Page-granularity access counts.
    forks:
        Page-table forks performed.
    pte_copies:
        Page-table entries duplicated by forks (the "page map" copy cost).
    """

    frames_allocated: int = 0
    frames_freed: int = 0
    cow_faults: int = 0
    pages_copied: int = 0
    bytes_copied: int = 0
    page_reads: int = 0
    page_writes: int = 0
    forks: int = 0
    pte_copies: int = 0

    def snapshot(self) -> "MemoryStats":
        """An independent copy of the current counter values."""
        return MemoryStats(**vars(self))

    def delta(self, earlier: "MemoryStats") -> "MemoryStats":
        """Counters accumulated since ``earlier`` (a prior snapshot)."""
        return MemoryStats(
            **{k: getattr(self, k) - getattr(earlier, k) for k in vars(self)}
        )

    def reset(self) -> None:
        for key in vars(self):
            setattr(self, key, 0)


@dataclass
class WriteFractionReport:
    """Write fraction of one forked child, as in the paper's fork study.

    ``fraction = pages_written / pages_inherited`` where ``pages_written``
    counts *distinct* inherited pages the child privatized via COW.
    """

    pages_inherited: int
    pages_written: int
    pages_created: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def fraction(self) -> float:
        if self.pages_inherited == 0:
            return 0.0
        return self.pages_written / self.pages_inherited
