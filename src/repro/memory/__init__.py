"""Paged, copy-on-write memory: the paper's "sink state" substrate.

The paper (section 2.1) buries the entire memory hierarchy under a fixed-size
page abstraction: all sink state is pages, files are named sets of pages, and
each process sees state through a per-process page table inherited
copy-on-write from its parent (section 2.3, Figure 2).

This package provides that substrate:

- :class:`~repro.memory.frame.Frame` / :class:`~repro.memory.frame.FramePool`
  — reference-counted physical pages.
- :class:`~repro.memory.pagetable.PageTable` — per-process virtual mappings
  with COW fork, fault accounting and atomic replacement (the ``alt_wait``
  commit).
- :class:`~repro.memory.address_space.AddressSpace` — byte-addressable view.
- :class:`~repro.memory.heap.PagedHeap` — a dict-like object store whose
  values live in pages, so ordinary workloads exercise the COW machinery.
- :class:`~repro.memory.store.SingleLevelStore` — files as named page sets.
- :class:`~repro.memory.stats.MemoryStats` — counters behind the paper's
  "write fraction" measurements (section 3.4).
"""

from repro.memory.frame import Frame, FramePool
from repro.memory.pagetable import PageTable
from repro.memory.address_space import AddressSpace
from repro.memory.heap import PagedHeap
from repro.memory.stats import MemoryStats
from repro.memory.store import SingleLevelStore, StoredFile
from repro.memory.valueworlds import ValueWorld, VersionedStore

DEFAULT_PAGE_SIZE = 4096

__all__ = [
    "DEFAULT_PAGE_SIZE",
    "Frame",
    "FramePool",
    "PageTable",
    "AddressSpace",
    "PagedHeap",
    "MemoryStats",
    "SingleLevelStore",
    "StoredFile",
    "VersionedStore",
    "ValueWorld",
]
