"""Glue between the telemetry plane and the layers it observes.

Kept out of the instrumented modules so each of them carries only
``if obs is not None: obs.<hook>(...)`` call sites; the span/metric
vocabulary — names, tracks, label sets — lives here in one place.

:class:`KernelObserver` is attached to a :class:`~repro.kernel.kernel.Kernel`
built with ``obs=``; it records one span per world (track = wid, so the
exported trace shows one lane per world), one span per alternative
block, and the world-lineage chain from the root down. All kernel times
are virtual seconds.

:func:`record_block` is the shared hook for the three OS-level runtime
backends (fork / thread / sequential). They don't instrument their
select loops; after a block settles they reconstruct the child
lifetimes from the recorded elapsed times — wall-clock seconds on the
tracer's relative timebase.
"""

from __future__ import annotations

from typing import Any

#: MemoryStats attributes published as ``mw_mem_*`` callback gauges.
MEMORY_ATTRS = (
    "frames_allocated", "frames_freed", "cow_faults", "pages_copied",
    "bytes_copied", "page_reads", "page_writes", "forks", "pte_copies",
)


class KernelObserver:
    """Per-kernel span/metric recorder (created by ``Kernel(obs=...)``)."""

    def __init__(self, obs, kernel) -> None:
        from repro.obs.metrics import bind_attr_gauges

        self.obs = obs
        self.tracer = obs.tracer
        reg = obs.registry
        # One Observability often outlives many kernels (sim blocks,
        # supervisor retries, table sweeps); cache the metric handles on
        # the bundle so later kernels skip re-registration.
        cached = getattr(obs, "_kernel_metrics", None)
        if cached is None:
            cached = obs._kernel_metrics = (
                reg.counter(
                    "mw_worlds_total", "World lifecycle events",
                    labelnames=("disposition",),
                ),
                reg.counter(
                    "mw_splits_total", "Worlds cloned by predicated message splits"
                ),
                reg.counter(
                    "mw_alt_blocks_total", "Alternative blocks settled",
                    labelnames=("result",),
                ),
                reg.histogram(
                    "mw_commit_response_s",
                    "Alt-block response time, issue to parent resume "
                    "(virtual seconds)",
                    unit="s",
                ),
            )
        self.worlds_c, self.splits_c, self.blocks_c, self.commit_h = cached
        # the mw_mem_* shims must follow THIS kernel's stats bundle
        stats = kernel.pool.stats
        gauges = getattr(obs, "_kernel_mem_gauges", None)
        if gauges is None:
            obs._kernel_mem_gauges = bind_attr_gauges(
                reg, stats, MEMORY_ATTRS, prefix="mw_mem"
            )
        else:
            for gauge, attr in zip(gauges, MEMORY_ATTRS):
                gauge.fn = lambda o=stats, a=attr: float(getattr(o, a))
        if kernel.fault_plan is not None:
            obs.watch_fault_plan(kernel.fault_plan)
        self._world_spans: dict[int, int] = {}
        self._lineage: dict[int, tuple[int, ...]] = {}
        self._block_spans: dict[int, int] = {}

    def lineage_of(self, wid: int) -> tuple[int, ...]:
        return self._lineage.get(wid, ())

    # -- worlds ------------------------------------------------------------
    def world_started(self, now: float, world) -> None:
        lineage = self._lineage.get(world.parent_wid, ()) + (world.wid,)
        self._lineage[world.wid] = lineage
        self.worlds_c.inc(disposition="spawned")
        tr = self.tracer
        if not tr.enabled:  # metrics stay on; skip the span-side work
            return
        tr.set_track_name(world.wid, f"wid {world.wid} · {world.name}")
        attrs: dict[str, Any] = {}
        if world.parent_wid is not None:
            attrs["parent_wid"] = world.parent_wid
        if world.cloned_from is not None:
            attrs["cloned_from"] = world.cloned_from
        sid = tr.begin(
            world.name, cat="world", track=world.wid, t=now,
            wid=world.wid, pid=world.pid, lineage=lineage, **attrs,
        )
        if sid >= 0:
            self._world_spans[world.wid] = sid

    def world_finished(
        self, now: float, world, disposition: str, **attrs: Any
    ) -> None:
        sid = self._world_spans.pop(world.wid, None)
        background = world.name.startswith("reaper-")
        self.worlds_c.inc(disposition="background" if background else disposition)
        if sid is None:
            return
        extra: dict[str, Any] = {"cpu_s": world.cpu_time_s}
        if background:
            extra["background"] = True
        extra.update(attrs)
        self.tracer.end(sid, t=now, disposition=disposition, **extra)

    def split(self, now: float, orig, clone) -> None:
        self.splits_c.inc()
        if not self.tracer.enabled:
            return
        self.tracer.instant(
            "world-split", cat="kernel", track=orig.wid, t=now,
            wid=orig.wid, clone_wid=clone.wid,
        )

    # -- alt blocks --------------------------------------------------------
    def block_opened(self, group, parent) -> None:
        if not self.tracer.enabled:
            return
        sid = self.tracer.begin(
            f"alt-block g{group.group_id}", cat="alt-block", track=parent.wid,
            t=group.issued_at, wid=parent.wid, pid=parent.pid,
            lineage=self.lineage_of(parent.wid), group=group.group_id,
        )
        if sid >= 0:
            self._block_spans[group.group_id] = sid

    def block_settled(self, now: float, group) -> None:
        committed = group.committed_at if group.committed_at is not None else now
        resumed = (
            group.parent_resumed_at if group.parent_resumed_at is not None else now
        )
        if group.timed_out:
            result = "timeout"
        elif group.winner_pid is not None:
            result = "committed"
        else:
            result = "failed"
        response = resumed - group.issued_at
        self.blocks_c.inc(result=result)
        self.commit_h.observe(response)
        sid = self._block_spans.pop(group.group_id, None)
        if sid is None:
            return
        self.tracer.end(
            sid, t=resumed,
            disposition="committed" if result == "committed" else "aborted",
            result=result, response_s=response,
            c_best_s=committed - group.spawned_at,
            setup_s=group.overhead.setup_s,
            elimination_s=group.overhead.completion_s,
            cow_s=group.overhead.runtime_s,
            winner_pid=group.winner_pid, n_eliminated=group.n_eliminated,
        )


def _loser_disposition(result) -> str:
    """Map an OS-backend loser record onto the span disposition taxonomy."""
    error = (result.error or "").lower()
    if result.guard_failed:
        return "aborted"
    if "eliminat" in error or "cancel" in error or "timeout" in error or "lost" in error:
        return "eliminated"
    return "aborted"


def record_block(
    obs,
    *,
    backend: str,
    block_id: int,
    attempt: int,
    t_start: float,
    outcome,
) -> None:
    """Record one settled OS-backend block: block span + child spans.

    ``t_start`` is the backend's absolute clock reading at block entry
    (``time.perf_counter()``); child lifetimes are reconstructed from
    the per-alternative elapsed times, so losers that were eliminated
    (rather than failing on their own) show lanes cut short at roughly
    the commit instant.
    """
    winner = outcome.winner
    if winner is not None:
        result = "committed"
    elif outcome.timed_out:
        result = "timeout"
    else:
        result = "failed"
    obs.registry.counter(
        "mw_backend_blocks_total", "OS-backend blocks settled",
        labelnames=("backend", "result"),
    ).inc(backend=backend, result=result)
    obs.registry.histogram(
        "mw_backend_block_s", "OS-backend block wall time", unit="s",
        labelnames=("backend",),
    ).observe(outcome.elapsed_s, backend=backend)
    children_c = obs.registry.counter(
        "mw_backend_children_total", "OS-backend child outcomes",
        labelnames=("backend", "disposition"),
    )
    tr = obs.tracer
    if not tr.enabled:  # metrics recorded; skip the span reconstruction
        for res, disposition in _child_results(outcome):
            children_c.inc(backend=backend, disposition=disposition)
        return
    track = f"{backend}:b{block_id}.a{attempt}"
    tr.set_track_name(track, f"{backend} block {block_id} attempt {attempt}")
    start = tr.rel(t_start)
    end = start + outcome.elapsed_s
    tr.complete(
        f"{backend}-block {block_id}", start, end, cat="alt-block", track=track,
        disposition="committed" if result == "committed" else "aborted",
        result=result, backend=backend, block_id=block_id, attempt=attempt,
        setup_s=outcome.overhead.setup_s, elapsed_s=outcome.elapsed_s,
        uncollected=outcome.extras.get("uncollected", 0),
    )
    spawned = start + outcome.overhead.setup_s
    for res, disposition in _child_results(outcome):
        children_c.inc(backend=backend, disposition=disposition)
        child_end = spawned + res.elapsed_s if res.elapsed_s is not None else spawned
        tr.complete(
            res.name, spawned, min(max(child_end, spawned), end), cat="child",
            track=track, disposition=disposition, index=res.index,
            error=res.error, backend=backend,
        )
    for event in outcome.extras.get("watchdog", []) or []:
        tr.instant(
            "watchdog", cat="fault", track=track,
            t=start + float(event.get("at_s", 0.0)) if isinstance(event, dict) else None,
            detail=str(event),
        )


def _child_results(outcome):
    if outcome.winner is not None:
        yield outcome.winner, "committed"
    for loser in outcome.losers:
        yield loser, _loser_disposition(loser)
