"""Span tracing: timed intervals carrying world identity and disposition.

A :class:`Span` is an interval on a *track* — for kernel worlds the
track is the world id, so an exported trace shows one lane per world
and an eliminated world's lane visibly ends at its kill time. Each span
carries the world identity triple (``wid``, ``pid``, ``lineage`` — the
wid-chain from the root alternative down) and a ``disposition`` that is
the paper's taxonomy of speculative work:

- ``speculative`` — still running, or never resolved (the default);
- ``committed`` — this world's result was accepted by its parent;
- ``eliminated`` — a sibling won and this world's work was wasted;
- ``aborted`` — the world failed on its own (guard rejection, crash).

Timebases: the tracer has a ``clock`` callable and records times
*relative to its creation* (so wall-clock spans start near zero, like
the kernel's virtual clock does). Components with their own notion of
time — the kernel's virtual-time scheduler, the simulated network
link — pass explicit ``t=`` values instead of consulting the clock;
the ``cat`` field says which domain a span belongs to. Mixing virtual
and wall seconds in one trace is deliberate: both are "seconds since
the run started" and land on comparable scales.

The buffer is bounded. Past ``limit`` new spans are counted in
:attr:`Tracer.dropped` rather than silently vanishing — the same
contract the kernel :class:`~repro.kernel.trace.Trace` keeps — and
``end()``/annotation of already-recorded spans keeps working so open
spans always resolve.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: Recognised span dispositions (exporters validate against this set).
DISPOSITIONS = ("speculative", "committed", "eliminated", "aborted")


@dataclass(slots=True)
class Span:
    """One timed interval (or instant, when ``end == start``)."""

    span_id: int
    name: str
    cat: str = "span"
    track: Any = 0
    start: float = 0.0
    end: float | None = None
    kind: str = "span"  # "span" | "instant"
    wid: int | None = None
    pid: int | None = None
    lineage: tuple[int, ...] = ()
    disposition: str | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready form (the JSONL exporter writes exactly this)."""
        out: dict[str, Any] = {
            "span_id": self.span_id, "name": self.name, "cat": self.cat,
            "kind": self.kind, "track": self.track, "start": self.start,
            "end": self.end,
        }
        if self.wid is not None:
            out["wid"] = self.wid
        if self.pid is not None:
            out["pid"] = self.pid
        if self.lineage:
            out["lineage"] = list(self.lineage)
        if self.disposition is not None:
            out["disposition"] = self.disposition
        if self.attrs:
            out["attrs"] = self.attrs
        return out


class Tracer:
    """Collects spans and instants on a shared, bounded buffer.

    ``enabled=False`` makes every method a near-no-op (one attribute
    check) so instrumented code can stay unconditional. ``clock`` is
    any zero-argument float callable; times are recorded relative to
    the tracer's creation instant.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        limit: int | None = 200_000,
    ) -> None:
        self.enabled = enabled
        self.clock = clock
        self.limit = limit
        self.spans: list[Span] = []
        self.dropped = 0
        self.track_names: dict[Any, str] = {}
        self._epoch = clock()
        self._next_id = 0
        self._open: dict[int, Span] = {}

    # -- time --------------------------------------------------------------
    def now(self) -> float:
        """Current time on this tracer's relative timebase."""
        return self.clock() - self._epoch

    def rel(self, t_abs: float) -> float:
        """Convert an absolute ``clock()`` reading to the relative base."""
        return t_abs - self._epoch

    # -- recording ---------------------------------------------------------
    def _alloc(self, span: Span) -> int:
        if self.limit is not None and len(self.spans) >= self.limit:
            self.dropped += 1
            return -1
        self.spans.append(span)
        return span.span_id

    def begin(
        self,
        name: str,
        *,
        cat: str = "span",
        track: Any = 0,
        t: float | None = None,
        wid: int | None = None,
        pid: int | None = None,
        lineage: tuple[int, ...] = (),
        **attrs: Any,
    ) -> int:
        """Open a span; returns its id (pass to :meth:`end`), -1 if off/full."""
        if not self.enabled:
            return -1
        self._next_id += 1
        span = Span(
            span_id=self._next_id, name=name, cat=cat, track=track,
            start=self.now() if t is None else t,
            wid=wid, pid=pid, lineage=tuple(lineage), attrs=attrs,
        )
        if self._alloc(span) < 0:
            return -1
        self._open[span.span_id] = span
        return span.span_id

    def end(
        self,
        span_id: int,
        *,
        t: float | None = None,
        disposition: str | None = None,
        **attrs: Any,
    ) -> None:
        """Close an open span, optionally settling its disposition."""
        if not self.enabled or span_id < 0:
            return
        span = self._open.pop(span_id, None)
        if span is None:
            return
        span.end = self.now() if t is None else t
        if disposition is not None:
            span.disposition = disposition
        if attrs:
            span.attrs.update(attrs)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        cat: str = "span",
        track: Any = 0,
        wid: int | None = None,
        pid: int | None = None,
        lineage: tuple[int, ...] = (),
        **attrs: Any,
    ) -> Iterator["_SpanHandle"]:
        """Context-manager form; disposition defaults by exit path.

        A clean exit settles ``committed`` (unless the handle set
        something else), an exception settles ``aborted``.
        """
        sid = self.begin(
            name, cat=cat, track=track, wid=wid, pid=pid,
            lineage=lineage, **attrs,
        )
        handle = _SpanHandle(self, sid)
        try:
            yield handle
        except BaseException:
            self.end(sid, disposition=handle.disposition or "aborted")
            raise
        self.end(sid, disposition=handle.disposition or "committed", **handle.attrs)

    def complete(
        self,
        name: str,
        start: float,
        end: float,
        *,
        cat: str = "span",
        track: Any = 0,
        wid: int | None = None,
        pid: int | None = None,
        lineage: tuple[int, ...] = (),
        disposition: str | None = None,
        **attrs: Any,
    ) -> int:
        """Record an already-finished interval in one call.

        Used by backends that reconstruct child lifetimes from elapsed
        times after the block settles, rather than instrumenting their
        select loops.
        """
        if not self.enabled:
            return -1
        self._next_id += 1
        span = Span(
            span_id=self._next_id, name=name, cat=cat, track=track,
            start=start, end=end, wid=wid, pid=pid, lineage=tuple(lineage),
            disposition=disposition, attrs=attrs,
        )
        return self._alloc(span)

    def instant(
        self,
        name: str,
        *,
        cat: str = "event",
        track: Any = 0,
        t: float | None = None,
        wid: int | None = None,
        **attrs: Any,
    ) -> int:
        """Record a zero-duration annotation event."""
        if not self.enabled:
            return -1
        self._next_id += 1
        at = self.now() if t is None else t
        span = Span(
            span_id=self._next_id, name=name, cat=cat, track=track,
            start=at, end=at, kind="instant", wid=wid, attrs=attrs,
        )
        return self._alloc(span)

    # -- track metadata ----------------------------------------------------
    def set_track_name(self, track: Any, name: str) -> None:
        if self.enabled:
            self.track_names[track] = name

    # -- lifecycle ---------------------------------------------------------
    def open_spans(self) -> list[Span]:
        return list(self._open.values())

    def finish_open(self, t: float | None = None, disposition: str = "speculative") -> int:
        """Close any still-open spans (e.g. worlds alive at run end)."""
        closed = 0
        for sid in list(self._open):
            self.end(sid, t=t, disposition=disposition)
            closed += 1
        return closed

    def __len__(self) -> int:
        return len(self.spans)


class _SpanHandle:
    """What ``with tracer.span(...)`` yields: settle disposition/attrs."""

    __slots__ = ("_tracer", "span_id", "disposition", "attrs")

    def __init__(self, tracer: Tracer, span_id: int) -> None:
        self._tracer = tracer
        self.span_id = span_id
        self.disposition: str | None = None
        self.attrs: dict[str, Any] = {}

    def settle(self, disposition: str, **attrs: Any) -> None:
        self.disposition = disposition
        self.attrs.update(attrs)


#: Shared disabled tracer for call sites that want unconditional syntax.
NULL_TRACER = Tracer(enabled=False, limit=0)
