"""The unified telemetry plane: metrics, spans, exporters.

One :class:`Observability` bundle per run ties together a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.spans.Tracer`, and is what every instrumented layer
accepts as its ``obs=`` parameter::

    from repro.obs import Observability
    from repro.core.worlds import run_alternatives

    obs = Observability()
    outcome, kernel = run_alternatives(alts, backend="sim", obs=obs)
    obs.finalize(kernel.now)

    from repro.obs.export import write_chrome_trace, SpeculationReport
    write_chrome_trace(obs.tracer, "run.trace.json")   # open in Perfetto
    print(SpeculationReport.from_kernel(kernel, obs).render())

The plane is cheap enough to stay on by default; ``enabled=False``
reduces every tracer call to one attribute check (layers that receive
``obs=None`` skip the calls entirely), and metrics absorbed from
existing counter bundles (``MemoryStats``, the gate) are read lazily at
collect time via callback gauges.

Fault correlation: :meth:`Observability.watch_fault_plan` hooks a
:class:`~repro.faults.plan.FaultPlan` so every injected fault lands as
an annotation instant (``cat="fault"``) and a
``mw_faults_injected_total{site,kind}`` increment — the trace links
injected cause to observed retry/degradation effect.
"""

from __future__ import annotations

import time
from typing import Any, Callable

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    DuplicateMetricError,
    FuncGauge,
    Gauge,
    Histogram,
    MetricError,
    MetricsRegistry,
    bind_attr_gauges,
)
from repro.obs.spans import DISPOSITIONS, NULL_TRACER, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DISPOSITIONS",
    "DuplicateMetricError",
    "FuncGauge",
    "Gauge",
    "Histogram",
    "MetricError",
    "MetricsRegistry",
    "NULL_TRACER",
    "Observability",
    "Span",
    "Tracer",
    "bind_attr_gauges",
]


class Observability:
    """One run's telemetry: a metrics registry plus a span tracer.

    ``clock`` is the tracer's wall clock (times are recorded relative
    to construction); components with their own timebase — the kernel's
    virtual clock, the simulated link clock — pass explicit ``t=``
    values, which land on a comparable near-zero scale. ``enabled=False``
    turns span recording off while metrics keep working.
    """

    def __init__(
        self,
        enabled: bool = True,
        clock: Callable[[], float] = time.perf_counter,
        span_limit: int | None = 200_000,
    ) -> None:
        self.registry = MetricsRegistry()
        self.tracer = Tracer(enabled=enabled, clock=clock, limit=span_limit)
        self._faults_c = self.registry.counter(
            "mw_faults_injected_total",
            "Faults injected by the active FaultPlan",
            labelnames=("site", "kind"),
        )

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled

    def on_fault(
        self,
        site: str,
        kind: str,
        t: float | None = None,
        detail: str = "",
        track: Any = None,
        **data: Any,
    ) -> None:
        """Record one injected fault (annotation instant + counter)."""
        self._faults_c.inc(site=site, kind=kind)
        attrs = dict(data)
        if detail:
            attrs["detail"] = detail
        self.tracer.instant(
            f"fault:{kind}", cat="fault", track="faults" if track is None else track,
            t=t, site=site, **attrs,
        )

    def watch_fault_plan(self, plan) -> None:
        """Make ``plan`` report every injection into this plane."""
        plan.observer = self.on_fault

    def finalize(self, t: float | None = None) -> int:
        """Close any still-open spans (worlds alive at run end)."""
        return self.tracer.finish_open(t=t)
