"""Exporters, schema validators, and the per-run ``SpeculationReport``.

Three ways out of the telemetry plane:

- :func:`write_jsonl` — one JSON object per line (a ``meta`` header,
  then every span), the stable machine-readable form other tooling
  diffs across runs;
- :func:`write_chrome_trace` — Chrome trace-event JSON loadable in
  Perfetto / ``chrome://tracing``. Every span track becomes one named
  thread lane, so kernel worlds (track = wid) render one lane per world
  and an eliminated world's lane visibly stops at its kill time;
- :class:`SpeculationReport` — the paper's headline quantities for one
  run: wasted-work ratio (CPU spent on eliminated worlds), write
  fraction (COW pages privatized per page-table entry inherited), and
  the commit-latency breakdown into ``τ(C_best)`` versus fork /
  elimination / COW / journal overhead.

The ``validate_*`` functions check exported files against the schema;
CI runs them on the Figure 1 smoke artifacts so a malformed exporter
(or a metric registered twice under one name) fails the build rather
than a later analysis.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, TYPE_CHECKING

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import DISPOSITIONS, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernel.kernel import Kernel

#: Bumped when the JSONL line shape changes incompatibly.
SCHEMA_VERSION = 1

#: Perfetto colour names keyed by disposition (``cname`` is a documented
#: trace-event field; unknown values are ignored by viewers).
_DISPOSITION_COLOURS = {
    "committed": "good",
    "eliminated": "terrible",
    "aborted": "bad",
    "speculative": "grey",
}


class SchemaError(ValueError):
    """An exported telemetry artifact does not match the schema."""


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------
def jsonl_lines(tracer: Tracer) -> list[dict]:
    """The JSONL export as dicts: a meta header, then one dict per span."""
    lines: list[dict] = [{
        "type": "meta",
        "schema": SCHEMA_VERSION,
        "spans": len(tracer.spans),
        "dropped": tracer.dropped,
        "tracks": {str(k): v for k, v in tracer.track_names.items()},
    }]
    for span in tracer.spans:
        rec = span.to_dict()
        rec["type"] = "span"
        lines.append(rec)
    return lines


def write_jsonl(tracer: Tracer, path: str) -> int:
    """Write the trace as JSONL; returns the number of span lines."""
    lines = jsonl_lines(tracer)
    with open(path, "w", encoding="utf-8") as fh:
        for rec in lines:
            fh.write(json.dumps(rec, default=str) + "\n")
    return len(lines) - 1


def validate_jsonl(path: str) -> int:
    """Check a JSONL trace file against the schema; returns span count.

    Raises :class:`SchemaError` on the first violation.
    """
    count = 0
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, raw in enumerate(fh, start=1):
            if not raw.strip():
                continue
            try:
                rec = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise SchemaError(f"{path}:{lineno}: not JSON: {exc}") from None
            if lineno == 1:
                if rec.get("type") != "meta" or rec.get("schema") != SCHEMA_VERSION:
                    raise SchemaError(
                        f"{path}:1: first line must be a schema-{SCHEMA_VERSION} "
                        f"meta header, got {rec.get('type')!r}"
                    )
                continue
            if rec.get("type") != "span":
                raise SchemaError(f"{path}:{lineno}: unknown line type {rec.get('type')!r}")
            for key in ("span_id", "name", "cat", "kind", "track", "start"):
                if key not in rec:
                    raise SchemaError(f"{path}:{lineno}: span missing {key!r}")
            if rec["kind"] not in ("span", "instant"):
                raise SchemaError(f"{path}:{lineno}: bad kind {rec['kind']!r}")
            disposition = rec.get("disposition")
            if disposition is not None and disposition not in DISPOSITIONS:
                raise SchemaError(
                    f"{path}:{lineno}: bad disposition {disposition!r}"
                )
            end = rec.get("end")
            if end is not None and end < rec["start"] - 1e-9:
                raise SchemaError(f"{path}:{lineno}: span ends before it starts")
            count += 1
    if count == 0:
        raise SchemaError(f"{path}: no spans")
    return count


# ---------------------------------------------------------------------------
# Chrome trace-event format
# ---------------------------------------------------------------------------
def chrome_trace_events(tracer: Tracer, process_name: str = "multiple-worlds") -> list[dict]:
    """Trace-event list: metadata rows naming the tracks, then the spans.

    Integer tracks (kernel wids) keep their value as the ``tid``;
    non-integer tracks (``"journal"``, ``"link:0"`` …) get stable ids
    allocated from 1,000,000 up so they never collide with a wid.
    """
    events: list[dict] = [{
        "ph": "M", "name": "process_name", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }]
    tids: dict[Any, int] = {}

    def tid_of(track: Any) -> int:
        if isinstance(track, int):
            return track
        if track not in tids:
            tids[track] = 1_000_000 + len(tids)
        return tids[track]

    named: set[int] = set()

    def name_track(track: Any, name: str) -> None:
        tid = tid_of(track)
        if tid in named:
            return
        named.add(tid)
        events.append({
            "ph": "M", "name": "thread_name", "pid": 0, "tid": tid,
            "args": {"name": name},
        })

    for track, name in tracer.track_names.items():
        name_track(track, name)
    for span in tracer.spans:
        tid = tid_of(span.track)
        if tid not in named and not isinstance(span.track, int):
            name_track(span.track, str(span.track))
        args: dict[str, Any] = dict(span.attrs)
        if span.wid is not None:
            args["wid"] = span.wid
        if span.pid is not None:
            args["pid"] = span.pid
        if span.lineage:
            args["lineage"] = "/".join(str(w) for w in span.lineage)
        if span.disposition is not None:
            args["disposition"] = span.disposition
        if span.kind == "instant":
            events.append({
                "ph": "i", "s": "t", "name": span.name, "cat": span.cat,
                "pid": 0, "tid": tid, "ts": span.start * 1e6, "args": args,
            })
            continue
        end = span.end if span.end is not None else span.start
        event = {
            "ph": "X", "name": span.name, "cat": span.cat, "pid": 0,
            "tid": tid, "ts": span.start * 1e6,
            "dur": max((end - span.start) * 1e6, 0.0),
            "args": args,
        }
        colour = _DISPOSITION_COLOURS.get(span.disposition or "")
        if colour is not None:
            event["cname"] = colour
        events.append(event)
    return events


def write_chrome_trace(
    tracer: Tracer, path: str, process_name: str = "multiple-worlds",
) -> int:
    """Write a Perfetto-loadable trace file; returns the event count."""
    events = chrome_trace_events(tracer, process_name=process_name)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"schema": SCHEMA_VERSION, "dropped_spans": tracer.dropped},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, default=str)
    return len(events)


def validate_chrome_trace(path: str) -> int:
    """Check a trace-event file; returns the number of X/i events."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"{path}: not JSON: {exc}") from None
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        raise SchemaError(f"{path}: no traceEvents array")
    count = 0
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph not in ("X", "i", "M"):
            raise SchemaError(f"{path}: event {i}: unknown phase {ph!r}")
        if "name" not in ev or "pid" not in ev or "tid" not in ev:
            raise SchemaError(f"{path}: event {i}: missing name/pid/tid")
        if ph == "X":
            if "ts" not in ev or ev.get("dur", -1) < 0:
                raise SchemaError(f"{path}: event {i}: X needs ts and dur >= 0")
            count += 1
        elif ph == "i":
            if "ts" not in ev:
                raise SchemaError(f"{path}: event {i}: instant needs ts")
            count += 1
    if count == 0:
        raise SchemaError(f"{path}: metadata only, no span/instant events")
    return count


def validate_metrics(registry: MetricsRegistry) -> int:
    """Check the registry's collected output; returns the metric count.

    Name uniqueness is enforced at registration time
    (:class:`~repro.obs.metrics.DuplicateMetricError`); this re-verifies
    the exported form plus basic sample sanity, so a smoke run fails
    loudly if either invariant regresses.
    """
    collected = registry.collect()
    seen: set[str] = set()
    for desc in collected:
        name = desc["name"]
        if name in seen:
            raise SchemaError(f"metric {name!r} appears twice in collect()")
        seen.add(name)
        if desc["type"] not in ("counter", "gauge", "histogram"):
            raise SchemaError(f"metric {name!r} has unknown type {desc['type']!r}")
        for sample in desc["samples"]:
            if not isinstance(sample.get("value"), (int, float)):
                raise SchemaError(f"metric {name!r} has a non-numeric sample")
    return len(collected)


# ---------------------------------------------------------------------------
# SpeculationReport
# ---------------------------------------------------------------------------
@dataclass
class SpeculationReport:
    """The paper's headline quantities, computed from one run's telemetry.

    ``wasted_work_ratio`` mirrors
    :attr:`~repro.kernel.kernel.UtilizationReport.speculation_waste`
    (eliminated + background CPU over total CPU) but is derived from the
    world *spans*, so it doubles as a consistency check on the span
    plane. ``write_fraction`` is ``cow_faults / pte_copies`` — distinct
    from the per-child :class:`~repro.memory.stats.WriteFractionReport`,
    this is the machine-wide pages-privatized-per-pte-inherited rate.
    """

    wall_s: float = 0.0
    cpus: int = 0
    useful_cpu_s: float = 0.0
    wasted_cpu_s: float = 0.0
    background_cpu_s: float = 0.0
    worlds: dict[str, int] = field(default_factory=dict)
    pages_inherited: int = 0
    pages_written: int = 0
    commit: dict[str, float] = field(default_factory=dict)
    journal_records: int = 0
    faults_injected: int = 0
    source: str = "kernel"

    @property
    def total_cpu_s(self) -> float:
        return self.useful_cpu_s + self.wasted_cpu_s + self.background_cpu_s

    @property
    def wasted_work_ratio(self) -> float:
        if self.total_cpu_s == 0:
            return 0.0
        return (self.wasted_cpu_s + self.background_cpu_s) / self.total_cpu_s

    @property
    def write_fraction(self) -> float:
        if self.pages_inherited == 0:
            return 0.0
        return self.pages_written / self.pages_inherited

    @classmethod
    def from_kernel(cls, kernel: "Kernel", obs=None) -> "SpeculationReport":
        """Build the report for a finished kernel run.

        With ``obs`` (the :class:`~repro.obs.Observability` the kernel
        ran under), CPU accounting and the commit breakdown come from
        the recorded spans; without it, from the kernel's own counters.
        Either way the memory quantities come from the machine's
        :class:`~repro.memory.stats.MemoryStats`, so span-derived ratios
        can be checked against counter-derived ones.
        """
        report = cls(wall_s=kernel.now, cpus=kernel.cpus)
        stats = kernel.stats
        report.pages_inherited = stats.pte_copies
        report.pages_written = stats.cow_faults
        report.faults_injected = len(kernel.faults_injected)
        if kernel.journal is not None:
            report.journal_records = len(kernel.journal.records())

        tracer = getattr(obs, "tracer", None)
        world_spans = []
        if tracer is not None:
            world_spans = [s for s in tracer.spans if s.cat == "world" and s.kind == "span"]
        if world_spans:
            report.source = "spans"
            for span in world_spans:
                cpu = float(span.attrs.get("cpu_s", 0.0))
                disposition = span.disposition or "speculative"
                report.worlds[disposition] = report.worlds.get(disposition, 0) + 1
                if span.attrs.get("background"):
                    report.background_cpu_s += cpu
                elif disposition in ("eliminated", "aborted"):
                    report.wasted_cpu_s += cpu
                else:  # committed, or still speculative: assume useful
                    report.useful_cpu_s += cpu
            for span in tracer.spans:
                if span.cat != "alt-block" or span.kind != "span":
                    continue
                for key in ("response_s", "c_best_s", "setup_s", "elimination_s", "cow_s"):
                    report.commit[key] = report.commit.get(key, 0.0) + float(
                        span.attrs.get(key, 0.0)
                    )
                report.commit["blocks"] = report.commit.get("blocks", 0.0) + 1
        else:
            util = kernel.utilization_report()
            report.useful_cpu_s = util.useful_cpu_s
            report.wasted_cpu_s = util.wasted_cpu_s
            report.background_cpu_s = util.background_cpu_s
            for world in kernel.worlds.values():
                if world.name.startswith("reaper-"):
                    key = "background"
                elif world.state.name == "DONE":
                    key = "committed"
                elif world.state.name == "ABORTED":
                    key = "aborted"
                elif not world.alive:
                    key = "eliminated"
                else:
                    key = "speculative"
                report.worlds[key] = report.worlds.get(key, 0) + 1
            for group in kernel.groups.values():
                if group.committed_at is None:
                    continue
                resumed = group.parent_resumed_at or group.committed_at
                report.commit["response_s"] = report.commit.get("response_s", 0.0) + (
                    resumed - group.issued_at
                )
                report.commit["c_best_s"] = report.commit.get("c_best_s", 0.0) + (
                    group.committed_at - group.spawned_at
                )
                report.commit["setup_s"] = report.commit.get("setup_s", 0.0) + group.overhead.setup_s
                report.commit["elimination_s"] = (
                    report.commit.get("elimination_s", 0.0) + group.overhead.completion_s
                )
                report.commit["cow_s"] = report.commit.get("cow_s", 0.0) + group.overhead.runtime_s
                report.commit["blocks"] = report.commit.get("blocks", 0.0) + 1
        return report

    def to_dict(self) -> dict[str, Any]:
        return {
            "wall_s": self.wall_s,
            "cpus": self.cpus,
            "useful_cpu_s": self.useful_cpu_s,
            "wasted_cpu_s": self.wasted_cpu_s,
            "background_cpu_s": self.background_cpu_s,
            "wasted_work_ratio": self.wasted_work_ratio,
            "worlds": dict(self.worlds),
            "pages_inherited": self.pages_inherited,
            "pages_written": self.pages_written,
            "write_fraction": self.write_fraction,
            "commit": dict(self.commit),
            "journal_records": self.journal_records,
            "faults_injected": self.faults_injected,
            "source": self.source,
        }

    def render(self) -> str:
        lines = [
            f"SpeculationReport (from {self.source})",
            f"  wall {self.wall_s:.4f}s on {self.cpus} cpus; "
            f"cpu useful {self.useful_cpu_s:.4f}s, wasted {self.wasted_cpu_s:.4f}s, "
            f"background {self.background_cpu_s:.4f}s",
            f"  wasted-work ratio {self.wasted_work_ratio:.3f}",
            f"  write fraction {self.write_fraction:.3f} "
            f"({self.pages_written} COW pages / {self.pages_inherited} inherited ptes)",
            "  worlds: " + (
                ", ".join(f"{k}={v}" for k, v in sorted(self.worlds.items())) or "none"
            ),
        ]
        if self.commit:
            n = int(self.commit.get("blocks", 0)) or 1
            lines.append(
                "  commit latency (mean over "
                f"{int(self.commit.get('blocks', 0))} blocks): "
                f"response {self.commit.get('response_s', 0.0) / n:.4f}s = "
                f"tau(C_best) {self.commit.get('c_best_s', 0.0) / n:.4f}s "
                f"+ fork {self.commit.get('setup_s', 0.0) / n:.4f}s "
                f"+ elimination {self.commit.get('elimination_s', 0.0) / n:.4f}s "
                f"+ cow {self.commit.get('cow_s', 0.0) / n:.4f}s"
            )
        if self.journal_records:
            lines.append(f"  journal records: {self.journal_records}")
        if self.faults_injected:
            lines.append(f"  faults injected: {self.faults_injected}")
        return "\n".join(lines)
