"""The metrics registry: counters, gauges and fixed-bucket histograms.

The paper's argument is quantitative — response time falls from
``τ(C_mean)`` to ``τ(C_best) + τ(overhead)`` only while the overhead
(COW copies, elimination, predicate splits) stays small — so the
overhead must be *measured*, continuously, in every layer. This module
is the one place those numbers accumulate:

- a :class:`Counter` only goes up (events: worlds spawned, faults
  injected, journal records appended);
- a :class:`Gauge` is set to the current level, or computed on demand
  from a callback (``gauge_fn``) — the zero-overhead way to absorb
  existing counter bundles like :class:`~repro.memory.stats.MemoryStats`
  without touching their hot paths;
- a :class:`Histogram` counts observations into fixed buckets
  (latencies, payload sizes) with an implicit ``+inf`` overflow bucket.

All three support labels: a metric is registered once with a fixed
``labelnames`` tuple and fans out into one sample per label-value
combination. Registration is strict — registering two metrics under one
name raises :class:`DuplicateMetricError`, and the get-or-create
helpers (`counter`/`gauge`/`histogram`) raise on any kind, label or
bucket mismatch — so a name always means one thing across the whole
process (the CI smoke validates exactly this).

Everything is guarded by locks so the thread backend can increment from
its workers; the cost is one lock acquire + dict update per increment,
cheap enough to stay on by default.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence


class MetricError(ValueError):
    """Invalid metric construction or use."""


class DuplicateMetricError(MetricError):
    """Two metrics were registered under one name."""


def _label_key(labelnames: tuple[str, ...], labels: dict[str, Any]) -> tuple:
    if set(labels) != set(labelnames):
        raise MetricError(
            f"expected labels {sorted(labelnames)}, got {sorted(labels)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class Metric:
    """Common shape: name, help, unit, fixed label names, sample store."""

    kind = "metric"

    def __init__(
        self, name: str, help: str = "", unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        if not name or not name.replace("_", "a").isidentifier():
            raise MetricError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        self.unit = unit
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()
        self._values: dict[tuple, Any] = {}

    def _signature(self) -> tuple:
        return (self.kind, self.labelnames)

    def samples(self) -> list[dict]:
        """Current samples as ``{"labels": {...}, "value": ...}`` dicts."""
        with self._lock:
            items = list(self._values.items())
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": value}
            for key, value in sorted(items)
        ]

    def describe(self) -> dict:
        """The full exportable description of this metric."""
        return {
            "name": self.name, "type": self.kind, "help": self.help,
            "unit": self.unit, "labelnames": list(self.labelnames),
            "samples": self.samples(),
        }


class Counter(Metric):
    """A monotonically increasing count of events."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        if amount < 0:
            raise MetricError(f"counter {self.name} cannot decrease")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def total(self) -> float:
        """Sum over every label combination."""
        with self._lock:
            return sum(self._values.values())


class Gauge(Metric):
    """A value that can go up and down (current level of something)."""

    kind = "gauge"

    def set(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = value

    def inc(self, amount: float = 1.0, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: Any) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)


class FuncGauge(Metric):
    """A gauge whose value is computed on demand by a callback.

    The compatibility-shim workhorse: existing counter bundles
    (:class:`~repro.memory.stats.MemoryStats`, the gate's ad-hoc
    attributes) are published by pointing a callback at them — their hot
    paths pay nothing, and the registry reads current values at collect
    time.
    """

    kind = "gauge"

    def __init__(
        self, name: str, fn: Callable[[], float], help: str = "", unit: str = "",
    ) -> None:
        super().__init__(name, help=help, unit=unit, labelnames=())
        self.fn = fn

    def _signature(self) -> tuple:
        return (self.kind, self.labelnames, "fn")

    def value(self) -> float:
        return float(self.fn())

    def samples(self) -> list[dict]:
        return [{"labels": {}, "value": self.value()}]


#: Latency-ish default bucket edges (seconds), spanning µs to minutes.
DEFAULT_BUCKETS = (
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 60.0,
)


class Histogram(Metric):
    """Fixed-bucket distribution of observations.

    ``buckets`` are the strictly increasing upper edges; an implicit
    ``+inf`` bucket catches overflow. Per label combination the
    histogram keeps cumulative bucket counts plus ``sum`` and ``count``.
    """

    kind = "histogram"

    def __init__(
        self, name: str, help: str = "", unit: str = "",
        labelnames: Sequence[str] = (), buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        super().__init__(name, help=help, unit=unit, labelnames=labelnames)
        edges = tuple(float(b) for b in buckets)
        if not edges or any(hi <= lo for lo, hi in zip(edges, edges[1:])):
            raise MetricError(
                f"histogram {name} needs strictly increasing bucket edges"
            )
        self.buckets = edges

    def _signature(self) -> tuple:
        return (self.kind, self.labelnames, self.buckets)

    def observe(self, value: float, **labels: Any) -> None:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            cell = self._values.get(key)
            if cell is None:
                cell = {"counts": [0] * (len(self.buckets) + 1), "sum": 0.0, "count": 0}
                self._values[key] = cell
            for i, edge in enumerate(self.buckets):
                if value <= edge:
                    cell["counts"][i] += 1
                    break
            else:
                cell["counts"][-1] += 1
            cell["sum"] += value
            cell["count"] += 1

    def bucket_counts(self, **labels: Any) -> list[int]:
        """Per-bucket (non-cumulative) counts, overflow bucket last."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            cell = self._values.get(key)
            return list(cell["counts"]) if cell else [0] * (len(self.buckets) + 1)

    def count(self, **labels: Any) -> int:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            cell = self._values.get(key)
            return cell["count"] if cell else 0

    def sum(self, **labels: Any) -> float:
        key = _label_key(self.labelnames, labels)
        with self._lock:
            cell = self._values.get(key)
            return cell["sum"] if cell else 0.0

    def samples(self) -> list[dict]:
        with self._lock:
            items = [(k, dict(v, counts=list(v["counts"]))) for k, v in self._values.items()]
        out = []
        for key, cell in sorted(items):
            out.append({
                "labels": dict(zip(self.labelnames, key)),
                "value": cell["sum"],
                "count": cell["count"],
                "buckets": list(self.buckets),
                "counts": cell["counts"],
            })
        return out


class MetricsRegistry:
    """The process-wide (or per-run) name → metric table.

    Names are unique across all metric kinds; duplicate registration
    raises. The get-or-create helpers return the existing metric when
    the request matches its kind/labels/buckets exactly and raise
    otherwise — a typo'd second registration can never silently shadow
    the first.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[str, Metric] = {}

    # -- registration ------------------------------------------------------
    def register(self, metric: Metric) -> Metric:
        with self._lock:
            if metric.name in self._metrics:
                raise DuplicateMetricError(
                    f"metric {metric.name!r} is already registered"
                )
            self._metrics[metric.name] = metric
        return metric

    def _get_or_create(self, cls, name: str, kwargs: dict) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                probe = cls(name, **kwargs)
                if type(existing) is not cls or existing._signature() != probe._signature():
                    raise DuplicateMetricError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind} with labels {existing.labelnames}"
                    )
                return existing
            metric = cls(name, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "", unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> Counter:
        return self._get_or_create(
            Counter, name, {"help": help, "unit": unit, "labelnames": labelnames}
        )

    def gauge(
        self, name: str, help: str = "", unit: str = "",
        labelnames: Sequence[str] = (),
    ) -> Gauge:
        return self._get_or_create(
            Gauge, name, {"help": help, "unit": unit, "labelnames": labelnames}
        )

    def gauge_fn(
        self, name: str, fn: Callable[[], float], help: str = "", unit: str = "",
    ) -> FuncGauge:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if isinstance(existing, FuncGauge):
                    existing.fn = fn  # rebinding a shim to a fresh source is fine
                    return existing
                raise DuplicateMetricError(
                    f"metric {name!r} already registered as {existing.kind}"
                )
            metric = FuncGauge(name, fn, help=help, unit=unit)
            self._metrics[name] = metric
            return metric

    def histogram(
        self, name: str, help: str = "", unit: str = "",
        labelnames: Sequence[str] = (), buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name,
            {"help": help, "unit": unit, "labelnames": labelnames, "buckets": buckets},
        )

    # -- introspection -----------------------------------------------------
    def get(self, name: str) -> Metric:
        with self._lock:
            try:
                return self._metrics[name]
            except KeyError:
                raise MetricError(f"no metric named {name!r}") from None

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def collect(self) -> list[dict]:
        """Every metric's full description, sorted by name."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return [m.describe() for m in metrics]

    def snapshot(self) -> dict[str, Any]:
        """Flat ``{name{labels}: value}`` view — the bench-friendly form."""
        out: dict[str, Any] = {}
        for desc in self.collect():
            for sample in desc["samples"]:
                labels = sample["labels"]
                key = desc["name"]
                if labels:
                    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
                    key = f"{key}{{{inner}}}"
                out[key] = sample["value"]
        return out


# -- compatibility shims ----------------------------------------------------
def bind_attr_gauges(
    registry: MetricsRegistry,
    obj: Any,
    attrs: Iterable[str],
    prefix: str,
    help_fmt: str = "{attr} (mirrored from {src})",
) -> list[FuncGauge]:
    """Publish plain numeric attributes of ``obj`` as callback gauges.

    The absorption mechanism for pre-obs counter bundles: the source
    object keeps its attribute API (nothing that increments
    ``stats.cow_faults`` changes), and the registry reads the live value
    whenever it collects.
    """
    gauges = []
    src = type(obj).__name__
    for attr in attrs:
        getattr(obj, attr)  # fail fast on a typo'd attribute
        gauges.append(
            registry.gauge_fn(
                f"{prefix}_{attr}",
                (lambda o=obj, a=attr: float(getattr(o, a))),
                help=help_fmt.format(attr=attr, src=src),
            )
        )
    return gauges
