"""The cluster router: consistent-hash placement, spill/steal, failover.

:class:`ClusterRouter` is the traffic director over N
:class:`~repro.cluster.shard.ClusterShard` instances. Placement walks
the :class:`~repro.cluster.ring.HashRing` preference order; load policy
adds two or-parallel-style work-distribution moves on top:

- **spill** — when a tenant's home shard has no free world slots and a
  later preference has idle capacity, the request lands there instead
  (counted ``mw_cluster_spills_total{src,dst}``). A spilled request is
  tracked under its own :class:`~repro.distrib.lease.RemoteWorldLease`
  — it is a world living away from home, and the lease is what gets
  taken over if its host dies;
- **steal** — each detector round, an idle shard relieves the most
  backlogged one by pulling queued requests through
  :meth:`~repro.serve.service.SpeculationService.steal_requests`
  (counted ``mw_cluster_steals_total``).

The robustness headline is the failure path. The router heartbeats every
shard through the same :class:`RemoteWorldLease` state machine remote
worlds use, fed by the existing ``heartbeat``/``partition`` fault sites
plus the new ``cluster`` site (shard-crash-mid-burst, partitioned
router, stale takeover). ``miss_threshold`` consecutive missed beats —
or a full lease term without renewal — declare the shard dead and start
a **takeover**:

1. the shard is fenced (if the process is actually alive — the
   false-positive case — it must stop committing; the lease-term
   argument makes that safe to assume, and the simulation enforces it)
   and its worker threads are joined, so its journal is final;
2. the dead shard's lease is declared dead and reclaimed; per-request
   leases for worlds it hosted are taken over via
   :meth:`RemoteWorldLease.takeover`;
3. every admitted-but-unresolved request assigned to it is settled from
   the journal: a request whose ``block`` transaction already
   **applied** is *replayed* (its result is durable — re-running would
   double-commit; the resolved result is marked ``replayed``), and
   everything else is *re-landed* on the next surviving shard in the
   tenant's preference order, under the **same request seq**, so the
   journal block id dedupes any duplicate placement.

Exactly-once argument: a request commits iff its ``block`` transaction
applies in exactly one shard journal. Before takeover reads a journal
the shard's threads are joined (no concurrent appends); replay never
re-runs; re-land only happens when no journal applied; and duplicate
takeovers are suppressed because membership removal under the router
lock is the single point of entry. :meth:`audit_applied` recomputes the
per-seq applied count across every journal the cluster ever owned so
benches and fuzz tests can assert it.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.distrib.lease import RemoteWorldLease, heartbeat_lost
from repro.errors import (
    AdmissionRejected,
    ClusterError,
    JournalCrash,
    NoSurvivingShard,
    ServiceStopped,
    ShardUnreachable,
)
from repro.faults.plan import CLUSTER_SITE, FaultKind
from repro.journal import find_block_win
from repro.journal.recovery import RecoveryReport, recover
from repro.cluster.ring import HashRing
from repro.cluster.shard import ClusterShard, ShardState
from repro.serve.admission import ensure_seq_at_least, next_seq
from repro.serve.service import ServeResult

#: Beats per ROUTER_PARTITION decision window (the fault plan decides
#: once per window whether the router loses sight of a shard, and the
#: outage then covers the first ``partition_beats`` beats of it).
PARTITION_WINDOW_BEATS = 8


@dataclass
class ClusterResult:
    """What became of one cluster request.

    ``failover`` records how the result was obtained: ``""`` (served in
    place), ``"replayed"`` (recovered from a dead shard's journal),
    ``"relanded"`` (re-run on a survivor) or ``"rerouted"`` (moved off a
    draining shard). ``result`` is the underlying shard-level
    :class:`~repro.serve.service.ServeResult` when one exists.
    """

    status: str
    tenant: str
    seq: int
    shard_id: int | None = None
    failover: str = ""
    attempts: int = 1
    reason: str = ""
    result: ServeResult | None = None

    @property
    def committed(self) -> bool:
        return self.status == "committed"

    @property
    def replayed(self) -> bool:
        return self.failover == "replayed" or (
            self.result is not None and self.result.replayed
        )

    @property
    def value(self) -> Any:
        return None if self.result is None else self.result.value


class ClusterTicket:
    """A caller's handle on a cluster request (resolves exactly once)."""

    def __init__(self, tenant: str, seq: int) -> None:
        self.tenant = tenant
        self.seq = seq
        self._done = threading.Event()
        self._result: ClusterResult | None = None

    def _resolve(self, result: ClusterResult) -> None:
        self._result = result
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ClusterResult:
        if not self._done.wait(timeout):
            raise ClusterError(
                f"request {self.seq} (tenant {self.tenant!r}) not done "
                f"within {timeout}s"
            )
        assert self._result is not None
        return self._result


@dataclass
class _Inflight:
    """The router's record of one admitted, unresolved request."""

    tenant: str
    alternatives: Sequence[Any]
    initial: dict | None
    priority: int
    deadline_at: float | None
    timeout: float | None
    cost: float
    shard_id: int
    attempts: int = 1
    failover: str = ""
    lease: RemoteWorldLease | None = field(default=None, repr=False)
    spec: Any = None


@dataclass
class ClusterRestartReport:
    """What :meth:`ClusterRouter.restore` rebuilt from the shard journals."""

    #: per-shard recovery reports (quarantines ride inside each).
    recoveries: dict[int, RecoveryReport] = field(default_factory=dict)
    #: request seqs whose committed effects were found applied in *some*
    #: journal and replayed (never re-run) — including requests applied
    #: on a takeover survivor rather than their home shard.
    replayed: list[int] = field(default_factory=list)
    #: sealed-but-unapplied requests re-admitted once, under original seq.
    re_admitted: list[int] = field(default_factory=list)
    #: duplicate sealed admits (steal/re-land races) settled without a run.
    superseded: list[int] = field(default_factory=list)
    #: sealed requests with no rebuildable spec, settled ``unrecoverable``.
    dropped: list[int] = field(default_factory=list)
    #: the restored incarnation's first safe request seq.
    seq_floor: int = 1
    #: already-settled results for the replayed requests, by seq.
    results: dict[int, "ClusterResult"] = field(default_factory=dict)
    #: tickets for the re-admitted requests, by seq.
    tickets: dict[int, "ClusterTicket"] = field(default_factory=dict)


def _settle_admit_best_effort(journal: Any, seq: int, status: str) -> None:
    """Mark an admit applied, tolerating a journal that died mid-restore.

    Restore itself re-admits requests, and a re-admission's admit write
    can tear the *home* journal (poisoning it). Settling the old admit
    on that journal is pure bookkeeping: if the write is refused, the
    admit simply stays sealed and the next restore deduplicates it the
    same way — so losing the settle loses nothing.
    """
    try:
        journal.mark_applied(seq, status=status)
    except JournalCrash:
        pass


class ClusterRouter:
    """Route tenants onto shards; survive the shards dying.

    Parameters
    ----------
    shards:
        The :class:`ClusterShard` members (ids must be unique).
    vnodes:
        Ring smoothing (see :class:`HashRing`).
    heartbeat_s / miss_threshold / lease_term_s:
        Failure-detector cadence, in the router's *virtual* clock: each
        detector round advances the clock one ``heartbeat_s``.
    detect_interval_s:
        Real seconds between detector rounds when the background
        detector is running. Tests may instead drive
        :meth:`heartbeat_round` by hand.
    spill / steal:
        Enable the two load-balancing moves. ``steal_min_backlog`` is
        the queue depth at which a shard becomes a victim;
        ``steal_batch`` bounds requests moved per round.
    fault_plan / obs:
        Shared robustness planes. The plan's ``cluster`` site drives
        shard-crash/partition/stale-takeover injection; ``obs`` gains
        the ``mw_cluster_*`` family and ``cat="cluster"`` failover
        spans.
    """

    def __init__(
        self,
        shards: Sequence[ClusterShard],
        vnodes: int = 64,
        heartbeat_s: float = 0.1,
        miss_threshold: int = 3,
        lease_term_s: float = 0.5,
        detect_interval_s: float = 0.01,
        spill: bool = True,
        steal: bool = True,
        steal_min_backlog: int = 2,
        steal_batch: int = 2,
        fault_plan=None,
        obs=None,
        spare_factory=None,
    ) -> None:
        if not shards:
            raise ClusterError("a cluster needs at least one shard")
        ids = [s.shard_id for s in shards]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate shard ids: {sorted(ids)}")
        self.heartbeat_s = heartbeat_s
        self.miss_threshold = miss_threshold
        self.lease_term_s = lease_term_s
        self.detect_interval_s = detect_interval_s
        self.spill = spill
        self.steal = steal
        self.steal_min_backlog = steal_min_backlog
        self.steal_batch = steal_batch
        self.fault_plan = fault_plan
        self.obs = obs
        #: zero-arg callable returning a fresh (unstarted) in-process
        #: shard — the cluster-level degradation ladder: when a takeover
        #: re-land finds *no* surviving candidate (e.g. every remote
        #: shard unreachable), the router adopts one local spare and
        #: retries, mirroring the fork → thread → sequential backend
        #: fallback one level up
        self.spare_factory = spare_factory
        self._spare: ClusterShard | None = None
        self.ring = HashRing(vnodes=vnodes)
        self._shards: dict[int, ClusterShard] = {}
        self._retired: list[ClusterShard] = []
        self._inflight: dict[int, _Inflight] = {}
        self._tickets: dict[int, ClusterTicket] = {}
        self._lock = threading.RLock()
        self._running = False
        self._beat = 0
        self._vclock = 0.0
        self._detector: threading.Thread | None = None
        self._metrics_init(obs)
        for shard in shards:
            self._adopt(shard)

    # -- telemetry ---------------------------------------------------------
    def _metrics_init(self, obs) -> None:
        self._req_c = self._spill_c = self._steal_c = None
        self._takeover_c = self._failover_c = self._miss_c = self._up_g = None
        if obs is None:
            return
        reg = obs.registry
        self._req_c = reg.counter(
            "mw_cluster_requests_total", "Requests placed, by shard",
            labelnames=("shard",),
        )
        self._spill_c = reg.counter(
            "mw_cluster_spills_total",
            "Requests spilled off a saturated home shard",
            labelnames=("src", "dst"),
        )
        self._steal_c = reg.counter(
            "mw_cluster_steals_total",
            "Requests stolen from a backlogged shard by an idle one",
            labelnames=("src", "dst"),
        )
        self._takeover_c = reg.counter(
            "mw_cluster_takeovers_total", "Shard takeovers, by kind",
            labelnames=("kind",),
        )
        self._failover_c = reg.counter(
            "mw_cluster_failover_requests_total",
            "Requests settled by failover, by mode",
            labelnames=("mode",),
        )
        self._miss_c = reg.counter(
            "mw_cluster_heartbeat_misses_total",
            "Shard heartbeats the router did not see",
            labelnames=("shard",),
        )
        self._up_g = reg.gauge(
            "mw_cluster_shards_up", "Ring members currently believed up"
        )
        if self.fault_plan is not None:
            obs.watch_fault_plan(self.fault_plan)

    def _count(self, counter, **labels) -> None:
        if counter is not None:
            counter.inc(**{k: str(v) for k, v in labels.items()})

    def _set_up_gauge(self) -> None:
        if self._up_g is not None:
            self._up_g.set(float(sum(1 for s in self._shards.values() if s.up)))

    # -- membership --------------------------------------------------------
    def _adopt(self, shard: ClusterShard) -> None:
        shard.service.on_resolve = self._on_shard_resolve
        shard.lease = RemoteWorldLease(
            lease_id=shard.shard_id, node_id=shard.shard_id,
            term_s=self.lease_term_s, heartbeat_s=self.heartbeat_s,
            miss_threshold=self.miss_threshold,
            granted_at_s=self._vclock, obs=self.obs,
        )
        with self._lock:
            self._shards[shard.shard_id] = shard
            self.ring.add(shard.shard_id)
        if self._running:
            shard.start()
        self._set_up_gauge()

    def add_shard(self, shard: ClusterShard) -> None:
        """Scale out (or rejoin after fencing, as a fresh incarnation)."""
        if shard.shard_id in self._shards:
            raise ClusterError(f"shard {shard.shard_id} is already a member")
        self._adopt(shard)

    def _ensure_spare(self) -> ClusterShard | None:
        """Adopt the in-process spare shard, once (see ``spare_factory``)."""
        if self.spare_factory is None:
            return None
        with self._lock:
            spare = self._spare
        if spare is not None:
            return spare if spare.alive else None
        spare = self.spare_factory()
        if spare is None:
            return None
        with self._lock:
            if spare.shard_id in self._shards:
                return self._shards[spare.shard_id]
            self._spare = spare
        spare.start()
        self._adopt(spare)
        self._count(self._takeover_c, kind="spare-adopted")
        return spare

    @property
    def shards_up(self) -> int:
        return sum(1 for s in self._shards.values() if s.up)

    def shard(self, shard_id: int) -> ClusterShard:
        try:
            return self._shards[shard_id]
        except KeyError:
            raise ClusterError(f"no member shard {shard_id}") from None

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "beat": self._beat,
                "inflight": len(self._inflight),
                "members": [s.snapshot() for s in self._shards.values()],
                "retired": [s.shard_id for s in self._retired],
            }

    # -- lifecycle ---------------------------------------------------------
    def start(self, detect: bool = True) -> "ClusterRouter":
        if self._running:
            return self
        self._running = True
        for shard in list(self._shards.values()):
            shard.start()
        if detect:
            self._detector = threading.Thread(
                target=self._detector_loop, name="cluster-detector", daemon=True
            )
            self._detector.start()
        return self

    def _join_detector(self, timeout: float = 5.0) -> None:
        """Reap the detector thread; raise if it refuses to die.

        ``stop()``/``close()`` must never leak a dangling detector: a
        thread still pinging shards after shutdown keeps sockets (and
        whole shard-host processes) alive. The loop re-checks
        ``_running`` every ``detect_interval_s``, so a healthy detector
        always exits well inside the timeout.
        """
        detector, self._detector = self._detector, None
        if detector is None:
            return
        detector.join(timeout)
        if detector.is_alive():  # pragma: no cover - requires a hung beat
            self._detector = detector
            raise ClusterError(
                f"detector thread failed to stop within {timeout}s"
            )

    def stop(self) -> None:
        """Stop the detector and gracefully stop every member shard."""
        if not self._running:
            self._join_detector()
            return
        self._running = False
        self._join_detector()
        for shard in list(self._shards.values()):
            if shard.alive:
                shard.service.stop()
        # anything still unresolved (e.g. re-route raced shutdown) fails
        with self._lock:
            leftovers = list(self._inflight.items())
            self._inflight.clear()
        for seq, rec in leftovers:
            self._settle(
                seq,
                ClusterResult(
                    status="cancelled", tenant=rec.tenant, seq=seq,
                    shard_id=rec.shard_id, attempts=rec.attempts,
                    reason="cluster stopped",
                ),
            )

    def close(self) -> None:
        """Alias for :meth:`stop` — the resource-style spelling.

        Guaranteed (like ``stop``) to leave no dangling detector
        thread: both paths funnel through :meth:`_join_detector`.
        """
        self.stop()

    def crash(self) -> None:
        """Kill the whole cluster's process-state: the full-process death.

        Every shard crashes (journals survive, nothing else), the
        detector stops, and no ticket resolves — a dead process reports
        nothing. This is the chaos harness's whole-cluster kill switch;
        :meth:`restore` is its inverse, rebuilding the cluster from the
        shard journals alone.
        """
        self._running = False
        self._join_detector()
        for shard in list(self._shards.values()) + list(self._retired):
            if shard.alive:
                shard.crash()
        with self._lock:
            self._inflight.clear()
            self._tickets.clear()

    @classmethod
    def restore(
        cls,
        journals: dict[int, Any],
        build_alternatives=None,
        gates=(),
        shard_kwargs: dict | None = None,
        detect: bool = True,
        **kwargs: Any,
    ) -> tuple["ClusterRouter", ClusterRestartReport]:
        """Cold-restart a whole cluster from its shard journals.

        ``journals`` maps shard id -> freshly reopened
        :class:`~repro.journal.CommitJournal` (one per shard the dead
        cluster owned). The restart protocol:

        1. recover each journal (``admit``/``block`` txns deferred to
           this path);
        2. bump the process-wide seq counter past every journalled
           request seq;
        3. build fresh shards over the same journals (journalled
           admission forced on) and a fresh router over them;
        4. **cross-journal audit**: a request whose ``block`` txn
           applied in *any* journal — including a takeover survivor's,
           not just its home shard's — is *replayed* from the durable
           value and its sealed admit settled, so a restarted home
           shard never re-runs it;
        5. duplicate sealed admits for one seq (steal/re-land races cut
           down mid-flight) are deduplicated: one re-admission, the
           rest settled ``superseded``;
        6. the surviving sealed admits are re-admitted once, under
           their original seqs, via normal placement.

        Returns ``(router, report)``; the router is started and the
        report carries the replayed results and re-admission tickets.
        """
        shard_kwargs = dict(shard_kwargs or {})
        fault_plan = kwargs.get("fault_plan")
        obs = kwargs.get("obs")
        shard_kwargs.setdefault("fault_plan", fault_plan)
        shard_kwargs.setdefault("obs", obs)
        items = sorted(journals.items())

        report = ClusterRestartReport()
        floor = 1
        applied: dict[int, tuple[int, dict]] = {}
        for sid, journal in items:
            report.recoveries[sid] = recover(
                journal, gates=gates, fault_plan=fault_plan,
                defer_kinds=("admit", "block"),
            )
            for intent, data in journal.applied_intents("block"):
                rseq = intent["data"]["block"]
                floor = max(floor, rseq + 1)
                if "value" in data and rseq not in applied:
                    applied[rseq] = (sid, {
                        "winner_index": intent["data"]["winner_index"],
                        "winner_name": intent["data"]["winner_name"],
                        "value": data["value"],
                    })
            for intent, _ in journal.applied_intents("admit"):
                floor = max(floor, intent["data"]["request"] + 1)
            for intent in journal.sealed_unapplied_intents("admit"):
                floor = max(floor, intent["data"]["request"] + 1)
        ensure_seq_at_least(floor)
        report.seq_floor = floor

        shards = [
            ClusterShard(sid, journal=journal, journal_admission=True,
                         **shard_kwargs)
            for sid, journal in items
        ]
        router = cls(shards, **kwargs)
        router.start(detect=detect)

        # dedupe sealed admits across journals: exactly one incarnation
        # of each request survives restore
        pending: dict[int, tuple[int, Any, dict]] = {}
        for sid, journal in items:
            for intent in journal.sealed_unapplied_intents("admit"):
                rseq = intent["data"]["request"]
                if rseq in pending:
                    _settle_admit_best_effort(
                        journal, intent["seq"], "superseded")
                    report.superseded.append(rseq)
                    continue
                pending[rseq] = (sid, journal, intent)

        for rseq, (sid, journal, intent) in sorted(pending.items()):
            data = intent["data"]
            tenant = data.get("tenant", "?")
            win = applied.get(rseq)
            if win is not None:
                # applied somewhere (possibly a takeover survivor):
                # replay the durable value, never re-run
                wsid, wdata = win
                _settle_admit_best_effort(
                    journal, intent["seq"],
                    "recovered" if wsid == sid else "recovered-remote",
                )
                outcome = BlockOutcome(
                    winner=AlternativeResult(
                        index=wdata["winner_index"], name=wdata["winner_name"],
                        value=wdata["value"], succeeded=True,
                    ),
                    elapsed_s=0.0,
                )
                outcome.extras["journal_recovered"] = True
                report.replayed.append(rseq)
                report.results[rseq] = ClusterResult(
                    status="committed", tenant=tenant, seq=rseq,
                    shard_id=wsid, failover="replayed",
                    result=ServeResult(
                        status="committed", tenant=tenant, seq=rseq,
                        outcome=outcome, replayed=True,
                    ),
                )
                router._count(router._failover_c, mode="replayed")
                continue
            spec = data.get("spec")
            if build_alternatives is None or spec is None:
                _settle_admit_best_effort(
                    journal, intent["seq"], "unrecoverable")
                report.dropped.append(rseq)
                continue
            try:
                ticket = router.submit(
                    tenant, build_alternatives(spec),
                    priority=data.get("priority", 0),
                    cost=data.get("cost", 1.0),
                    timeout=data.get("timeout"),
                    seq=rseq, spec=spec,
                )
            except (AdmissionRejected, NoSurvivingShard, JournalCrash):
                # leave the admit sealed: a later restore retries it (a
                # JournalCrash here is an injected crash on the *new*
                # admit write — the durable old admit still covers it)
                continue
            report.re_admitted.append(rseq)
            report.tickets[rseq] = ticket
            # if placement landed away from home, the new shard sealed
            # its own admit; settle the old one so only one copy of the
            # request survives the *next* restart too
            with router._lock:
                landed = router._inflight.get(rseq)
                landed_sid = landed.shard_id if landed is not None else None
            if landed_sid != sid and journal.status(intent["seq"]) == "sealed":
                _settle_admit_best_effort(
                    journal, intent["seq"], "superseded")
        if obs is not None:
            obs.registry.counter(
                "mw_restores_total", "Cold restarts completed from a journal",
                labelnames=("layer",),
            ).inc(layer="cluster")
            obs.tracer.instant(
                "cluster.restore", cat="cluster", track="cluster",
                shards=len(items), replayed=len(report.replayed),
                re_admitted=len(report.re_admitted),
                superseded=len(report.superseded),
                dropped=len(report.dropped), seq_floor=floor,
            )
        return router, report

    def __enter__(self) -> "ClusterRouter":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- placement ---------------------------------------------------------
    def submit(
        self,
        tenant: str,
        alternatives: Sequence[Any],
        initial: dict | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
        timeout: float | None = None,
        cost: float = 1.0,
        seq: int | None = None,
        spec: Any = None,
    ) -> ClusterTicket:
        """Place one request on the tenant's (preferred live) shard.

        Raises :class:`~repro.errors.AdmissionRejected` when every
        candidate shard refuses it (cluster-level backpressure, with the
        largest ``retry_after_s`` hint seen) and
        :class:`~repro.errors.NoSurvivingShard` when no shard is up.

        ``seq`` is the restore hook — a re-admitted request keeps its
        original cluster-unique seq (and hence journal block id).
        ``spec`` is the picklable request description journalled by
        shards running with ``journal_admission`` (what makes the
        request rebuildable after a whole-cluster crash).
        """
        if not self._running:
            raise ServiceStopped("cluster is not running (call start())")
        if seq is None:
            seq = next_seq()
        rec = _Inflight(
            tenant=tenant,
            alternatives=list(alternatives),
            initial=initial,
            priority=priority,
            deadline_at=(
                None if deadline_s is None else time.monotonic() + deadline_s
            ),
            timeout=timeout,
            cost=cost,
            shard_id=-1,
            spec=spec,
        )
        ticket = ClusterTicket(tenant, seq)
        with self._lock:
            self._inflight[seq] = rec
            self._tickets[seq] = ticket
        try:
            self._place(seq, rec)
        except (AdmissionRejected, NoSurvivingShard):
            with self._lock:
                self._inflight.pop(seq, None)
                self._tickets.pop(seq, None)
            raise
        return ticket

    def _candidates(self, tenant: str, exclude: set[int]) -> list[ClusterShard]:
        with self._lock:
            order = self.ring.preference(tenant) if len(self.ring) else []
            return [
                self._shards[sid]
                for sid in order
                if sid not in exclude
                and sid in self._shards
                and self._shards[sid].up
            ]

    def _pick(self, tenant: str, exclude: set[int]) -> tuple[ClusterShard, ClusterShard | None]:
        """(target, spill_source): preference walk plus the spill move."""
        candidates = self._candidates(tenant, exclude)
        if not candidates:
            raise NoSurvivingShard(
                f"no live shard for tenant {tenant!r} "
                f"({len(self._shards)} members)"
            )
        home = candidates[0]
        if self.spill and home.idle_slots() == 0 and home.backlog() > 0:
            for other in candidates[1:]:
                if other.idle_slots() > 0 and other.backlog() == 0:
                    return other, home
        return home, None

    def _place(self, seq: int, rec: _Inflight, exclude: set[int] | None = None) -> None:
        """Land ``rec`` on a live shard; walk candidates on refusal."""
        exclude = set() if exclude is None else set(exclude)
        last_rejection: AdmissionRejected | None = None
        while True:
            target, spilled_from = self._pick(rec.tenant, exclude)
            try:
                target.service.submit(
                    rec.tenant, rec.alternatives, initial=rec.initial,
                    priority=rec.priority, deadline_at=rec.deadline_at,
                    timeout=rec.timeout, cost=rec.cost, seq=seq,
                    spec=rec.spec,
                )
            except (AdmissionRejected, ServiceStopped, ShardUnreachable) as exc:
                # ShardUnreachable — a remote shard's transport gave up
                # (retries exhausted or breaker open) — walks on exactly
                # like a stopped service; the detector independently
                # escalates the silent shard toward takeover
                if isinstance(exc, AdmissionRejected):
                    last_rejection = exc
                exclude.add(target.shard_id)
                if not self._candidates(rec.tenant, exclude):
                    if last_rejection is not None:
                        raise last_rejection
                    raise NoSurvivingShard(
                        f"request {seq}: every candidate shard is down"
                    )
                continue
            except JournalCrash:
                # the admit write crashed the target shard's journal:
                # that shard's process is dead (a torn write poisons its
                # WAL). But the request was already queued there and may
                # have raced through a worker — crash() joins the
                # workers, making the journal final, and the durable win
                # (if any) decides between replay and re-land. Without
                # the check, a re-land would run the block twice.
                target.crash()
                self._count(self._takeover_c, kind="journal-crash")
                win = find_block_win(target.journal, seq)
                if win is not None:
                    self._settle_replayed(seq, rec, target.shard_id, win)
                    return
                exclude.add(target.shard_id)
                if not self._candidates(rec.tenant, exclude):
                    raise NoSurvivingShard(
                        f"request {seq}: every candidate shard is down"
                    )
                continue
            with self._lock:
                rec.shard_id = target.shard_id
            self._count(self._req_c, shard=target.shard_id)
            if spilled_from is not None:
                self._count(
                    self._spill_c,
                    src=spilled_from.shard_id, dst=target.shard_id,
                )
                self._grant_request_lease(seq, rec, target)
            return

    def _place_or_spare(
        self, seq: int, rec: _Inflight, exclude: set[int] | None = None
    ) -> bool:
        """:meth:`_place`, degrading remote → local when nothing is left.

        Every failover-side re-placement (takeover re-land, steal
        re-place, shutdown-shed re-route) shares the same last rung: if
        every candidate shard is down — e.g. the whole remote fleet died
        between picking a target and landing on it — adopt the
        in-process spare and retry once instead of failing a request the
        cluster already accepted. Returns True iff the spare rung fired.
        """
        try:
            self._place(seq, rec, exclude=exclude)
            return False
        except NoSurvivingShard:
            if self._ensure_spare() is None:
                raise
            self._place(seq, rec, exclude=exclude)
            return True

    def _settle_replayed(
        self, seq: int, rec: _Inflight, shard_id: int, win: dict
    ) -> None:
        """Settle ``seq`` from a durable journalled win (exactly-once).

        Used when a shard died with the request's ``block`` transaction
        already applied in its journal: the value is replayed, never
        re-run — the same move :meth:`takeover` and :meth:`restore`
        make, packaged for the placement-walk crash paths.
        """
        with self._lock:
            rec.shard_id = shard_id
            self._inflight.pop(seq, None)
        self._finish_orphan_lease(rec, relanded_to=None)
        rec.failover = "replayed"
        outcome = BlockOutcome(
            winner=AlternativeResult(
                index=win["winner_index"], name=win["winner_name"],
                value=win["value"], succeeded=True,
            ),
            elapsed_s=0.0,
        )
        outcome.extras["journal_recovered"] = True
        self._count(self._failover_c, mode="replayed")
        self._settle(
            seq,
            ClusterResult(
                status="committed", tenant=rec.tenant, seq=seq,
                shard_id=shard_id, failover="replayed",
                attempts=rec.attempts,
                result=ServeResult(
                    status="committed", tenant=rec.tenant, seq=seq,
                    outcome=outcome, replayed=True,
                ),
            ),
        )

    def _grant_request_lease(self, seq: int, rec: _Inflight, target: ClusterShard) -> None:
        """Track a request living away from home under its own lease."""
        rec.lease = RemoteWorldLease(
            lease_id=seq, node_id=target.shard_id,
            term_s=self.lease_term_s, heartbeat_s=self.heartbeat_s,
            miss_threshold=self.miss_threshold,
            granted_at_s=self._vclock,
        )

    # -- resolution --------------------------------------------------------
    def _settle(self, seq: int, result: ClusterResult) -> None:
        with self._lock:
            ticket = self._tickets.pop(seq, None)
        if ticket is not None:
            ticket._resolve(result)

    def _on_shard_resolve(self, request, result: ServeResult) -> None:
        """Shard-level resolution hook (runs on shard worker threads)."""
        with self._lock:
            rec = self._inflight.get(request.seq)
            if rec is None:
                return  # already settled (takeover won the race) or foreign
            reroutable = (
                result.status == "cancelled"
                and result.retry_after_s > 0
                and self._running
                and rec.attempts <= len(self._shards) + 1
            )
            if not reroutable:
                self._inflight.pop(request.seq, None)
        if reroutable:
            # a draining shard shed it with a retry hint: re-route rather
            # than failing the caller (the shutdown-shed satellite payoff)
            rec.attempts += 1
            rec.failover = rec.failover or "rerouted"
            self._count(self._failover_c, mode="rerouted")
            try:
                self._place_or_spare(request.seq, rec, exclude={rec.shard_id})
            except (AdmissionRejected, NoSurvivingShard) as exc:
                with self._lock:
                    self._inflight.pop(request.seq, None)
                self._settle(
                    request.seq,
                    ClusterResult(
                        status="failed", tenant=rec.tenant, seq=request.seq,
                        shard_id=rec.shard_id, failover=rec.failover,
                        attempts=rec.attempts, reason=f"re-route failed: {exc}",
                    ),
                )
            return
        if rec.lease is not None and rec.lease.alive:
            rec.lease.complete(self._vclock)
        self._settle(
            request.seq,
            ClusterResult(
                status=result.status, tenant=rec.tenant, seq=request.seq,
                shard_id=rec.shard_id, failover=rec.failover,
                attempts=rec.attempts, reason=result.reason, result=result,
            ),
        )

    # -- failure detection -------------------------------------------------
    def _detector_loop(self) -> None:
        while self._running:
            try:
                self.heartbeat_round()
                if self.steal:
                    self.steal_round()
            except Exception:  # noqa: BLE001 - the detector never dies
                pass
            time.sleep(self.detect_interval_s)

    def _router_partitioned(self, shard_id: int, beat: int) -> bool:
        """ROUTER_PARTITION: beats the router loses to a partition window."""
        plan = self.fault_plan
        if plan is None:
            return False
        window, offset = divmod(beat, PARTITION_WINDOW_BEATS)
        decision = plan.decide(CLUSTER_SITE, shard_id, window)
        if decision.kind is not FaultKind.ROUTER_PARTITION:
            return False
        if offset >= int(decision.param):
            return False
        if offset == 0:
            plan.note_injection(
                CLUSTER_SITE, decision.kind,
                detail=f"router blind to shard {shard_id} for "
                f"{int(decision.param)} beats",
                t=self._vclock, track="cluster", shard=shard_id,
            )
        return True

    def heartbeat_round(self) -> None:
        """One failure-detector beat over every member shard.

        Advances the virtual clock by ``heartbeat_s``. A beat is missed
        when the shard process is dead, the router is partitioned from
        it (``ROUTER_PARTITION`` window or a ``partition``-site link
        flap), or the beat itself is lost in flight (``heartbeat``
        site). Misses escalate through the lease state machine exactly
        as remote worlds do; a declaration triggers takeover.
        """
        self._beat += 1
        now = self._vclock = self._beat * self.heartbeat_s
        plan = self.fault_plan
        for shard in list(self._shards.values()):
            # a DEAD member is exactly what this loop exists to notice (the
            # process died without telling anyone); only a shard mid-drain
            # is exempt — decommission owns its lifecycle
            if shard.state is ShardState.DRAINING:
                continue
            lease = shard.lease
            # one real beat: local shards answer by state, remote shards
            # by an actual ping RPC (whose failure also feeds their
            # circuit breaker, so a silent host fails fast next beat)
            answering = shard.answers_heartbeat()
            partitioned = self._router_partitioned(shard.shard_id, self._beat) or (
                plan is not None and plan.link_down(shard.shard_id, now)
            )
            lost = heartbeat_lost(plan, lease.lease_id, self._beat, t=now)
            if answering and not partitioned and not lost:
                lease.renew(now)
                if shard.state is ShardState.SUSPECT:
                    shard.state = ShardState.UP
                    self._set_up_gauge()
                self._maybe_stale_takeover(shard)
                continue
            self._count(self._miss_c, shard=shard.shard_id)
            reason = (
                "shard dead" if not answering
                else "router partitioned" if partitioned
                else "beat lost in flight"
            )
            lease.miss(now, reason)
            if shard.state is ShardState.UP:
                shard.state = ShardState.SUSPECT
            # probe: a synchronous liveness check straight at the shard —
            # rescues a live shard behind a lost beat, but not one behind
            # a partition (the probe takes the same dead path)
            if answering and not partitioned:
                lease.renew(now)
                lease.note(now, "probe-ok")
                shard.state = ShardState.UP
                continue
            lease.note(now, "probe-fail", reason)
            if (
                lease.consecutive_misses >= self.miss_threshold
                or lease.check_expiry(now)
            ):
                why = (
                    "lease expired" if lease.check_expiry(now)
                    else f"{lease.consecutive_misses} consecutive misses"
                )
                lease.declare_dead(now, f"{why} ({reason})")
                self.takeover(
                    shard.shard_id,
                    kind="crash" if not shard.alive else "stale",
                )

    def _maybe_stale_takeover(self, shard: ClusterShard) -> None:
        """STALE_TAKEOVER: start a takeover for a demonstrably live shard."""
        plan = self.fault_plan
        if plan is None:
            return
        decision = plan.decide(CLUSTER_SITE, shard.shard_id, self._beat)
        if decision.kind is not FaultKind.STALE_TAKEOVER:
            return
        plan.note_injection(
            CLUSTER_SITE, decision.kind,
            detail=f"takeover of live shard {shard.shard_id} at beat {self._beat}",
            t=self._vclock, track="cluster", shard=shard.shard_id,
        )
        shard.lease.declare_dead(self._vclock, "stale takeover (injected)")
        self.takeover(shard.shard_id, kind="stale")

    # -- load balancing ----------------------------------------------------
    def steal_round(self) -> int:
        """Move up to ``steal_batch`` requests from the most backlogged
        shard to an idle one; returns how many moved."""
        with self._lock:
            ups = [s for s in self._shards.values() if s.state is ShardState.UP]
        if len(ups) < 2:
            return 0
        busy = max(ups, key=lambda s: s.backlog())
        if busy.backlog() < self.steal_min_backlog:
            return 0
        idle = [
            s for s in ups
            if s is not busy and s.backlog() == 0 and s.idle_slots() > 0
        ]
        if not idle:
            return 0
        target = idle[0]
        moved = 0
        try:
            stolen = busy.service.steal_requests(self.steal_batch)
        except ShardUnreachable:
            return 0  # busy shard went silent; the detector handles it
        for request in stolen:
            with self._lock:
                rec = self._inflight.get(request.seq)
            if rec is None:
                continue  # resolved while being stolen; drop the copy
            rec.attempts += 1
            try:
                target.service.submit(
                    rec.tenant, rec.alternatives, initial=rec.initial,
                    priority=rec.priority, deadline_at=rec.deadline_at,
                    timeout=rec.timeout, cost=rec.cost, seq=request.seq,
                    spec=rec.spec,
                )
            except (
                AdmissionRejected, ServiceStopped, ShardUnreachable,
                JournalCrash,
            ) as refusal:
                if isinstance(refusal, JournalCrash):
                    # the thief's journal died taking the admit: the
                    # thief is a dead process, and the stolen request
                    # may already have raced through it (see _place)
                    target.crash()
                    win = find_block_win(target.journal, request.seq)
                    if win is not None:
                        # the value is durable on the thief's journal:
                        # the source's sealed admit can close now
                        try:
                            busy.service.confirm_stolen(request)
                        except ShardUnreachable:
                            pass  # source silent; takeover settles its admit
                        self._settle_replayed(
                            request.seq, rec, target.shard_id, win
                        )
                        moved += 1
                        continue
                # target refused after all: put it back through the
                # generic placement walk (home first)
                try:
                    self._place_or_spare(request.seq, rec)
                except (AdmissionRejected, NoSurvivingShard) as exc:
                    with self._lock:
                        self._inflight.pop(request.seq, None)
                    self._settle(
                        request.seq,
                        ClusterResult(
                            status="failed", tenant=rec.tenant,
                            seq=request.seq, shard_id=rec.shard_id,
                            attempts=rec.attempts,
                            reason=f"steal re-place failed: {exc}",
                        ),
                    )
                continue
            # the thief's admit is sealed: only now is the hand-off
            # durable, so only now may the source close its ledger line
            # (the reverse order would lose the request if the thief's
            # admit write tore — no durable admit anywhere)
            try:
                busy.service.confirm_stolen(request)
            except ShardUnreachable:
                # the source went silent *after* the hand-off became
                # durable on the thief: exactly-once still holds (only
                # the thief runs the block) and the source's unresolved
                # admit is settled by its eventual takeover
                pass
            with self._lock:
                rec.shard_id = target.shard_id
            self._grant_request_lease(request.seq, rec, target)
            self._count(
                self._steal_c, src=busy.shard_id, dst=target.shard_id
            )
            moved += 1
        return moved

    # -- failover ----------------------------------------------------------
    def kill_shard(self, shard_id: int) -> None:
        """Crash a member shard (bench/test injection entry point)."""
        shard = self.shard(shard_id)
        if self.fault_plan is not None:
            self.fault_plan.note_injection(
                CLUSTER_SITE, FaultKind.SHARD_CRASH,
                detail=f"shard {shard_id} killed",
                t=self._vclock, track="cluster", shard=shard_id,
            )
        shard.crash()

    def crash_decision(self, shard_id: int, epoch: int = 0) -> float | None:
        """The plan's verdict: kill ``shard_id`` this epoch? At what point?

        Returns the fraction of the phase at which the crash lands, or
        None. Benches query this per seed to schedule the mid-burst
        kill deterministically.
        """
        if self.fault_plan is None:
            return None
        decision = self.fault_plan.decide(CLUSTER_SITE, shard_id, epoch)
        if decision.kind is FaultKind.SHARD_CRASH:
            return decision.param
        return None

    def decommission(self, shard_id: int) -> None:
        """Gracefully remove a shard; its queued work re-routes.

        The shard finishes in-flight requests but sheds its backlog:
        shed requests resolve ``cancelled`` with a ``retry_after_s``
        hint, which :meth:`_on_shard_resolve` turns into re-placement on
        the surviving members — nobody's request fails just because its
        shard left the cluster politely.
        """
        shard = self.shard(shard_id)
        with self._lock:
            if shard_id in self.ring:
                self.ring.remove(shard_id)
            self._shards.pop(shard_id, None)
            self._retired.append(shard)
        self._set_up_gauge()
        shard.stop(drain=False)
        if shard.lease is not None and shard.lease.alive:
            shard.lease.complete(self._vclock)

    def takeover(self, shard_id: int, kind: str = "crash") -> dict:
        """Take over a (declared-)dead shard; idempotent per incarnation.

        Returns a report: ``{"shard", "kind", "replayed", "relanded",
        "failed", "stale"}``. A second call for the same shard — the
        STALE_TAKEOVER double-fire, or two detector paths racing — finds
        the shard already out of the membership table and returns a
        ``stale`` no-op report without touching anything.
        """
        with self._lock:
            shard = self._shards.get(shard_id)
            if shard is None:
                return {
                    "shard": shard_id, "kind": kind, "stale": True,
                    "replayed": 0, "relanded": 0, "failed": 0,
                }
            # membership removal under the lock is the idempotence gate:
            # exactly one caller gets to run the takeover body
            self.ring.remove(shard_id)
            self._shards.pop(shard_id)
            self._retired.append(shard)
        self._set_up_gauge()
        self._count(self._takeover_c, kind=kind)
        span_id = -1
        if self.obs is not None:
            span_id = self.obs.tracer.begin(
                f"takeover:shard:{shard_id}", cat="cluster", track="cluster",
                shard=shard_id, kind=kind,
            )
        # 1. fence/crash and join the shard's workers: the journal is
        #    final after this, which is what makes step 3 race-free
        if shard.alive:
            shard.fence()
        else:
            shard.crash()
        # 2. settle the shard's own lease
        if shard.lease is not None:
            shard.lease.declare_dead(self._vclock, f"takeover ({kind})")
            shard.lease.reclaim(self._vclock)
        # 3. settle every admitted-but-unresolved request it held
        with self._lock:
            orphans = [
                (seq, rec) for seq, rec in self._inflight.items()
                if rec.shard_id == shard_id
            ]
        replayed = relanded = failed = 0
        for seq, rec in orphans:
            win = find_block_win(shard.journal, seq)
            if win is not None:
                replayed += 1
                self._finish_orphan_lease(rec, relanded_to=None)
                with self._lock:
                    self._inflight.pop(seq, None)
                rec.failover = "replayed"
                outcome = BlockOutcome(
                    winner=AlternativeResult(
                        index=win["winner_index"], name=win["winner_name"],
                        value=win["value"], succeeded=True,
                    ),
                    elapsed_s=0.0,
                )
                outcome.extras["journal_recovered"] = True
                self._count(self._failover_c, mode="replayed")
                self._settle(
                    seq,
                    ClusterResult(
                        status="committed", tenant=rec.tenant, seq=seq,
                        shard_id=shard_id, failover="replayed",
                        attempts=rec.attempts,
                        result=ServeResult(
                            status="committed", tenant=rec.tenant, seq=seq,
                            outcome=outcome, replayed=True,
                        ),
                    ),
                )
                continue
            # never applied anywhere: re-land on the next preference
            rec.attempts += 1
            rec.failover = "relanded"
            mode = "relanded"
            try:
                # remote → local degradation: when every candidate is
                # gone (e.g. the whole remote fleet is unreachable), the
                # helper adopts an in-process spare and retries once —
                # the cluster-level rung of fork → thread → sequential
                if self._place_or_spare(seq, rec, exclude={shard_id}):
                    mode = "spare"
            except (AdmissionRejected, NoSurvivingShard) as exc:
                failed += 1
                with self._lock:
                    self._inflight.pop(seq, None)
                self._count(self._failover_c, mode="lost")
                self._settle(
                    seq,
                    ClusterResult(
                        status="failed", tenant=rec.tenant, seq=seq,
                        shard_id=shard_id, failover="relanded",
                        attempts=rec.attempts,
                        reason=f"re-land failed: {exc}",
                    ),
                )
                continue
            relanded += 1
            self._count(self._failover_c, mode=mode)
            self._finish_orphan_lease(
                rec, relanded_to=self._shards.get(rec.shard_id)
            )
        if span_id >= 0:
            self.obs.tracer.end(
                span_id, disposition="committed",
                replayed=replayed, relanded=relanded, failed=failed,
            )
        return {
            "shard": shard_id, "kind": kind, "stale": False,
            "replayed": replayed, "relanded": relanded, "failed": failed,
        }

    def _finish_orphan_lease(self, rec: _Inflight, relanded_to) -> None:
        """Settle (and, on re-land, hand over) a request's own lease."""
        lease = rec.lease
        if lease is None:
            return
        lease.declare_dead(self._vclock, "host shard taken over")
        lease.reclaim(self._vclock)
        if relanded_to is not None:
            rec.lease = lease.takeover(self._vclock, relanded_to.shard_id)
        else:
            rec.lease = None

    # -- auditing ----------------------------------------------------------
    def journals(self) -> list:
        """Every journal the cluster ever owned (members + retired)."""
        with self._lock:
            shards = list(self._shards.values()) + list(self._retired)
        seen: set[int] = set()
        out = []
        for shard in shards:
            if id(shard.journal) not in seen:
                seen.add(id(shard.journal))
                out.append(shard.journal)
        return out

    def audit_applied(self) -> dict[int, int]:
        """Per request-seq count of *applied* ``block`` transactions
        across every shard journal — the exactly-once ledger.

        For a committed request the count must be exactly 1 (0 means a
        lost commit, ≥2 a double commit); for a failed/shed request 0.
        """
        counts: dict[int, int] = {}
        for journal in self.journals():
            # applied_intents (not records()) so the audit survives
            # compaction: applied intents ride the snapshot
            for intent, _ in journal.applied_intents("block"):
                block = intent["data"]["block"]
                counts[block] = counts.get(block, 0) + 1
        return counts
