"""Framed RPC wire protocol for out-of-process shards.

The shard transport needs exactly what the checkpoint wire
(:mod:`repro.runtime.checkpoint`, ``MWCKPT2``) and the journal
(``MWJRNL1``) already settled on: a length-prefixed frame whose CRC32 is
verified **before** the payload is unpickled. A stream socket gives no
message boundaries and no integrity — this module supplies both:

``MAGIC + <II>(body_len, crc32) + pickle(body)``

per frame. Unlike the journal (an append-only file scanned once at
open), a socket frame that fails validation poisons the *stream*: a
torn length header makes every later byte unframeable, so the receiver
raises :class:`~repro.errors.WireCorrupt`, the connection is reset, and
the sender retries over a fresh connect — the same discipline TCP
applications use, made explicit.

Frames carry plain picklable envelopes (dicts). The RPC semantics —
request ids, idempotency tokens, retry/backoff, pushes — live one layer
up in :mod:`repro.cluster.remote`; this module only moves validated
frames.
"""

from __future__ import annotations

import pickle
import socket
import struct
import zlib
from typing import Any

from repro.errors import WireCorrupt

__all__ = [
    "MAGIC",
    "MAX_FRAME_BYTES",
    "pack_frame",
    "recv_frame",
    "send_frame",
    "unpack_frame",
]

MAGIC = b"MWRPC01\n"
_HEADER = struct.Struct("<II")  # (body_len, crc32) — the MWJRNL1 pair

#: Upper bound on one frame's pickled body. Checkpoints of world state
#: ride the submit RPC, so this is generous — but a corrupt length
#: header must never convince the receiver to allocate gigabytes.
MAX_FRAME_BYTES = 64 * 1024 * 1024


def pack_frame(body: Any) -> bytes:
    """Serialize ``body`` into one framed, CRC-protected message."""
    payload = pickle.dumps(body)
    if len(payload) > MAX_FRAME_BYTES:
        raise WireCorrupt(
            f"frame body of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame bound"
        )
    return MAGIC + _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def unpack_frame(blob: bytes) -> Any:
    """Validate and unpickle one complete frame (the test/debug hook).

    Raises :class:`~repro.errors.WireCorrupt` on any framing damage —
    wrong magic, truncation, length out of bounds, CRC mismatch — and
    only unpickles bytes whose checksum matched.
    """
    if len(blob) < len(MAGIC) + _HEADER.size:
        raise WireCorrupt(
            f"frame truncated: {len(blob)} bytes is shorter than the header"
        )
    if blob[: len(MAGIC)] != MAGIC:
        raise WireCorrupt(f"bad frame magic {blob[:len(MAGIC)]!r}")
    body_len, crc = _HEADER.unpack_from(blob, len(MAGIC))
    if body_len > MAX_FRAME_BYTES:
        raise WireCorrupt(f"frame declares {body_len} bytes (bound exceeded)")
    payload = blob[len(MAGIC) + _HEADER.size :]
    if len(payload) != body_len:
        raise WireCorrupt(
            f"frame declares {body_len} body bytes but carries {len(payload)}"
        )
    got = zlib.crc32(payload)
    if got != crc:
        raise WireCorrupt(
            f"frame CRC mismatch: expected {crc:#010x}, got {got:#010x}"
        )
    return pickle.loads(payload)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionResetError(
                f"peer closed mid-frame ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, body: Any) -> None:
    """Send ``body`` as one frame (atomic from the peer's viewpoint)."""
    sock.sendall(pack_frame(body))


def recv_frame(sock: socket.socket, timeout: float | None = None) -> Any:
    """Receive and validate one frame.

    ``timeout`` bounds the wait for the *first* byte (socket timeout);
    raises ``TimeoutError`` past it, ``ConnectionError`` on EOF, and
    :class:`~repro.errors.WireCorrupt` on framing damage. The CRC is
    checked before any unpickling, exactly like checkpoint wire v2.
    """
    if timeout is not None:
        sock.settimeout(timeout)
    header = _recv_exact(sock, len(MAGIC) + _HEADER.size)
    if header[: len(MAGIC)] != MAGIC:
        raise WireCorrupt(f"bad frame magic {header[:len(MAGIC)]!r}")
    body_len, crc = _HEADER.unpack_from(header, len(MAGIC))
    if body_len > MAX_FRAME_BYTES:
        raise WireCorrupt(f"frame declares {body_len} bytes (bound exceeded)")
    payload = _recv_exact(sock, body_len)
    got = zlib.crc32(payload)
    if got != crc:
        raise WireCorrupt(
            f"frame CRC mismatch: expected {crc:#010x}, got {got:#010x}"
        )
    return pickle.loads(payload)
