"""One cluster shard: a speculation service with its own budget + journal.

A :class:`ClusterShard` owns exactly the state a real node would own —
a :class:`~repro.serve.budget.WorldBudget` (its slots), an
:class:`~repro.serve.admission.AdmissionQueue` (its backlog) and a
:class:`~repro.journal.CommitJournal` (its durable commit record) —
wrapped around a :class:`~repro.serve.service.SpeculationService`. The
router talks to shards only through this wrapper, which is what makes
shard death meaningful: :meth:`ClusterShard.crash` kills everything
*except* the journal, and :meth:`ClusterShard.fence` excommunicates a
live shard the router wrongly declared dead (the lease-expiry
self-fencing argument: by the time a takeover begins, the shard's lease
term has lapsed, so a correct shard has already stopped committing).

Each shard also carries a :class:`~repro.distrib.lease.RemoteWorldLease`
granted by the router — the failure detector state — so shard death
walks the same suspect → probe → declare-dead → reclaim machine remote
worlds already use, fed by the same ``heartbeat``/``partition`` fault
sites.
"""

from __future__ import annotations

import enum
import threading

from repro.errors import ClusterError
from repro.journal import CommitJournal, FileJournalStorage, MemoryJournalStorage
from repro.serve.admission import AdmissionQueue
from repro.serve.budget import WorldBudget
from repro.serve.policy import AdaptiveSpeculationPolicy
from repro.serve.service import SpeculationService
from repro.serve.stats import AlternativeStats


class ShardState(str, enum.Enum):
    """Where a shard is in its lifecycle, as the router sees it."""

    UP = "up"
    SUSPECT = "suspect"      # missed heartbeats; probing
    DRAINING = "draining"    # graceful decommission in progress
    DEAD = "dead"            # crashed (or declared dead); taken over
    FENCED = "fenced"        # live but excommunicated (false positive)


class ClusterShard:
    """One shard of the speculation cluster.

    Parameters
    ----------
    shard_id:
        Small int id; also the heartbeat/partition fault key, so a
        plan's verdicts about this shard are stable across runs.
    slots / workers / backend / policy:
        The underlying :class:`SpeculationService` sizing. ``policy``
        defaults to a fresh :class:`AdaptiveSpeculationPolicy` per
        shard (stats are shard-local state and die with the shard).
    journal:
        The shard's own :class:`CommitJournal` (default: in-memory
        storage). The one thing that survives :meth:`crash`. A plain
        ``str`` is taken as a filesystem path and opened as
        :class:`~repro.journal.FileJournalStorage` — the form a
        shard-host child process uses, where the journal must survive
        ``kill -9`` of the whole process.
    fault_plan / obs:
        The shared robustness planes. Note metrics are cluster-shared:
        shard-distinct series carry a ``shard`` label.
    journal_admission:
        Passed through to the service: journal every admitted request
        as a sealed ``admit`` txn so a cold restart
        (:meth:`ClusterRouter.restore`) can rebuild this shard's
        backlog from its journal.
    """

    def __init__(
        self,
        shard_id: int,
        slots: int = 2,
        workers: int = 4,
        backend: str = "thread",
        policy=None,
        journal: CommitJournal | str | None = None,
        queue_depth: int | None = None,
        fault_plan=None,
        obs=None,
        on_resolve=None,
        journal_admission: bool = False,
    ) -> None:
        if shard_id < 0:
            raise ClusterError(f"shard_id must be non-negative, got {shard_id}")
        self.shard_id = shard_id
        if isinstance(journal, str):
            journal = CommitJournal(storage=FileJournalStorage(journal))
        self.journal = journal if journal is not None else CommitJournal(
            storage=MemoryJournalStorage()
        )
        self.budget = WorldBudget(slots)
        self.queue = AdmissionQueue(
            depth=queue_depth if queue_depth is not None else 16 * slots
        )
        if policy is None:
            policy = AdaptiveSpeculationPolicy(stats=AlternativeStats())
        self.service = SpeculationService(
            self.budget,
            queue=self.queue,
            policy=policy,
            workers=workers,
            backend=backend,
            fault_plan=fault_plan,
            journal=self.journal,
            obs=obs,
            on_resolve=on_resolve,
            journal_admission=journal_admission,
        )
        self.state = ShardState.UP
        self.incarnation = 0
        #: router-granted failure-detector lease; set by the router
        self.lease = None
        self._lock = threading.Lock()

    # -- introspection -----------------------------------------------------
    @property
    def up(self) -> bool:
        return self.state in (ShardState.UP, ShardState.SUSPECT)

    @property
    def alive(self) -> bool:
        """Whether the *process* is alive (a FENCED shard still is)."""
        return self.state not in (ShardState.DEAD,)

    def answers_heartbeat(self) -> bool:
        """One failure-detector beat: would this shard answer right now?

        In-process shards answer by construction whenever the process
        abstraction says they are alive and not fenced; the remote
        transport (:class:`~repro.cluster.remote.RemoteShardClient`)
        overrides this with a real ping over its socket. The router's
        detector calls only this, which is what lets the two transports
        share one suspect → probe → declare-dead machine.
        """
        return self.alive and self.state is not ShardState.FENCED

    def backlog(self) -> int:
        return len(self.queue)

    def idle_slots(self) -> int:
        return self.budget.free

    def load(self) -> float:
        return self.budget.load

    def snapshot(self) -> dict:
        return {
            "shard": self.shard_id,
            "state": self.state.value,
            "incarnation": self.incarnation,
            "backlog": self.backlog(),
            "slots_free": self.idle_slots(),
        }

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "ClusterShard":
        self.service.start()
        return self

    def stop(self, drain: bool = True) -> None:
        """Graceful decommission: finish in-flight work, then die.

        ``drain=True`` serves the whole backlog first; ``drain=False``
        sheds it immediately (as ``cancelled`` + ``retry_after_s``) so a
        router can re-land it on surviving shards without waiting.
        """
        with self._lock:
            if self.state in (ShardState.DEAD, ShardState.FENCED):
                return
            self.state = ShardState.DRAINING
        self.service.stop(drain=drain)
        self.state = ShardState.DEAD

    def crash(self) -> None:
        """The shard process dies. Only the journal survives.

        Idempotent. In-flight requests settle their journal transactions
        (see :meth:`SpeculationService.crash`) but report nothing; the
        router recovers admitted work by replaying this shard's journal
        and re-landing whatever never applied.
        """
        with self._lock:
            if self.state is ShardState.DEAD:
                return
            self.state = ShardState.DEAD
        self.service.crash()

    def fence(self) -> None:
        """Excommunicate a live shard (false-positive death declaration).

        Same mechanics as :meth:`crash` — the shard stops processing and
        reporting — but the label records that the process was alive:
        the router partitioned from it, its lease expired, and correct
        self-fencing means it must not commit past that point even
        though it never died.
        """
        with self._lock:
            if self.state in (ShardState.DEAD, ShardState.FENCED):
                return
            self.state = ShardState.FENCED
        self.service.crash()
