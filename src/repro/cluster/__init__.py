"""The sharded speculation cluster: scale-out that survives shard death.

``repro.cluster`` stacks a distribution layer over :mod:`repro.serve`:

- :class:`HashRing` — consistent-hash placement of tenants onto shards,
  deterministic across processes and minimally disturbed by membership
  churn;
- :class:`ClusterShard` — one shard: a
  :class:`~repro.serve.service.SpeculationService` with its own
  :class:`~repro.serve.budget.WorldBudget` and
  :class:`~repro.journal.CommitJournal`, wrapped so that crashing it
  kills everything *except* the journal;
- :class:`ClusterRouter` — placement (with spill to idle shards and
  work stealing off backlogged ones), lease-based failure detection,
  and journal-replay failover: a dead shard's admitted requests are
  replayed from its journal when their commit already applied and
  re-landed on survivors — under the same request seq, hence the same
  journal block id — when it did not. Every admitted request commits
  exactly once; :meth:`ClusterRouter.audit_applied` proves it.

Shards need not share the router's process:
:class:`~repro.cluster.remote.RemoteShardClient` runs one behind a
framed RPC socket (:mod:`repro.cluster.wire`) in its own OS process —
the router is transport-polymorphic, so local and remote shards mix in
one ring, and "shard death" can be a literal ``kill -9``.

Fault injection rides the existing planes: the plan's ``heartbeat`` /
``partition`` sites plus the ``cluster`` site
(:data:`~repro.faults.plan.CLUSTER_SITE`: shard-crash-mid-burst,
partitioned router, stale takeover) and the ``transport`` site
(:data:`~repro.faults.plan.TRANSPORT_SITE`: torn frames, socket stalls,
SIGSTOP'd and SIGKILL'd hosts, refused connects).
"""

from repro.cluster.remote import (
    CircuitBreaker,
    RemoteShardClient,
    host_kill_decision,
    shard_host_main,
)
from repro.cluster.ring import HashRing
from repro.cluster.router import (
    ClusterResult,
    ClusterRestartReport,
    ClusterRouter,
    ClusterTicket,
    PARTITION_WINDOW_BEATS,
)
from repro.cluster.shard import ClusterShard, ShardState
from repro.cluster.wire import pack_frame, recv_frame, send_frame, unpack_frame

__all__ = [
    "CircuitBreaker",
    "ClusterResult",
    "ClusterRestartReport",
    "ClusterRouter",
    "ClusterShard",
    "ClusterTicket",
    "HashRing",
    "PARTITION_WINDOW_BEATS",
    "RemoteShardClient",
    "ShardState",
    "host_kill_decision",
    "pack_frame",
    "recv_frame",
    "send_frame",
    "shard_host_main",
    "unpack_frame",
]
