"""The sharded speculation cluster: scale-out that survives shard death.

``repro.cluster`` stacks a distribution layer over :mod:`repro.serve`:

- :class:`HashRing` — consistent-hash placement of tenants onto shards,
  deterministic across processes and minimally disturbed by membership
  churn;
- :class:`ClusterShard` — one shard: a
  :class:`~repro.serve.service.SpeculationService` with its own
  :class:`~repro.serve.budget.WorldBudget` and
  :class:`~repro.journal.CommitJournal`, wrapped so that crashing it
  kills everything *except* the journal;
- :class:`ClusterRouter` — placement (with spill to idle shards and
  work stealing off backlogged ones), lease-based failure detection,
  and journal-replay failover: a dead shard's admitted requests are
  replayed from its journal when their commit already applied and
  re-landed on survivors — under the same request seq, hence the same
  journal block id — when it did not. Every admitted request commits
  exactly once; :meth:`ClusterRouter.audit_applied` proves it.

Fault injection rides the existing planes: the plan's ``heartbeat`` /
``partition`` sites plus the ``cluster`` site
(:data:`~repro.faults.plan.CLUSTER_SITE`: shard-crash-mid-burst,
partitioned router, stale takeover).
"""

from repro.cluster.ring import HashRing
from repro.cluster.router import (
    ClusterResult,
    ClusterRestartReport,
    ClusterRouter,
    ClusterTicket,
    PARTITION_WINDOW_BEATS,
)
from repro.cluster.shard import ClusterShard, ShardState

__all__ = [
    "ClusterResult",
    "ClusterRestartReport",
    "ClusterRouter",
    "ClusterShard",
    "ClusterTicket",
    "HashRing",
    "PARTITION_WINDOW_BEATS",
    "ShardState",
]
