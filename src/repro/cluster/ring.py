"""The consistent-hash ring: tenants → shards, stable under churn.

Routing in the cluster must satisfy three properties the or-parallel
splitting literature (Vieira et al., PAPERS.md) treats as table stakes
for work-distribution policy:

- **determinism across processes** — every router incarnation (and
  every test re-run) must map the same tenant to the same shard, so
  hashing uses :func:`hashlib.blake2b` over the tenant string, never
  Python's per-process-salted ``hash()``;
- **insertion-order independence** — a ring built ``A,B,C`` and a ring
  built ``C,A,B`` are the same ring (membership is a *set*; the ring
  positions are pure functions of shard id);
- **minimal remapping** — adding a shard to an ``N``-shard ring moves
  only the tenants the new shard now owns (≈ ``1/(N+1)`` of them, with
  ``vnodes`` virtual points smoothing the variance), and removing one
  moves only the dead shard's tenants onto their next-preferred
  survivors. Everything else keeps its home — which is what keeps a
  failover from stampeding the whole cluster's admission queues.

:meth:`HashRing.preference` is the failover order: the distinct shards
encountered walking clockwise from the tenant's point. The first entry
is the home shard; a router re-lands a dead shard's requests on the
next *surviving* entry, so re-placement is deterministic too.
"""

from __future__ import annotations

import bisect
import hashlib

from repro.errors import ClusterError


def _hash64(data: str) -> int:
    """A stable 64-bit point for ``data`` (process-independent)."""
    return int.from_bytes(
        hashlib.blake2b(data.encode("utf-8"), digest_size=8).digest(), "big"
    )


class HashRing:
    """A consistent-hash ring over shard ids with virtual nodes.

    Parameters
    ----------
    shards:
        Initial shard ids (any hashable-as-string ids; the cluster uses
        ints). Order does not matter.
    vnodes:
        Virtual points per shard. More vnodes → smoother balance and
        smaller remap variance, at linear memory cost. 64 keeps the
        max/min tenant-share ratio under ~2 for realistic shard counts.
    """

    def __init__(self, shards=(), vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ClusterError(f"vnodes must be positive, got {vnodes}")
        self.vnodes = vnodes
        self._points: list[tuple[int, object]] = []  # sorted (point, shard)
        self._shards: set = set()
        for shard in shards:
            self.add(shard)

    # -- membership --------------------------------------------------------
    def __len__(self) -> int:
        return len(self._shards)

    def __contains__(self, shard) -> bool:
        return shard in self._shards

    @property
    def shards(self) -> list:
        """Current members, in stable (sorted-by-repr) order."""
        return sorted(self._shards, key=repr)

    def _shard_points(self, shard) -> list[int]:
        return [_hash64(f"shard:{shard}:vnode:{v}") for v in range(self.vnodes)]

    def add(self, shard) -> None:
        """Add ``shard``; remaps only the tenants it now owns."""
        if shard in self._shards:
            raise ClusterError(f"shard {shard!r} is already on the ring")
        self._shards.add(shard)
        for point in self._shard_points(shard):
            bisect.insort(self._points, (point, shard))

    def remove(self, shard) -> None:
        """Drop ``shard``; its tenants fall to their next preference."""
        if shard not in self._shards:
            raise ClusterError(f"shard {shard!r} is not on the ring")
        self._shards.discard(shard)
        self._points = [(p, s) for p, s in self._points if s != shard]

    # -- routing -----------------------------------------------------------
    def route(self, tenant: str):
        """The shard owning ``tenant`` (first point clockwise)."""
        if not self._points:
            raise ClusterError("cannot route on an empty ring")
        idx = bisect.bisect_right(self._points, (_hash64(f"tenant:{tenant}"),))
        if idx == len(self._points):
            idx = 0  # wrap past twelve o'clock
        return self._points[idx][1]

    def preference(self, tenant: str, n: int | None = None) -> list:
        """Distinct shards in clockwise order from ``tenant``'s point.

        ``preference(t)[0] == route(t)``; entry ``i+1`` is where the
        tenant lands if the first ``i+1`` entries are all dead — the
        deterministic failover order.
        """
        if not self._points:
            raise ClusterError("cannot route on an empty ring")
        want = len(self._shards) if n is None else min(n, len(self._shards))
        start = bisect.bisect_right(self._points, (_hash64(f"tenant:{tenant}"),))
        seen: list = []
        for i in range(len(self._points)):
            shard = self._points[(start + i) % len(self._points)][1]
            if shard not in seen:
                seen.append(shard)
                if len(seen) >= want:
                    break
        return seen
