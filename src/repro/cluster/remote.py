"""Out-of-process shards: a real shard-host process behind framed RPC.

Until now every :class:`~repro.cluster.shard.ClusterShard` lived inside
the router's process, and "shard death" was a polite simulation
(``crash()`` flips a state enum). This module pushes a shard across a
real OS process boundary:

- :func:`shard_host_main` — the child-process entry point. It builds an
  ordinary ``ClusterShard`` around a **file-backed**
  :class:`~repro.journal.CommitJournal` (the one thing that survives
  ``kill -9``), listens on a Unix socket, and serves the shard surface
  as framed RPCs (:mod:`repro.cluster.wire`): submit / steal /
  heartbeat(ping) / fence / journal-read / stop. Request handling is
  idempotent per token, so a client resend after a timeout never
  double-executes a submit.
- :class:`RemoteShardClient` — the parent-side proxy. It implements the
  same surface :class:`~repro.cluster.router.ClusterRouter` already
  calls on a local ``ClusterShard`` (``state``/``up``/``alive``,
  ``backlog``/``idle_slots``/``load``, ``start``/``stop``/``crash``/
  ``fence``, a ``.service`` facade with ``submit``/``steal_requests``/
  ``confirm_stolen``/``on_resolve``), which is what makes the router
  transport-polymorphic: local and remote shards mix in one hash ring.

Reliability stack, bottom-up:

1. **Framing** — every message is a CRC32-checked frame
   (:mod:`~repro.cluster.wire`); a corrupt frame resets the connection.
2. **Retry** — each RPC runs under
   :func:`repro.distrib.retry.call_with_retries` with a per-call
   timeout, bounded exponential backoff, a total
   :attr:`~repro.distrib.retry.RetryPolicy.deadline_s`, and a stable
   idempotency token, so resends are safe (the host dedupes by token).
3. **Circuit breaker** — consecutive transport failures open a
   per-shard breaker (closed → open → half-open); while open, calls
   fail fast with :class:`~repro.errors.ShardUnreachable` and
   heartbeats report the shard silent, which drives the router's
   existing suspect → probe → declare-dead path.
4. **Failover** — once declared dead the host is SIGKILLed (if still
   running) and its journal reopened **from the file** for the usual
   replay-or-re-land takeover; with a ``spare_factory`` configured the
   router degrades remote → local, re-landing the orphans on an
   in-process spare (the cluster-level analogue of the
   fork → thread → sequential backend ladder).

Fault injection rides :data:`~repro.faults.plan.TRANSPORT_SITE`:
``TORN_FRAME`` / ``SOCKET_STALL`` / ``CONNECT_REFUSED`` fire per RPC
attempt inside the client, while ``HOST_SIGSTOP`` / ``HOST_SIGKILL``
are harness-level verdicts (:func:`host_kill_decision`) that freeze or
kill the real child PID.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import pickle
import signal
import socket
import tempfile
import threading
import time
from typing import Any

from repro.cluster.shard import ClusterShard, ShardState
from repro.cluster.wire import recv_frame, send_frame, pack_frame
from repro.distrib.retry import RetryPolicy, call_with_retries
from repro.errors import (
    AdmissionRejected,
    ClusterError,
    JournalCrash,
    RetriesExhausted,
    ServiceStopped,
    ShardUnreachable,
    TransportError,
    TransportTimeout,
    WireCorrupt,
)
from repro.faults.plan import TRANSPORT_SITE, FaultKind
from repro.journal import CommitJournal, FileJournalStorage, MemoryJournalStorage

__all__ = [
    "CircuitBreaker",
    "RemoteShardClient",
    "host_kill_decision",
    "shard_host_main",
]

#: Exceptions one RPC attempt may raise that the retry loop should
#: absorb. ``ShardUnreachable`` is deliberately absent: it means the
#: breaker opened (or retries already ran out) and must fail fast.
_RETRYABLE = (
    WireCorrupt,
    TransportTimeout,
    ConnectionError,
    TimeoutError,
    OSError,
)

#: Service-level errors a shard host reports by name over the wire; the
#: client re-raises the same type so the router's handling is identical
#: for local and remote shards.
_WIRE_ERRORS: dict[str, Any] = {
    "AdmissionRejected": AdmissionRejected,
    "ServiceStopped": ServiceStopped,
    "JournalCrash": JournalCrash,
    "ClusterError": ClusterError,
}

_RPC_LATENCY_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0,
)


def host_kill_decision(plan, shard_id: int, epoch: int = 0) -> float | None:
    """The plan's verdict: SIGKILL this shard's host during ``epoch``?

    Returns the fraction of the epoch's burst at which the kill lands,
    or None. The remote analogue of
    :meth:`~repro.cluster.router.ClusterRouter.crash_decision`, keyed
    identically so benches can schedule real-process kills per seed.
    """
    if plan is None:
        return None
    decision = plan.decide(TRANSPORT_SITE, shard_id, epoch)
    if decision.kind is FaultKind.HOST_SIGKILL:
        return decision.param
    return None


def host_sigstop_decision(plan, shard_id: int, epoch: int = 0) -> float | None:
    """Like :func:`host_kill_decision` but for ``HOST_SIGSTOP``;
    returns the freeze duration in seconds, or None."""
    if plan is None:
        return None
    decision = plan.decide(TRANSPORT_SITE, shard_id, epoch)
    if decision.kind is FaultKind.HOST_SIGSTOP:
        return decision.param
    return None


class _SlimRequest:
    """The request identity that crosses the wire (no alternatives).

    Quacks enough like a :class:`~repro.serve.admission.ServeRequest`
    for the two places the router hands one back to a shard surface:
    ``confirm_stolen`` and the ``on_resolve`` hook (both only read
    ``seq`` / ``tenant`` / ``shadow``).
    """

    __slots__ = ("seq", "tenant", "shadow")

    def __init__(self, seq: int, tenant: str, shadow: bool = False) -> None:
        self.seq = seq
        self.tenant = tenant
        self.shadow = shadow

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"_SlimRequest(seq={self.seq}, tenant={self.tenant!r})"


# ---------------------------------------------------------------------------
# The child process: ShardHost
# ---------------------------------------------------------------------------


class _ShardHost:
    """The serving loop inside the child process (one per shard)."""

    def __init__(
        self,
        shard_id: int,
        sock_path: str,
        journal_path: str,
        shard_kwargs: dict | None,
        fault_plan=None,
    ) -> None:
        self.shard_id = shard_id
        self.sock_path = sock_path
        kwargs = dict(shard_kwargs or {})
        self.shard = ClusterShard(
            shard_id,
            journal=journal_path,
            journal_admission=True,
            fault_plan=fault_plan,
            **kwargs,
        )
        self.shard.service.on_resolve = self._on_resolve
        self._parent_pid = os.getppid()
        # at-least-once resolve pushes: events stay in the outbox until
        # the client acks them, and every fresh connection replays the
        # whole outbox (the client dedupes by settled request seq)
        self._outbox: "collections.OrderedDict[int, dict]" = collections.OrderedDict()
        self._outbox_cv = threading.Condition()
        self._event_seq = 0
        # idempotency: token -> recorded response (minus the call id),
        # so a resend after a timed-out-but-executed call replays the
        # recorded outcome instead of re-executing
        self._done: "collections.OrderedDict[str, dict]" = collections.OrderedDict()
        self._send_lock = threading.Lock()
        self._conn: socket.socket | None = None
        self._shutdown = False

    # -- resolve pushes ----------------------------------------------------
    def _on_resolve(self, request, result) -> None:
        with self._outbox_cv:
            self._event_seq += 1
            self._outbox[self._event_seq] = {
                "push": "resolve",
                "event": self._event_seq,
                "request": {
                    "seq": request.seq,
                    "tenant": request.tenant,
                    "shadow": bool(getattr(request, "shadow", False)),
                },
                "result": result,
            }
            self._outbox_cv.notify_all()

    def _pusher_loop(self, conn: socket.socket) -> None:
        sent: set[int] = set()
        while True:
            with self._outbox_cv:
                pending = [
                    ev for eid, ev in self._outbox.items() if eid not in sent
                ]
                if not pending:
                    if self._conn is not conn or self._shutdown:
                        return
                    self._outbox_cv.wait(0.05)
                    continue
            for event in pending:
                try:
                    with self._send_lock:
                        send_frame(conn, event)
                except OSError:
                    return  # connection died; the next one replays
                sent.add(event["event"])

    # -- request handling --------------------------------------------------
    def _handle(self, op: str, args: dict) -> Any:
        service = self.shard.service
        if op == "ping":
            return {
                "state": self.shard.state.value,
                "backlog": self.shard.backlog(),
                "slots_free": self.shard.idle_slots(),
                "load": self.shard.load(),
                "incarnation": self.shard.incarnation,
                "pid": os.getpid(),
            }
        if op == "submit":
            ticket = service.submit(
                args["tenant"], args["alternatives"],
                initial=args.get("initial"),
                priority=args.get("priority", 0),
                deadline_at=args.get("deadline_at"),
                timeout=args.get("timeout"),
                cost=args.get("cost", 1.0),
                seq=args.get("seq"),
                spec=args.get("spec"),
            )
            return {"seq": ticket.seq}
        if op == "steal":
            stolen = service.steal_requests(args["max_n"])
            return [{"seq": r.seq, "tenant": r.tenant} for r in stolen]
        if op == "confirm_stolen":
            service.confirm_stolen(
                _SlimRequest(args["seq"], args.get("tenant", ""))
            )
            return True
        if op == "fence":
            self.shard.fence()
            return True
        if op == "crash":
            self.shard.crash()
            self._shutdown = True
            return True
        if op == "stop":
            self.shard.stop(drain=args.get("drain", True))
            self._shutdown = True
            return True
        if op == "journal_read":
            storage = self.shard.journal.storage
            return {"wal": storage.load()}
        if op == "snapshot":
            return self.shard.snapshot()
        raise ClusterError(f"shard host: unknown RPC op {op!r}")

    def _respond(self, conn: socket.socket, call_id, body: dict) -> None:
        with self._send_lock:
            send_frame(conn, {"id": call_id, **body})

    def _serve_conn(self, conn: socket.socket) -> None:
        self._conn = conn
        pusher = threading.Thread(
            target=self._pusher_loop, args=(conn,),
            name=f"shard-host-{self.shard_id}-pusher", daemon=True,
        )
        pusher.start()
        try:
            while not self._shutdown:
                msg = recv_frame(conn)
                if not isinstance(msg, dict):
                    raise WireCorrupt(f"non-dict envelope {type(msg).__name__}")
                if "ack" in msg:  # one-way push acknowledgement
                    with self._outbox_cv:
                        self._outbox.pop(msg["ack"], None)
                    continue
                call_id = msg.get("id")
                token = msg.get("token", "")
                stall_s = msg.get("stall_s")
                if stall_s:  # injected SOCKET_STALL rides the envelope
                    time.sleep(float(stall_s))
                if token and token in self._done:
                    self._respond(conn, call_id, self._done[token])
                    continue
                try:
                    value = self._handle(msg.get("op", ""), msg.get("args", {}))
                    body = {"ok": True, "value": value}
                except tuple(_WIRE_ERRORS.values()) as exc:
                    body = {
                        "ok": False,
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                        "tenant": getattr(exc, "tenant", ""),
                        "retry_after_s": getattr(exc, "retry_after_s", 0.0),
                        "kind": getattr(exc, "kind", None),
                        "seq": getattr(exc, "seq", None),
                    }
                except Exception as exc:  # noqa: BLE001 - report, don't die
                    body = {
                        "ok": False,
                        "error_type": "ClusterError",
                        "message": f"{type(exc).__name__}: {exc}",
                    }
                if token:
                    self._done[token] = body
                    while len(self._done) > 4096:
                        self._done.popitem(last=False)
                self._respond(conn, call_id, body)
        finally:
            self._conn = None
            with self._outbox_cv:
                self._outbox_cv.notify_all()
            try:
                conn.close()
            except OSError:
                pass

    def run(self) -> None:
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            listener.bind(self.sock_path)
            listener.listen(2)
            listener.settimeout(0.5)
            self.shard.start()
            while not self._shutdown:
                if os.getppid() != self._parent_pid:
                    break  # orphaned: the parent died without stopping us
                try:
                    conn, _ = listener.accept()
                except socket.timeout:
                    continue
                try:
                    self._serve_conn(conn)
                except (ConnectionError, WireCorrupt, OSError):
                    continue  # reset: the client reconnects and resends
        finally:
            listener.close()
            try:
                os.unlink(self.sock_path)
            except OSError:
                pass


def shard_host_main(
    shard_id: int,
    sock_path: str,
    journal_path: str,
    shard_kwargs: dict | None = None,
    fault_plan=None,
) -> None:
    """Child-process entry point: serve one shard until stopped/killed."""
    # the child must never run the parent's atexit/teardown machinery on
    # a crash path; any unhandled error just ends this process
    host = _ShardHost(shard_id, sock_path, journal_path, shard_kwargs, fault_plan)
    host.run()


# ---------------------------------------------------------------------------
# The parent side: circuit breaker + client
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Per-shard closed → open → half-open breaker.

    ``threshold`` consecutive transport failures open it; while open,
    :meth:`allow` refuses instantly (no socket touched). After
    ``cooldown_s`` one probe call is let through (half-open): success
    closes the breaker, failure re-opens it for another cooldown.
    """

    def __init__(
        self,
        threshold: int = 5,
        cooldown_s: float = 0.5,
        clock=time.monotonic,
        on_transition=None,
    ) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self.state = "closed"
        self.failures = 0
        self._opened_at = 0.0
        self._probing = False

    def _transition(self, to: str) -> None:
        if self.state != to:
            self.state = to
            if self._on_transition is not None:
                self._on_transition(to)

    def allow(self) -> bool:
        with self._lock:
            if self.state == "closed":
                return True
            if self.state == "open":
                if self._clock() - self._opened_at < self.cooldown_s:
                    return False
                self._transition("half-open")
                self._probing = True
                return True
            # half-open: exactly one in-flight probe
            if self._probing:
                return False
            self._probing = True
            return True

    def record_ok(self) -> None:
        with self._lock:
            self.failures = 0
            self._probing = False
            self._transition("closed")

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self._probing = False
            if self.state == "half-open" or (
                self.state == "closed" and self.failures >= self.threshold
            ):
                self._opened_at = self._clock()
                self._transition("open")


class _RemoteService:
    """The ``shard.service`` facade the router talks to.

    Mirrors the :class:`~repro.serve.service.SpeculationService` subset
    the router uses; ``on_resolve`` is a plain attribute the client's
    reader thread invokes when the host pushes a resolution event.
    """

    def __init__(self, client: "RemoteShardClient") -> None:
        self._client = client
        self.on_resolve = None

    def submit(
        self,
        tenant: str,
        alternatives,
        initial: dict | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
        timeout: float | None = None,
        cost: float = 1.0,
        seq: int | None = None,
        deadline_at: float | None = None,
        spec: Any = None,
    ):
        # CLOCK_MONOTONIC is system-wide on Linux, so an absolute
        # monotonic deadline computed here means the same instant in
        # the shard-host process
        if deadline_at is None and deadline_s is not None:
            deadline_at = time.monotonic() + deadline_s
        value = self._client._call(
            "submit",
            tenant=tenant, alternatives=list(alternatives), initial=initial,
            priority=priority, deadline_at=deadline_at, timeout=timeout,
            cost=cost, seq=seq, spec=spec,
        )
        return value["seq"]

    def steal_requests(self, max_n: int) -> list:
        stolen = self._client._call("steal", max_n=max_n)
        return [_SlimRequest(d["seq"], d["tenant"]) for d in stolen]

    def confirm_stolen(self, request) -> None:
        self._client._call(
            "confirm_stolen", seq=request.seq, tenant=request.tenant
        )

    def stop(self, timeout: float | None = None, drain: bool = True) -> None:
        self._client.stop(drain=drain)

    def crash(self) -> None:
        self._client.crash()


class _Pending:
    __slots__ = ("event", "response", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.response: dict | None = None
        self.error: BaseException | None = None


class RemoteShardClient:
    """A cluster shard living in its own OS process, by proxy.

    Duck-types the :class:`~repro.cluster.shard.ClusterShard` surface
    the router uses, so ``ClusterRouter([ClusterShard(0),
    RemoteShardClient(1)])`` mixes transports in one ring.

    Parameters
    ----------
    shard_id:
        Ring identity; also every transport fault key.
    workdir:
        Directory for the shard's journal file and socket (default: a
        fresh ``mw-shard-<id>-*`` temp dir). The journal file —
        ``shard-<id>.wal`` plus its ``.quarantine`` sidecar — is the
        shard's durable truth and survives any kill.
    slots / workers / backend / queue_depth:
        Shard sizing, forwarded to the child's ``ClusterShard``.
    call_timeout_s / retry_policy:
        Per-attempt response timeout and the resend policy (bounded
        exponential backoff **with a total deadline** — see
        :attr:`~repro.distrib.retry.RetryPolicy.deadline_s`).
    breaker_threshold / breaker_cooldown_s:
        Circuit-breaker tuning (consecutive transport failures → open).
    fault_plan:
        Client-side transport fault injection (TORN_FRAME /
        SOCKET_STALL / CONNECT_REFUSED per attempt).
    host_fault_plan:
        Optional plan forwarded into the child process (journal/serve
        sites fire inside the host — the chaos soak's lever).
    """

    def __init__(
        self,
        shard_id: int,
        workdir: str | None = None,
        slots: int = 2,
        workers: int = 4,
        backend: str = "thread",
        queue_depth: int | None = None,
        call_timeout_s: float = 1.0,
        connect_timeout_s: float = 10.0,
        heartbeat_timeout_s: float = 0.25,
        retry_policy: RetryPolicy | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 0.5,
        stats_ttl_s: float = 0.02,
        fault_plan=None,
        host_fault_plan=None,
        obs=None,
    ) -> None:
        if shard_id < 0:
            raise ClusterError(f"shard_id must be non-negative, got {shard_id}")
        self.shard_id = shard_id
        self.workdir = workdir or tempfile.mkdtemp(prefix=f"mw-shard-{shard_id}-")
        os.makedirs(self.workdir, exist_ok=True)
        self.journal_path = os.path.join(self.workdir, f"shard-{shard_id}.wal")
        self.sock_path = os.path.join(self.workdir, f"shard-{shard_id}.sock")
        self._shard_kwargs = {
            "slots": slots, "workers": workers, "backend": backend,
            "queue_depth": queue_depth,
        }
        self.call_timeout_s = call_timeout_s
        self.connect_timeout_s = connect_timeout_s
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy(
            max_retries=4, base_backoff_s=0.005, multiplier=2.0,
            max_backoff_s=0.1, deadline_s=5.0,
        )
        #: heartbeats probe, they don't persist: one attempt, short wait
        self._hb_policy = RetryPolicy(max_retries=0, deadline_s=heartbeat_timeout_s)
        self.fault_plan = fault_plan
        self.host_fault_plan = host_fault_plan
        self.obs = obs
        self.state = ShardState.UP
        self.incarnation = 0
        self.lease = None  # set by the router, like a local shard
        self.service = _RemoteService(self)
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown_s=breaker_cooldown_s,
            on_transition=self._note_breaker,
        )
        self.stats_ttl_s = stats_ttl_s
        self._stats: dict = {}
        self._stats_at = -1.0
        self._proc: multiprocessing.process.BaseProcess | None = None
        self._sock: socket.socket | None = None
        self._conn_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._pending: dict[int, _Pending] = {}
        # push events are at-least-once (the host replays unacked ones
        # on every reconnect); dedup by event id so on_resolve fires
        # once per resolution, matching local-shard semantics
        self._seen_events: "collections.OrderedDict[int, None]" = (
            collections.OrderedDict()
        )
        self._pending_lock = threading.Lock()
        self._call_seq = 0
        self._journal: CommitJournal | None = None
        self._started = False
        self._stopped_in = False  # SIGSTOP bookkeeping for sigcont()
        self._rpc_c = self._retry_c = self._breaker_c = self._lat_h = None
        self._breaker_g = None
        if obs is not None:
            reg = obs.registry
            self._rpc_c = reg.counter(
                "mw_transport_rpcs_total", "Shard RPCs by op and outcome",
                labelnames=("shard", "op", "status"),
            )
            self._retry_c = reg.counter(
                "mw_transport_retries_total", "Shard RPC resends",
                labelnames=("shard", "op"),
            )
            self._breaker_c = reg.counter(
                "mw_transport_breaker_transitions_total",
                "Circuit-breaker state transitions",
                labelnames=("shard", "to"),
            )
            self._breaker_g = reg.gauge(
                "mw_transport_breaker_open",
                "1 while a shard's circuit breaker is open",
                labelnames=("shard",),
            )
            self._lat_h = reg.histogram(
                "mw_transport_rpc_latency_seconds",
                "Successful RPC round-trip latency",
                buckets=_RPC_LATENCY_BUCKETS,
            )
            if fault_plan is not None:
                obs.watch_fault_plan(fault_plan)

    # -- obs helpers -------------------------------------------------------
    def _note_breaker(self, to: str) -> None:
        if self._breaker_c is not None:
            self._breaker_c.inc(shard=str(self.shard_id), to=to)
        if self._breaker_g is not None:
            self._breaker_g.set(
                1.0 if to == "open" else 0.0, shard=str(self.shard_id)
            )

    def _count_rpc(self, op: str, status: str) -> None:
        if self._rpc_c is not None:
            self._rpc_c.inc(shard=str(self.shard_id), op=op, status=status)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "RemoteShardClient":
        if self._started and self.process_alive():
            return self
        if self._started:  # restart after a death = a new incarnation
            self.incarnation += 1
        try:
            os.unlink(self.sock_path)
        except OSError:
            pass
        ctx = multiprocessing.get_context("fork")
        self._proc = ctx.Process(
            target=shard_host_main,
            args=(
                self.shard_id, self.sock_path, self.journal_path,
                self._shard_kwargs, self.host_fault_plan,
            ),
            name=f"shard-host-{self.shard_id}",
            daemon=True,
        )
        self._proc.start()
        deadline = time.monotonic() + self.connect_timeout_s
        last: Exception | None = None
        while time.monotonic() < deadline:
            try:
                self._ensure_conn()
                self._started = True
                self.state = ShardState.UP
                self._journal = None
                return self
            except (ConnectionError, FileNotFoundError, OSError) as exc:
                last = exc
                if not self.process_alive():
                    break
                time.sleep(0.01)
        self.crash()
        raise ClusterError(
            f"shard host {self.shard_id} failed to come up: {last}"
        )

    def process_alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> int | None:
        return None if self._proc is None else self._proc.pid

    @property
    def up(self) -> bool:
        return self.state in (ShardState.UP, ShardState.SUSPECT)

    @property
    def alive(self) -> bool:
        """Whether the host *process* is alive (FENCED still counts)."""
        return self.state is not ShardState.DEAD and self.process_alive()

    def stop(self, drain: bool = True) -> None:
        """Graceful decommission: RPC the host to drain, then reap it."""
        if self.state in (ShardState.DEAD, ShardState.FENCED):
            self._terminate()
            return
        self.state = ShardState.DRAINING
        try:
            self._call("stop", drain=drain, timeout=max(self.call_timeout_s, 30.0))
        except (TransportError, ClusterError):
            pass  # unreachable: the reap below is the stop
        if self._proc is not None:
            self._proc.join(5.0)
        self._terminate()
        self.state = ShardState.DEAD

    def crash(self) -> None:
        """SIGKILL the host: kernel-grade death. Only the journal file
        (plus its ``.quarantine`` sidecar) survives."""
        if self.state is not ShardState.DEAD:
            self.state = ShardState.DEAD
        self._terminate()

    def fence(self) -> None:
        """Excommunicate the host (false-positive death declaration).

        Best-effort RPC tells a live host to self-fence (it stops
        committing); the SIGKILL after it guarantees the journal file
        is final either way — the takeover that called this is about to
        replay it.
        """
        if self.state in (ShardState.DEAD, ShardState.FENCED):
            return
        self.state = ShardState.FENCED
        try:
            self._call("fence", timeout=self.call_timeout_s, policy=self._hb_policy)
        except (TransportError, ClusterError):
            pass
        self._terminate()

    def sigstop(self) -> None:
        """Freeze the host process (transport-level brownout injection)."""
        if self.process_alive():
            os.kill(self._proc.pid, signal.SIGSTOP)
            self._stopped_in = True

    def sigcont(self) -> None:
        """Thaw a :meth:`sigstop`-frozen host."""
        if self._stopped_in and self._proc is not None:
            try:
                os.kill(self._proc.pid, signal.SIGCONT)
            except (OSError, ProcessLookupError):
                pass
            self._stopped_in = False

    def sigkill(self) -> None:
        """``kill -9`` the host without updating router-visible state —
        the injection entry point: the *detector* must discover this."""
        if self.process_alive():
            self.sigcont()
            os.kill(self._proc.pid, signal.SIGKILL)
            self._proc.join(5.0)

    def _terminate(self) -> None:
        self.sigcont()
        if self._proc is not None and self._proc.is_alive():
            self._proc.kill()
            self._proc.join(5.0)
        self._drop_conn(ConnectionResetError("shard host terminated"))

    # -- the shard surface -------------------------------------------------
    def _cached_stats(self) -> dict:
        now = time.monotonic()
        if now - self._stats_at <= self.stats_ttl_s:
            return self._stats
        try:
            stats = self._call("ping", policy=self._hb_policy,
                               timeout=self.heartbeat_timeout_s)
        except (TransportError, ClusterError):
            # unreachable: report it saturated so no balancer picks it
            stats = {"backlog": 0, "slots_free": 0, "load": 1.0}
        self._stats = stats
        self._stats_at = now
        return stats

    def backlog(self) -> int:
        return int(self._cached_stats().get("backlog", 0))

    def idle_slots(self) -> int:
        return int(self._cached_stats().get("slots_free", 0))

    def load(self) -> float:
        return float(self._cached_stats().get("load", 1.0))

    def snapshot(self) -> dict:
        return {
            "shard": self.shard_id,
            "state": self.state.value,
            "incarnation": self.incarnation,
            "backlog": self.backlog(),
            "slots_free": self.idle_slots(),
            "remote": True,
            "pid": self.pid,
            "breaker": self.breaker.state,
        }

    def answers_heartbeat(self) -> bool:
        """One failure-detector beat: a real ping over the socket.

        A fenced shard never answers (it is excommunicated even if
        alive); a dead process never answers; otherwise the answer is
        one short-timeout RPC — whose failure feeds the breaker, so a
        silent host opens it and subsequent beats fail fast until the
        half-open probe finds the host again.
        """
        if self.state in (ShardState.DEAD, ShardState.FENCED):
            return False
        if not self.process_alive():
            return False
        try:
            stats = self._call(
                "ping", policy=self._hb_policy, timeout=self.heartbeat_timeout_s
            )
        except (TransportError, ClusterError):
            return False
        self._stats = stats
        self._stats_at = time.monotonic()
        return True

    @property
    def journal(self) -> CommitJournal:
        """The shard's journal, from wherever it currently is.

        - Host dead: reopen the **file** (torn tail repaired, sidecar
          quarantines recorded) — cached, since the file is final.
        - Host alive: a read-only snapshot — preferably via the
          ``journal_read`` RPC (real remote-host semantics), falling
          back to the fsync-durable file bytes if the RPC fails. Never
          opened *directly* over the live file: open() repairs torn
          tails by truncating, which must not race the host's appends.
        """
        if self._journal is not None:
            return self._journal
        if not self.process_alive():
            journal = CommitJournal(storage=FileJournalStorage(self.journal_path))
            self._journal = journal
            return journal
        try:
            blob = self._call("journal_read")["wal"]
        except (TransportError, ClusterError):
            try:
                with open(self.journal_path, "rb") as fh:
                    blob = fh.read()
            except FileNotFoundError:
                blob = b""
        return CommitJournal(storage=MemoryJournalStorage(blob))

    # -- connection management ---------------------------------------------
    def _ensure_conn(self) -> socket.socket:
        with self._conn_lock:
            if self._sock is not None:
                return self._sock
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.call_timeout_s)
            try:
                sock.connect(self.sock_path)
            except OSError:
                sock.close()
                raise
            sock.settimeout(None)
            self._sock = sock
            reader = threading.Thread(
                target=self._reader_loop, args=(sock,),
                name=f"shard-client-{self.shard_id}-reader", daemon=True,
            )
            reader.start()
            return sock

    def _drop_conn(self, error: BaseException) -> None:
        with self._conn_lock:
            sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for p in pending.values():
            p.error = error
            p.event.set()

    def _reader_loop(self, sock: socket.socket) -> None:
        while True:
            if self._sock is not sock:
                return
            try:
                msg = recv_frame(sock)
            except (ConnectionError, WireCorrupt, OSError) as exc:
                if self._sock is sock:
                    self._drop_conn(
                        exc if isinstance(exc, ConnectionError)
                        else ConnectionResetError(str(exc))
                    )
                return
            if not isinstance(msg, dict):
                continue
            if msg.get("push") == "resolve":
                self._dispatch_push(sock, msg)
                continue
            call_id = msg.get("id")
            with self._pending_lock:
                p = self._pending.pop(call_id, None)
            if p is not None:  # unknown id = a reply that out-lived its call
                p.response = msg
                p.event.set()

    def _dispatch_push(self, sock: socket.socket, msg: dict) -> None:
        eid = msg.get("event")
        duplicate = eid in self._seen_events
        if not duplicate and eid is not None:
            self._seen_events[eid] = None
            while len(self._seen_events) > 8192:
                self._seen_events.popitem(last=False)
        cb = self.service.on_resolve
        if cb is not None and not duplicate:
            req = msg.get("request", {})
            try:
                cb(
                    _SlimRequest(
                        req.get("seq", -1), req.get("tenant", ""),
                        req.get("shadow", False),
                    ),
                    msg.get("result"),
                )
            except Exception:  # noqa: BLE001 - resolve hooks never kill the reader
                pass
        try:
            with self._send_lock:
                send_frame(sock, {"ack": msg.get("event")})
        except OSError:
            pass  # host will replay; the router dedupes by settled seq

    # -- the RPC core ------------------------------------------------------
    def _call(
        self,
        op: str,
        timeout: float | None = None,
        policy: RetryPolicy | None = None,
        **args: Any,
    ) -> Any:
        if self.state is ShardState.DEAD:
            raise ShardUnreachable(f"shard {self.shard_id} is dead")
        if not self.breaker.allow():
            self._count_rpc(op, "breaker-open")
            raise ShardUnreachable(
                f"shard {self.shard_id}: circuit breaker open "
                f"({self.breaker.failures} consecutive transport failures)"
            )
        policy = policy if policy is not None else self.retry_policy
        call_timeout = timeout if timeout is not None else self.call_timeout_s
        self._call_seq += 1
        call_no = self._call_seq
        token = f"shard{self.shard_id}:{op}:{call_no}"
        plan = self.fault_plan
        span_id = -1
        if self.obs is not None and op not in ("ping",):
            span_id = self.obs.tracer.begin(
                f"rpc:{op}", cat="transport", track="transport",
                shard=self.shard_id, op=op,
            )
        started = time.monotonic()

        def attempt(i: int) -> dict:
            decision = (
                plan.decide(TRANSPORT_SITE, self.shard_id, call_no, i)
                if plan is not None else None
            )
            if decision is not None and decision.kind is FaultKind.CONNECT_REFUSED:
                plan.note_injection(
                    TRANSPORT_SITE, decision.kind,
                    detail=f"shard {self.shard_id} {op} attempt {i}",
                    track="transport", shard=self.shard_id,
                )
                raise ConnectionRefusedError(
                    f"injected connect-refused (shard {self.shard_id})"
                )
            try:
                sock = self._ensure_conn()
                envelope: dict[str, Any] = {
                    "id": (call_no << 8) | i, "op": op,
                    "token": token, "args": args,
                }
                if decision is not None and decision.kind is FaultKind.SOCKET_STALL:
                    plan.note_injection(
                        TRANSPORT_SITE, decision.kind,
                        detail=f"shard {self.shard_id} {op} stalls "
                        f"{decision.param:.3f}s",
                        track="transport", shard=self.shard_id,
                    )
                    envelope["stall_s"] = decision.param
                frame = pack_frame(envelope)
                if decision is not None and decision.kind is FaultKind.TORN_FRAME:
                    plan.note_injection(
                        TRANSPORT_SITE, decision.kind,
                        detail=f"shard {self.shard_id} {op} frame corrupted",
                        track="transport", shard=self.shard_id,
                    )
                    frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
                p = _Pending()
                with self._pending_lock:
                    self._pending[envelope["id"]] = p
                try:
                    with self._send_lock:
                        sock.sendall(frame)
                    if not p.event.wait(call_timeout):
                        raise TransportTimeout(
                            f"shard {self.shard_id} {op}: no response in "
                            f"{call_timeout:.3f}s (attempt {i})"
                        )
                finally:
                    with self._pending_lock:
                        self._pending.pop(envelope["id"], None)
                if p.error is not None:
                    raise p.error
                return p.response or {}
            except _RETRYABLE as exc:
                self.breaker.record_failure()
                if isinstance(exc, (ConnectionError, WireCorrupt)):
                    self._drop_conn(ConnectionResetError(str(exc)))
                raise

        try:
            response, stats = call_with_retries(
                attempt, policy=policy, token=token, retry_on=_RETRYABLE,
            )
        except RetriesExhausted as exc:
            self._count_rpc(op, "unreachable")
            if span_id >= 0:
                self.obs.tracer.end(span_id, disposition="aborted",
                                    attempts=exc.attempts)
            raise ShardUnreachable(
                f"shard {self.shard_id} {op}: {exc}"
            ) from exc
        self.breaker.record_ok()
        if stats.retries and self._retry_c is not None:
            self._retry_c.inc(
                stats.retries, shard=str(self.shard_id), op=op
            )
        if self._lat_h is not None:
            self._lat_h.observe(time.monotonic() - started)
        if not response.get("ok", False):
            self._count_rpc(op, "error")
            if span_id >= 0:
                self.obs.tracer.end(span_id, disposition="aborted",
                                    error=response.get("error_type", ""))
            raise self._rebuild_error(response)
        self._count_rpc(op, "ok")
        if span_id >= 0:
            self.obs.tracer.end(span_id, disposition="committed",
                                attempts=stats.attempts)
        return response.get("value")

    @staticmethod
    def _rebuild_error(response: dict) -> Exception:
        """Re-raise the host's service-level error as the same type."""
        name = response.get("error_type", "ClusterError")
        message = response.get("message", "remote shard error")
        if name == "AdmissionRejected":
            return AdmissionRejected(
                message, tenant=response.get("tenant", ""),
                retry_after_s=response.get("retry_after_s", 0.0),
            )
        if name == "JournalCrash":
            return JournalCrash(
                message, kind=response.get("kind"), seq=response.get("seq"),
            )
        return _WIRE_ERRORS.get(name, ClusterError)(message)
