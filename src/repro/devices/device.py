"""Device base classes: the sink/source split.

The distinction is behavioural, not nominal: the kernel asks
``device.is_source`` before letting a predicated process touch it, and
routes speculative sink writes through per-world staging.
"""

from __future__ import annotations

import abc
from typing import Any


class Device(abc.ABC):
    """Anything a simulated process can read from or write to by name."""

    def __init__(self, name: str) -> None:
        self.name = name

    @property
    @abc.abstractmethod
    def is_source(self) -> bool:
        """True when operations on this device are not retryable."""

    @abc.abstractmethod
    def read(self, nbytes: int, **kwargs: Any) -> bytes:
        """Consume up to ``nbytes`` from the device."""

    @abc.abstractmethod
    def write(self, data: bytes, **kwargs: Any) -> int:
        """Emit ``data``; returns bytes written."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "source" if self.is_source else "sink"
        return f"{type(self).__name__}({self.name!r}, {kind})"


class SourceDevice(Device):
    """A device whose operations are observable and non-retryable."""

    @property
    def is_source(self) -> bool:
        return True


class SinkDevice(Device):
    """A device whose operations are idempotent / hideable.

    Subclasses additionally support per-world staging: speculative writes
    go to a staging area keyed by world id, made permanent by
    :meth:`commit_world` or discarded by :meth:`discard_world` — the
    transaction-style atomicity of paper section 2.1.
    """

    @property
    def is_source(self) -> bool:
        return False

    @abc.abstractmethod
    def stage_write(self, world: int, data: bytes, **kwargs: Any) -> int:
        """Buffer a speculative write on behalf of ``world``."""

    @abc.abstractmethod
    def commit_world(self, world: int) -> None:
        """Make ``world``'s staged writes permanent, in order."""

    @abc.abstractmethod
    def discard_world(self, world: int) -> None:
        """Throw away ``world``'s staged writes (elimination)."""

    @abc.abstractmethod
    def transfer_world(self, src: int, dst: int) -> int:
        """Re-key ``src``'s staged writes to ``dst`` (nested commit).

        When an inner block's winner commits into a parent that is itself
        still speculative, the journal moves up a level instead of
        flushing. Returns the number of writes moved.
        """
