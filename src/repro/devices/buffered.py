"""Forcing idempotency onto sources by buffering (paper section 5).

"When managing I/O for replicated computations, only one read operation
can be performed, and its results buffered for subsequent readers of the
same data. Thus, idempotency of some source state can be forced through
buffering, as was illustrated by Jefferson's use of a specialized
buffering process called stdout."

:class:`BufferedSource` wraps a source device; the first reader at each
stream position triggers a real device read, and every later reader at
the same position replays the buffered bytes. Writes are deduplicated per
position the same way, so N replicas writing the same output produce it
once.
"""

from __future__ import annotations

from typing import Any

from repro.devices.device import Device, SourceDevice


class BufferedSource(Device):
    """An idempotent façade over a non-idempotent source.

    Each client tracks its own stream position (``client`` id). Reads at
    positions already consumed come from the buffer; reads past the
    buffered frontier pull fresh data from the wrapped source exactly
    once. Symmetrically, a write is forwarded only by the first client to
    reach that output position.
    """

    def __init__(self, inner: SourceDevice, name: str | None = None) -> None:
        super().__init__(name or f"buffered-{inner.name}")
        if not inner.is_source:
            raise ValueError("BufferedSource wraps source devices only")
        self.inner = inner
        self._read_buffer = bytearray()
        self._read_pos: dict[Any, int] = {}
        self._write_frontier = 0
        self._write_pos: dict[Any, int] = {}
        self.real_reads = 0
        self.replayed_reads = 0

    @property
    def is_source(self) -> bool:
        # The façade itself behaves idempotently per client, which is the
        # whole point: the kernel may expose it to replicated readers.
        return False

    # -- reads -------------------------------------------------------------
    def read(self, nbytes: int, client: Any = "default", **kwargs: Any) -> bytes:
        pos = self._read_pos.get(client, 0)
        needed = pos + nbytes - len(self._read_buffer)
        if needed > 0:
            fresh = self.inner.read(needed)
            self.real_reads += 1
            self._read_buffer.extend(fresh)
        else:
            self.replayed_reads += 1
        chunk = bytes(self._read_buffer[pos : pos + nbytes])
        self._read_pos[client] = pos + len(chunk)
        return chunk

    # -- writes -----------------------------------------------------------------
    def write(self, data: bytes, client: Any = "default", **kwargs: Any) -> int:
        pos = self._write_pos.get(client, 0)
        end = pos + len(data)
        if end > self._write_frontier:
            fresh = data[self._write_frontier - pos :]
            self.inner.write(fresh)
            self._write_frontier = end
        self._write_pos[client] = end
        return len(data)

    def forget_client(self, client: Any) -> None:
        """Drop a replica's positions (it was eliminated)."""
        self._read_pos.pop(client, None)
        self._write_pos.pop(client, None)
