"""The teletype: the paper's concrete example of a source device.

Writes are immediately visible on :attr:`output` (observable side effect);
reads consume from a scripted input stream and cannot be retried. The
kernel refuses (or blocks) predicated processes that try to touch it.

Reading *past* the scripted input is an error, not an empty string: a
silent ``b""`` let a predicated caller mistake "the script ran out" for
real terminal data, and the two are observably different once worlds
replay. :meth:`read` raises :class:`~repro.errors.InputExhausted`
instead; the kernel rethrows it inside the reading program (which may
catch it, treat it as EOF, and carry on). Construct with
``exhausted="empty"`` to restore the legacy behaviour for scripts that
genuinely want EOF-as-empty.
"""

from __future__ import annotations

from typing import Any

from repro.devices.device import SourceDevice
from repro.errors import InputExhausted


class Teletype(SourceDevice):
    """A scripted-input, visible-output terminal."""

    def __init__(
        self,
        name: str = "tty",
        input_script: bytes = b"",
        exhausted: str = "raise",
    ) -> None:
        super().__init__(name)
        if exhausted not in ("raise", "empty"):
            raise ValueError(f"unknown exhausted policy {exhausted!r}")
        self._input = bytearray(input_script)
        self._read_pos = 0
        self.exhausted = exhausted
        self.output = bytearray()
        self.reads = 0
        self.writes = 0

    def feed(self, data: bytes) -> None:
        """Append more scripted input (as if a user typed it)."""
        self._input.extend(data)

    def read(self, nbytes: int, **kwargs: Any) -> bytes:
        """Consume up to ``nbytes`` of input; destructive, non-retryable.

        A partial tail is still returned; a read with *nothing* left
        raises :class:`~repro.errors.InputExhausted` (unless constructed
        with ``exhausted="empty"``).
        """
        self.reads += 1
        chunk = bytes(self._input[self._read_pos : self._read_pos + nbytes])
        if not chunk and nbytes > 0 and self.exhausted == "raise":
            raise InputExhausted(
                f"teletype {self.name!r} read past its scripted input "
                f"({self._read_pos} bytes consumed)"
            )
        self._read_pos += len(chunk)
        return chunk

    def write(self, data: bytes, **kwargs: Any) -> int:
        """Print ``data`` — an irreversibly observable effect."""
        self.writes += 1
        self.output.extend(data)
        return len(data)

    @property
    def text(self) -> str:
        """Everything printed so far, decoded for assertions."""
        return self.output.decode(errors="replace")

    @property
    def input_remaining(self) -> int:
        return len(self._input) - self._read_pos
