"""The teletype: the paper's concrete example of a source device.

Writes are immediately visible on :attr:`output` (observable side effect);
reads consume from a scripted input stream and cannot be retried. The
kernel refuses (or blocks) predicated processes that try to touch it.
"""

from __future__ import annotations

from typing import Any

from repro.devices.device import SourceDevice


class Teletype(SourceDevice):
    """A scripted-input, visible-output terminal."""

    def __init__(self, name: str = "tty", input_script: bytes = b"") -> None:
        super().__init__(name)
        self._input = bytearray(input_script)
        self._read_pos = 0
        self.output = bytearray()
        self.reads = 0
        self.writes = 0

    def feed(self, data: bytes) -> None:
        """Append more scripted input (as if a user typed it)."""
        self._input.extend(data)

    def read(self, nbytes: int, **kwargs: Any) -> bytes:
        """Consume up to ``nbytes`` of input; destructive, non-retryable."""
        self.reads += 1
        chunk = bytes(self._input[self._read_pos : self._read_pos + nbytes])
        self._read_pos += len(chunk)
        return chunk

    def write(self, data: bytes, **kwargs: Any) -> int:
        """Print ``data`` — an irreversibly observable effect."""
        self.writes += 1
        self.output.extend(data)
        return len(data)

    @property
    def text(self) -> str:
        """Everything printed so far, decoded for assertions."""
        return self.output.decode(errors="replace")

    @property
    def input_remaining(self) -> int:
        return len(self._input) - self._read_pos
