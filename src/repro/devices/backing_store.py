"""Backing store: the paper's concrete example of a sink device.

A log-structured byte store with per-world staging. Speculative worlds
write into a private staging journal; when a world's predicates resolve
true its journal is applied atomically (in write order), and when the
world is eliminated the journal vanishes without a trace — the
transaction behaviour of paper section 2.1: "either none or all of the
transaction's component actions occur, and intermediate states are not
observable outside the transaction".

Reads by a staging world are satisfied from its own journal first, so a
transaction "can read what was written" (internal consistency).
"""

from __future__ import annotations

from typing import Any

from repro.devices.device import SinkDevice


class BackingStoreDevice(SinkDevice):
    """An addressable byte store with world-staged writes."""

    def __init__(self, name: str = "disk", size: int = 1 << 16) -> None:
        super().__init__(name)
        self._data = bytearray(size)
        self._staged: dict[int, list[tuple[int, bytes]]] = {}
        self.committed_writes = 0
        self.discarded_writes = 0
        self.double_commits = 0
        self._committed_worlds: set[int] = set()

    @property
    def size(self) -> int:
        return len(self._data)

    # -- direct (non-speculative) access -----------------------------------
    def read(self, nbytes: int, offset: int = 0, world: int | None = None, **kwargs: Any) -> bytes:
        """Read ``nbytes`` at ``offset``; a staging world sees its own writes."""
        base = bytearray(self._data[offset : offset + nbytes])
        if world is not None:
            for w_offset, w_data in self._staged.get(world, ()):  # replay journal
                lo = max(w_offset, offset)
                hi = min(w_offset + len(w_data), offset + nbytes)
                if lo < hi:
                    base[lo - offset : hi - offset] = w_data[lo - w_offset : hi - w_offset]
        return bytes(base)

    def write(self, data: bytes, offset: int = 0, **kwargs: Any) -> int:
        """Committed (non-speculative) write."""
        self._check_range(offset, len(data))
        self._data[offset : offset + len(data)] = data
        self.committed_writes += 1
        return len(data)

    # -- speculative staging --------------------------------------------------
    def stage_write(self, world: int, data: bytes, offset: int = 0, **kwargs: Any) -> int:
        """Journal a write on behalf of a speculative world."""
        self._check_range(offset, len(data))
        self._staged.setdefault(world, []).append((offset, bytes(data)))
        return len(data)

    def commit_world(self, world: int) -> None:
        """Apply the world's journal in order, atomically. Idempotent per wid.

        The kernel reaches this from two paths (sync resolution and
        unpredication); a repeat call finds the journal already drained
        and is a counted no-op, so nothing is ever applied twice.
        """
        staged = self._staged.pop(world, None)
        if staged is None:
            if world in self._committed_worlds:
                self.double_commits += 1
            self._committed_worlds.add(world)
            return
        for offset, data in staged:  # FIFO order
            self._data[offset : offset + len(data)] = data
            self.committed_writes += 1
        self._committed_worlds.add(world)

    def discard_world(self, world: int) -> None:
        """Eliminate the world's journal (no observable effect remains)."""
        self.discarded_writes += len(self._staged.pop(world, ()))

    def transfer_world(self, src: int, dst: int) -> int:
        """Move ``src``'s journal onto ``dst``'s, preserving write order."""
        moved = self._staged.pop(src, [])
        if moved:
            self._staged.setdefault(dst, []).extend(moved)
        return len(moved)

    def staged_worlds(self) -> list[int]:
        return sorted(self._staged)

    def pending_writes(self, world: int) -> int:
        return len(self._staged.get(world, ()))

    def _check_range(self, offset: int, length: int) -> None:
        if offset < 0 or offset + length > len(self._data):
            raise ValueError(
                f"write [{offset}:{offset + length}] outside store of {len(self._data)} bytes"
            )
