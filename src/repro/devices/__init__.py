"""Sink and source devices (paper section 2.1).

System state divides on idempotence: operations on **sink** devices can be
retried without observable effects (a page of backing store); operations on
**sources** cannot (a teletype). Speculative worlds may update sinks —
their effects are staged per world and flushed at commit — but a process
with unresolved predicates "cannot interface with sources" (section 2.4.2).

- :class:`~repro.devices.device.Device` /
  :class:`~repro.devices.device.SinkDevice` /
  :class:`~repro.devices.device.SourceDevice` — the base model.
- :class:`~repro.devices.teletype.Teletype` — the canonical source.
- :class:`~repro.devices.backing_store.BackingStoreDevice` — the
  canonical sink, with per-world staging and atomic flush.
- :class:`~repro.devices.buffered.BufferedSource` — Jefferson-style
  buffering that forces idempotency onto a source so replicated readers
  all see the same data (paper section 5).
"""

from repro.devices.device import Device, SinkDevice, SourceDevice
from repro.devices.teletype import Teletype
from repro.devices.backing_store import BackingStoreDevice
from repro.devices.buffered import BufferedSource

__all__ = [
    "Device",
    "SinkDevice",
    "SourceDevice",
    "Teletype",
    "BackingStoreDevice",
    "BufferedSource",
]
