"""Multiple Worlds on asyncio tasks: massive-concurrency speculation.

The paper's response-time win ``τ(C_best) + τ(overhead)`` is largest
when per-world cost is dominated by *waiting* — network probes, storage
reads, LLM-ish tool calls. The OS-style backends top out at tens of
concurrent worlds (a process or thread each); here a world is an asyncio
task, so one process holds tens of thousands of concurrent worlds and
spawn cost is microseconds.

The contract is exactly :func:`repro.core.worlds.run_alternatives`'s:
each alternative runs as a task against a deep copy of the workspace,
the first whose guard accepts commits, and the slower siblings are
eliminated via :meth:`asyncio.Task.cancel`. Where the fork backend's
elimination is SIGKILL — involuntary, instant, unskippable — task
cancellation is a *delivered exception*: it lands at the loser's next
``await``, and a misbehaved coroutine can catch and ignore it. The
:class:`~repro.core.policy.EliminationPolicy` maps accordingly:

- ``ASYNCHRONOUS`` (default, the paper's semantics) — cancel and resume
  the parent immediately; losers unwind at their next suspension point
  ("at some unspecified later time").
- ``SYNCHRONOUS`` — cancel, then await the losers' unwinding (bounded
  by a reaping grace), so no loser is still executing when the block
  returns; survivors past the grace are counted ``uncollected``.

Alternatives may be plain callables of the workspace dict (they run
inline on the loop — fine when brief) or ``async def`` coroutine
functions (the backend awaits them; this is where the concurrency
scales). A callable returning an awaitable is awaited too, so
``lambda ws: asyncio.sleep(...)`` works.

Two entry points: :func:`run_alternatives_async` is the synchronous
registry surface (it owns a private event loop via ``asyncio.run``);
:func:`alt_block_async` is the coroutine-native form for callers that
already run a loop and want speculative blocks *inside* it.

Deterministic fault injection adds an ``asyncio`` site on top of the
``child``/``spawn`` sites the other backends share: SLOW_TASK delays the
task before its alternative runs, CANCEL_IGNORED makes the loser swallow
its first cancellation and linger (elimination must still converge), and
LOOP_STALL blocks the loop synchronously — the stall every sibling
world feels, which no per-process backend can express.
"""

from __future__ import annotations

import asyncio
import copy
import inspect
import time
from typing import Any, Sequence

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative
from repro.core.backend import BlockRun
from repro.core.outcome import BlockOutcome
from repro.core.policy import EliminationPolicy
from repro.errors import WorldsError
from repro.faults.plan import ASYNCIO_SITE, FaultDecision, FaultKind

#: Bounded patience for synchronous elimination: how long the parent
#: waits for cancelled losers to unwind before counting them uncollected
#: (mirrors the fork backend's verified-reap timeout).
_SYNC_ELIM_GRACE_S = 2.0


async def _call_alternative(alt: Alternative, workspace: dict) -> Any:
    """Run one alternative's body, sync or async, and return its value."""
    if inspect.iscoroutinefunction(alt.fn):
        return await alt.fn(workspace)
    value = alt.fn(workspace)
    if inspect.isawaitable(value):
        return await value
    return value


async def _world(
    index: int,
    alt: Alternative,
    workspace: dict,
    reports: "asyncio.Queue",
    fault: FaultDecision | None,
    aio_fault: FaultDecision | None,
) -> None:
    """One speculative world: guard → body → guard → report.

    Reports ``(index, status, payload, workspace, t0)`` exactly once on
    success/failure; elimination arrives as :class:`asyncio.CancelledError`
    and propagates (the parent labels cancelled losers itself).
    """
    if alt.start_delay > 0:
        await asyncio.sleep(alt.start_delay)
    t0 = time.perf_counter()
    ignore_cancel_s = 0.0
    try:
        if aio_fault is not None and aio_fault.fires:
            if aio_fault.kind is FaultKind.SLOW_TASK:
                await asyncio.sleep(aio_fault.param)
            elif aio_fault.kind is FaultKind.CANCEL_IGNORED:
                ignore_cancel_s = aio_fault.param
            elif aio_fault.kind is FaultKind.LOOP_STALL:
                # synchronous sleep: blocks the event loop itself, the
                # stall every sibling feels
                time.sleep(aio_fault.param)
        if fault is not None and fault.fires:
            if fault.kind is FaultKind.HANG:
                await asyncio.sleep(fault.param)
                await reports.put((index, "fail", "injected hang elapsed", None, t0))
                return
            if fault.kind is FaultKind.SLOW_START:
                await asyncio.sleep(fault.param)
            elif fault.kind is FaultKind.GUARD_EXCEPTION:
                await reports.put(
                    (index, "fail",
                     f"guard {alt.guard.name!r} raised (injected exception)",
                     None, t0)
                )
                return
            else:
                # CRASH / TRUNCATE / CORRUPT: in-process, all mean the
                # world dies before a usable report exists
                raise RuntimeError(f"injected {fault.kind.value}")
        if not alt.guard.passes_entry(workspace):
            await reports.put(
                (index, "fail", f"guard {alt.guard.name!r} rejected entry", None, t0)
            )
            return
        value = await _call_alternative(alt, workspace)
        if not alt.guard.passes_result(workspace, value):
            await reports.put(
                (index, "fail", f"guard {alt.guard.name!r} rejected result", None, t0)
            )
            return
        await reports.put((index, "ok", value, workspace, t0))
    except asyncio.CancelledError:
        if ignore_cancel_s > 0.0:
            # CANCEL_IGNORED: a misbehaved coroutine that swallows its
            # cancellation and lingers; further cancels are swallowed
            # too, until the grace elapses
            deadline = time.perf_counter() + ignore_cancel_s
            while True:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    break
                try:
                    await asyncio.sleep(remaining)
                except asyncio.CancelledError:
                    continue
        raise
    except BaseException as exc:  # noqa: BLE001 - any failure is a loser
        await reports.put((index, "fail", f"alternative raised {exc!r}", None, t0))


async def alt_block_async(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    fault_plan=None,
    block_id: int = 0,
    attempt: int = 0,
    journal=None,
    obs=None,
    **_ignored: Any,
) -> BlockOutcome:
    """Run one alternative block on the *current* event loop.

    The coroutine-native entry point: await it from inside a host
    application's loop to get speculative blocks without a second loop
    or a thread hop. :func:`run_alternatives_async` wraps it for the
    synchronous registry surface.
    """
    run = BlockRun(
        "async", alternatives, initial, fault_plan=fault_plan,
        block_id=block_id, attempt=attempt, journal=journal, obs=obs,
    )
    reports: "asyncio.Queue" = asyncio.Queue()
    tasks: dict[int, asyncio.Task] = {}

    def _abort_spawned() -> None:
        for task in tasks.values():
            task.cancel()

    for index, alt in enumerate(run.alts):
        if not run.precheck_guard(index, alt):
            continue
        run.spawn_fault(
            index, alt, on_abort=_abort_spawned,
            detail="injected task-creation failure",
        )
        fault = run.child_fault(index, alt)
        aio_fault = run.site_fault(ASYNCIO_SITE, index, alt)
        workspace = copy.deepcopy(run.base)
        tasks[index] = asyncio.create_task(
            _world(index, alt, workspace, reports, fault, aio_fault),
            name=f"world-b{block_id}.{index}",
        )
    started = len(tasks)
    t_spawned = time.perf_counter()

    # rendezvous: one queue get per completion — O(1) per report even
    # with tens of thousands of worlds in flight (asyncio.wait would
    # re-register a callback per pending task per call)
    deadline = None if timeout is None else run.t_start + timeout
    remaining = started
    while remaining > 0 and run.winner is None:
        wait_s = None
        if deadline is not None:
            wait_s = deadline - time.perf_counter()
            if wait_s <= 0:
                run.timed_out = True
                break
        try:
            if wait_s is None:
                index, status, payload, workspace, t0 = await reports.get()
            else:
                index, status, payload, workspace, t0 = await asyncio.wait_for(
                    reports.get(), timeout=wait_s
                )
        except asyncio.TimeoutError:
            run.timed_out = True
            break
        remaining -= 1
        elapsed = time.perf_counter() - t0
        if status == "ok":
            run.accept(index, payload, workspace, elapsed_s=elapsed)
        else:
            run.reject(index, str(payload), elapsed_s=elapsed)

    # elimination: cancellation is the kill signal of this substrate
    label = "eliminated (task cancelled)" if run.winner is not None else "timeout-killed"
    pending = {i: t for i, t in tasks.items() if not t.done()}
    for task in pending.values():
        task.cancel()
    for index in pending:
        run.reject(index, label)
    uncollected = 0
    if pending:
        if elimination is EliminationPolicy.SYNCHRONOUS:
            # no loser may still be executing when the parent resumes;
            # await their unwinding, bounded (CANCEL_IGNORED lingers)
            done, still = await asyncio.wait(
                set(pending.values()), timeout=_SYNC_ELIM_GRACE_S
            )
            for task in still:
                task.cancel()  # re-signal, like the fork verified reap
            uncollected = len(still)
        else:
            uncollected = len(pending)

    return run.finish(
        overhead=OverheadBreakdown(setup_s=t_spawned - run.t_start),
        extras={
            "uncollected": uncollected if run.winner else 0,
            "elimination_policy": elimination.value,
            "eliminated": len(pending) if run.winner is not None else 0,
        },
    )


def run_alternatives_async(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    fault_plan=None,
    block_id: int = 0,
    attempt: int = 0,
    watchdog=None,  # accepted for protocol parity; tasks need no SIGTERM ladder
    journal=None,
    obs=None,
    **_ignored: Any,
) -> BlockOutcome:
    """Execute a block of alternatives as asyncio tasks (sync entry).

    Owns a private event loop for the block's duration (``asyncio.run``),
    so it composes with the registry, the supervisor's degradation
    ladder, and the serve layer exactly like the other backends. From
    inside a running loop, await :func:`alt_block_async` instead — this
    wrapper raises :class:`~repro.errors.WorldsError` there, because a
    nested ``asyncio.run`` would deadlock the caller's loop.
    """
    try:
        asyncio.get_running_loop()
    except RuntimeError:
        pass
    else:
        raise WorldsError(
            "run_alternatives_async cannot run inside an active event loop; "
            "await repro.aio.alt_block_async(...) instead"
        )
    return asyncio.run(
        alt_block_async(
            alternatives, initial, timeout, elimination,
            fault_plan=fault_plan, block_id=block_id, attempt=attempt,
            journal=journal, obs=obs,
        )
    )
