"""``repro.aio``: the massive-concurrency asyncio execution substrate.

Registered as ``backend="async"`` in :mod:`repro.core.backend` — each
speculative world is an asyncio task, so one process holds tens of
thousands of concurrent worlds with microsecond spawns, and losers are
eliminated by task cancellation rather than SIGKILL.

Two surfaces:

- :func:`~repro.aio.backend.run_alternatives_async` — the synchronous
  :class:`~repro.core.backend.Backend` entry the registry dispatches to
  (owns a private event loop per block);
- :func:`~repro.aio.backend.alt_block_async` — the coroutine-native
  form, for host applications that already run a loop.

See :mod:`repro.aio.backend` for the cancellation-vs-SIGKILL semantics
and the ``asyncio`` fault site.
"""

from repro.aio.backend import alt_block_async, run_alternatives_async

__all__ = ["alt_block_async", "run_alternatives_async"]
