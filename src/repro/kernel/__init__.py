"""Deterministic simulation kernel.

Simulated processes are Python generator functions that ``yield`` syscall
objects; the kernel charges virtual time for every operation from a
calibrated :class:`~repro.analysis.calibration.MachineProfile` and
multiplexes processes over a configurable number of virtual CPUs with
quantum-based timeslicing.

The kernel owns the full Multiple Worlds semantics:

- ``alt_spawn`` / ``alt_wait`` with COW heap forks, guard placement,
  commit-by-page-map-replacement, and sync/async sibling elimination
  (paper section 2.2);
- predicated messages with the accept / ignore / split receive rule,
  world cloning by deterministic replay, and predicate-resolution
  cascades (paper sections 2.3-2.4);
- sink staging and source gating (paper section 2.1, 2.4.2).

Everything is deterministic: same programs + same seed ⇒ identical
virtual timeline, world ids and results.
"""

from repro.kernel.syscalls import (
    Abort,
    AltOutcome,
    AltSpawn,
    AltWait,
    Compute,
    DeviceRead,
    DeviceWrite,
    Draw,
    GetPid,
    GetPredicates,
    HeapDelete,
    HeapGet,
    HeapPut,
    HeapSnapshot,
    Now,
    Recv,
    Send,
    Sleep,
    TIMEOUT,
)
from repro.kernel.process import ProcState, SimProcess
from repro.kernel.context import Context
from repro.kernel.kernel import Kernel, UtilizationReport
from repro.kernel.trace import TraceEvent

__all__ = [
    "Kernel",
    "UtilizationReport",
    "Context",
    "SimProcess",
    "ProcState",
    "TraceEvent",
    "AltOutcome",
    "TIMEOUT",
    "Compute",
    "HeapPut",
    "HeapGet",
    "HeapDelete",
    "HeapSnapshot",
    "Send",
    "Recv",
    "AltSpawn",
    "AltWait",
    "Abort",
    "DeviceRead",
    "DeviceWrite",
    "Draw",
    "Now",
    "GetPid",
    "GetPredicates",
    "Sleep",
]
