"""The deterministic Multiple Worlds simulation kernel.

See :mod:`repro.kernel` for the overall model. Implementation notes:

**Scheduling.** Discrete-event simulation with ``cpus`` virtual CPUs and
quantum-based round-robin timeslicing: a costed operation is executed in
``quantum_s`` slices, re-queued behind other ready worlds between slices,
so concurrent computations share CPUs the way timeshared processes do.

**World cloning by replay.** A message split clones the receiver. The
kernel logs every syscall result a world has consumed; a clone is built
by forking the original's heap (COW) and re-running its program while
feeding it the logged results and performing no side effects. This
requires programs to be deterministic given syscall results — the reason
all randomness flows through :class:`~repro.kernel.syscalls.Draw`.

**Commit deferral.** A child that synchronizes first becomes the block
winner immediately (completion facts resolve, siblings are eliminated),
but the parent's page-map swap happens when the parent reaches
``alt_wait`` — between ``alt_spawn`` and ``alt_wait`` the parent may only
read, never write, its heap (the paper keeps the parent blocked for
exactly this consistency reason; we enforce it instead).

**Sync gating.** A world whose predicate set grew beyond its birth set
(by accepting predicated messages) may not complete observably until the
extra assumptions resolve; it parks in ``BLOCKED_SYNC``. This closes the
soundness gap of committing a world whose defining assumptions could
still prove false, and guarantees that at commit time no conflicting
sibling interpretation of the same logical process is still alive.
"""

from __future__ import annotations

import heapq
import inspect
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.calibration import MODERN_SIM, MachineProfile
from repro.core.alternative import Alternative, GuardPlacement
from repro.core.policy import EliminationPolicy
from repro.core.predicates import MessageDecision, PredicateSet, world_key
from repro.devices.device import Device, SinkDevice
from repro.devices.teletype import Teletype
from repro.errors import (
    DeadlockError,
    InputExhausted,
    InvalidSyscall,
    KernelError,
    ProcessDied,
    SourceAccessError,
)
from repro.ipc.message import Message
from repro.ipc.router import decide_receive
from repro.kernel import syscalls as sc
from repro.kernel.context import Context
from repro.kernel.process import AltGroup, ProcState, SimProcess
from repro.kernel.trace import Trace
from repro.memory.frame import FramePool
from repro.memory.heap import PagedHeap
from repro.util.ids import IdAllocator
from repro.util.rng import ReplayableRNG

_MAX_INLINE_OPS = 100_000


@dataclass(frozen=True)
class UtilizationReport:
    """CPU-seconds accounting: the throughput side of the ledger."""

    wall_s: float
    cpus: int
    useful_cpu_s: float
    wasted_cpu_s: float
    background_cpu_s: float

    @property
    def total_cpu_s(self) -> float:
        return self.useful_cpu_s + self.wasted_cpu_s + self.background_cpu_s

    @property
    def utilization(self) -> float:
        """Fraction of available CPU-time consumed (any purpose)."""
        capacity = self.wall_s * self.cpus
        return self.total_cpu_s / capacity if capacity > 0 else 0.0

    @property
    def speculation_waste(self) -> float:
        """Fraction of consumed CPU spent on eliminated worlds."""
        if self.total_cpu_s == 0:
            return 0.0
        return (self.wasted_cpu_s + self.background_cpu_s) / self.total_cpu_s


class _InternalOp(sc.Syscall):
    """Kernel-generated costed op (elimination charge, split charge)."""

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label


class _Event:
    """One entry of the virtual-time event queue."""

    __slots__ = ("time", "seq", "kind", "data", "cancelled")

    def __init__(self, time: float, seq: int, kind: str, data: tuple) -> None:
        self.time = time
        self.seq = seq
        self.kind = kind
        self.data = data
        self.cancelled = False

    def __lt__(self, other: "_Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


def _differs(a: Any, b: Any) -> bool:
    """Conservative inequality: uncomparable values count as changed."""
    if a is b:
        return False
    try:
        return bool(a != b)
    except Exception:
        return True


def _plain_program(alt: Alternative) -> Callable:
    """Wrap a plain-callable alternative into a simulated program.

    The callable runs against a dict workspace unpickled from the heap;
    changed keys are written back (each write paying its true COW cost),
    and ``alt.sim_cost`` supplies the virtual compute duration.
    """

    in_child = bool(alt.guard.placement & GuardPlacement.IN_CHILD)

    def prog(ctx: Context):
        workspace = yield sc.HeapSnapshot()
        if in_child and not alt.guard.passes_entry(workspace):
            yield sc.Abort(f"guard {alt.guard.name!r} rejected entry")
        cost = alt.cost_for(workspace)
        if cost > 0:
            yield sc.Compute(cost)
        try:
            value = alt.fn(workspace)
        except Exception as exc:
            yield sc.Abort(f"alternative raised {exc!r}")
            return None  # pragma: no cover - Abort never resumes
        baseline = yield sc.HeapSnapshot()
        for key, val in workspace.items():
            if key not in baseline or _differs(baseline[key], val):
                yield sc.HeapPut(key, val)
        for key in baseline:
            if key not in workspace:
                yield sc.HeapDelete(key)
        if in_child and not alt.guard.passes_result(workspace, value):
            yield sc.Abort(f"guard {alt.guard.name!r} rejected result")
        return value

    prog.__name__ = f"plain:{alt.name}"
    return prog


# _issue() outcome tags
_INLINE = "inline"  # zero-cost op completed; continue the generator
_PARKED = "parked"  # world parked (costed op queued, blocked, or dead)
_THROW = "throw"  # raise this exception inside the program


class _ExhaustedMarker:
    """Replay-log sentinel: this DeviceRead raised InputExhausted.

    Logged in place of a result so deterministic replay (migration,
    world-splitting) rethrows the exhaustion at the same point instead
    of feeding the program a value it never saw.
    """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "INPUT_EXHAUSTED"


#: The singleton logged for exhausted reads (module-level so pickled
#: replay logs resolve it by reference).
INPUT_EXHAUSTED = _ExhaustedMarker()


class Kernel:
    """A simulated machine running Multiple Worlds programs.

    Parameters
    ----------
    profile:
        Cost constants (see :mod:`repro.analysis.calibration`).
    cpus:
        Virtual CPU count; defaults to ``profile.cpus``.
    seed:
        Seed for kernel-mediated randomness (:class:`Draw` syscalls).
    source_policy:
        ``"block"`` parks a speculative world touching a source until its
        predicates resolve; ``"strict"`` raises
        :class:`~repro.errors.SourceAccessError` inside the program.
    trace:
        Record :class:`~repro.kernel.trace.TraceEvent` history.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`. Enables the
        kernel's deterministic fault hooks: message drop/delay (decided
        per ``msg_id`` via :func:`repro.ipc.router.fault_filter`) and
        per-op compute stalls (decided per ``(wid, op_number)``). Faults
        change timing and delivery, never the replay log contents, so
        world cloning stays sound under injection.
    journal:
        Optional :class:`~repro.journal.wal.CommitJournal`. When set,
        every winner synchronization, parent commit, elimination and
        predicate split runs as an intent -> seal -> apply transaction,
        and an injected journal crash
        (:class:`~repro.errors.JournalCrash`) propagates out of
        :meth:`run` — the process is dead at that instant, with only the
        journal bytes and real device effects surviving. When None
        (default) no journaling happens and behaviour is unchanged.
    obs:
        Optional :class:`~repro.obs.Observability`. When set, the kernel
        emits one span per world (track = wid, carrying pid / lineage /
        disposition), one span per alternative block (with the commit
        latency breakdown), split/fault annotation instants, and the
        ``mw_worlds_total`` / ``mw_mem_*`` metrics — all in virtual
        time. When None (default) no telemetry calls happen at all.
    """

    def __init__(
        self,
        profile: MachineProfile = MODERN_SIM,
        cpus: int | None = None,
        seed: int = 0,
        source_policy: str = "block",
        trace: bool = False,
        max_worlds: int = 10_000,
        fault_plan=None,
        journal=None,
        obs=None,
    ) -> None:
        """``max_worlds`` bounds total world creation — the defence
        against the abstract's "combinatorial explosion" when message
        splits multiply (each speculative message can double a receiver's
        world count)."""
        if source_policy not in ("block", "strict"):
            raise ValueError(f"unknown source policy {source_policy!r}")
        if max_worlds < 1:
            raise ValueError("max_worlds must be positive")
        self.max_worlds = max_worlds
        self.profile = profile
        self.cpus = cpus if cpus is not None else profile.cpus
        if self.cpus < 1:
            raise ValueError("need at least one CPU")
        self.pool = FramePool(profile.page_size)
        self.rng = ReplayableRNG(seed)
        self.source_policy = source_policy
        self.trace = Trace(enabled=trace)
        self.fault_plan = fault_plan
        self.journal = journal
        self.faults_injected: list[dict] = []
        self.obs = None
        if obs is not None:
            from repro.obs.integrate import KernelObserver

            self.obs = KernelObserver(obs, self)

        self.now = 0.0
        self.worlds: dict[int, SimProcess] = {}
        self.pid_worlds: dict[int, list[int]] = {}
        self.groups: dict[int, AltGroup] = {}
        self.devices: dict[str, Device] = {}
        self.add_device(Teletype("tty"))

        self._pids = IdAllocator(1)
        self._wids = IdAllocator(1)
        self._group_ids = IdAllocator(1)
        self._msg_ids = IdAllocator(1)
        self._event_seq = IdAllocator(1)
        self._events: list[_Event] = []
        self._ready: deque[int] = deque()
        self._cpus_busy = 0
        #: resolved completion facts per logical pid
        self.facts: dict[int, bool] = {}
        self._committed: set[int] = set()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    @property
    def stats(self):
        """Machine-wide memory counters (shared frame pool)."""
        return self.pool.stats

    def add_device(self, device: Device) -> None:
        self.devices[device.name] = device

    def device(self, name: str) -> Device:
        try:
            return self.devices[name]
        except KeyError:
            raise KernelError(f"no device named {name!r}") from None

    def spawn(
        self,
        program: Callable,
        *args: Any,
        name: str | None = None,
        heap_init: dict[str, Any] | None = None,
    ) -> int:
        """Create an unpredicated root process; returns its pid."""
        if not inspect.isgeneratorfunction(program):
            raise KernelError(
                f"root programs must be generator functions, got {program!r}"
            )
        pid = self._pids.next()
        world = SimProcess(
            wid=self._wids.next(),
            pid=pid,
            name=name or getattr(program, "__name__", f"proc{pid}"),
            program=program,
            args=args,
            heap=PagedHeap(pool=self.pool),
        )
        if heap_init:
            world.heap.update(heap_init)
        self._register(world)
        self._start_world(world)
        return pid

    def worlds_of(self, pid: int) -> list[SimProcess]:
        """All worlds (live and dead) of one logical pid."""
        return [self.worlds[w] for w in self.pid_worlds.get(pid, [])]

    def live_worlds(self) -> list[SimProcess]:
        return [w for w in self.worlds.values() if w.alive]

    def world_by_wid(self, wid: int) -> SimProcess:
        try:
            return self.worlds[wid]
        except KeyError:
            raise ProcessDied(f"no world {wid}") from None

    def result_of(self, pid: int) -> Any:
        """The result of ``pid``'s successful completion.

        Raises :class:`ProcessDied` when no world of the pid completed.
        """
        for world in self.worlds_of(pid):
            if world.state is ProcState.DONE:
                return world.result
        raise ProcessDied(f"process {pid} did not complete successfully")

    def heap_of(self, pid: int) -> PagedHeap:
        """The heap of the most relevant world of ``pid`` (live, else done)."""
        candidates = self.worlds_of(pid)
        for world in candidates:
            if world.alive:
                return world.heap
        for world in candidates:
            if world.state is ProcState.DONE and world.heap is not None:
                return world.heap
        raise ProcessDied(f"no inspectable world for pid {pid}")

    def utilization_report(self) -> "UtilizationReport":
        """Response-vs-throughput accounting over the whole run.

        The paper trades throughput for response time; this report makes
        the trade measurable: CPU seconds consumed by worlds that
        completed (useful), by eliminated/aborted worlds (wasted
        speculation), and by kernel background work (reapers).
        """
        useful = wasted = background = 0.0
        for world in self.worlds.values():
            if world.name.startswith("reaper-"):
                background += world.cpu_time_s
            elif world.state is ProcState.DONE:
                useful += world.cpu_time_s
            elif not world.alive:
                wasted += world.cpu_time_s
            else:
                useful += world.cpu_time_s  # still running: assume useful
        return UtilizationReport(
            wall_s=self.now,
            cpus=self.cpus,
            useful_cpu_s=useful,
            wasted_cpu_s=wasted,
            background_cpu_s=background,
        )

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Advance the simulation; returns the final virtual time.

        Runs until no events remain (or virtual time passes ``until`` /
        ``max_events`` events fire). Raises :class:`DeadlockError` if live
        worlds remain blocked with nothing pending.
        """
        fired = 0
        self._dispatch()
        while self._events:
            if max_events is not None and fired >= max_events:
                return self.now
            event = heapq.heappop(self._events)
            if event.cancelled:
                continue
            if until is not None and event.time > until:
                heapq.heappush(self._events, event)
                self.now = until
                return self.now
            self.now = event.time
            fired += 1
            self._handle_event(event)
            self._dispatch()
        stuck = [w for w in self.worlds.values() if w.alive]
        if stuck and until is None:
            detail = ", ".join(
                f"pid {w.pid} (wid {w.wid}, {w.name}) {w.state.value}" for w in stuck
            )
            raise DeadlockError(f"no runnable work but live worlds remain: {detail}")
        return self.now

    # ------------------------------------------------------------------
    # registration / startup
    # ------------------------------------------------------------------
    def _register(self, world: SimProcess) -> None:
        if len(self.worlds) >= self.max_worlds:
            raise KernelError(
                f"world limit reached ({self.max_worlds}): speculative "
                "state is exploding; raise max_worlds or restructure the "
                "program (see Kernel docs)"
            )
        self.worlds[world.wid] = world
        self.pid_worlds.setdefault(world.pid, []).append(world.wid)
        self.trace.record(self.now, "spawn", world.pid, wid=world.wid, name=world.name)
        if self.obs is not None:
            self.obs.world_started(self.now, world)

    def _start_world(self, world: SimProcess) -> None:
        """Create the generator and advance to its first real operation."""
        ctx = Context(world.pid, world.name)
        world.gen = world.program(ctx, *world.args)
        world.started = True
        self._advance(world, None)

    # ------------------------------------------------------------------
    # the generator driver
    # ------------------------------------------------------------------
    def _advance(self, world: SimProcess, send_value: Any, throw: BaseException | None = None) -> None:
        """Run ``world`` until it parks on a costed/blocking op or finishes.

        A completed operation's side effects can cascade (a routed
        message may resolve facts that eliminate the very sender), so a
        world that died between its op completing and this resume is
        left untouched.
        """
        if not world.alive or world.gen is None:
            return
        for _ in range(_MAX_INLINE_OPS):
            try:
                if throw is not None:
                    exc, throw = throw, None
                    op = world.gen.throw(exc)
                else:
                    op = world.gen.send(send_value)
            except StopIteration as stop:
                self._finish_normal(world, stop.value)
                return
            except Exception as exc:
                self._finish_abort(world, f"uncaught {exc!r}")
                return

            if not isinstance(op, sc.Syscall):
                throw = InvalidSyscall(f"program yielded non-syscall {op!r}")
                send_value = None
                continue

            action, payload = self._issue(world, op)
            if action == _PARKED:
                return
            if action == _THROW:
                throw = payload
                send_value = None
                continue
            send_value = payload  # inline result
        self._finish_abort(world, "runaway program: too many inline operations")

    def _log(self, world: SimProcess, op: sc.Syscall, result: Any) -> None:
        world.log.append((type(op).__name__, result))

    def _issue(self, world: SimProcess, op: sc.Syscall) -> tuple[str, Any]:
        """Start one syscall; returns an (_INLINE/_PARKED/_THROW, payload) pair."""
        # ---- zero-cost immediate syscalls -------------------------------
        if isinstance(op, sc.HeapGet):
            value = world.heap.get(op.key) if op.key in world.heap else op.default
            self._log(world, op, value)
            return _INLINE, value
        if isinstance(op, sc.HeapSnapshot):
            snap = world.heap.as_dict()
            self._log(world, op, snap)
            return _INLINE, snap
        if isinstance(op, sc.HeapDelete):
            if world.own_group is not None:
                return _THROW, self._frozen_heap_error()
            if op.key in world.heap:
                world.heap.delete(op.key)
            self._log(world, op, None)
            return _INLINE, None
        if isinstance(op, sc.Now):
            self._log(world, op, self.now)
            return _INLINE, self.now
        if isinstance(op, sc.GetPid):
            self._log(world, op, world.pid)
            return _INLINE, world.pid
        if isinstance(op, sc.GetPredicates):
            self._log(world, op, world.predicates)
            return _INLINE, world.predicates
        if isinstance(op, sc.Draw):
            try:
                value = self._draw(op)
            except InvalidSyscall as exc:
                return _THROW, exc
            self._log(world, op, value)
            return _INLINE, value

        # ---- terminal ----------------------------------------------------
        if isinstance(op, sc.Abort):
            self._finish_abort(world, op.reason or "aborted")
            return _PARKED, None

        # ---- heap writes (costed by true COW copies) ---------------------
        if isinstance(op, sc.HeapPut):
            if world.own_group is not None:
                return _THROW, self._frozen_heap_error()
            before = self.pool.stats.snapshot()
            world.heap.put(op.key, op.value)
            copied = self.pool.stats.delta(before).pages_copied
            cost = self.profile.copy_cost(copied)
            if world.alt_group is not None:
                world.alt_group.overhead.runtime_s += cost
            if cost <= 0:
                self._log(world, op, None)
                return _INLINE, None
            self._park_costed(world, op, cost, None)
            return _PARKED, None

        # ---- messaging ----------------------------------------------------
        if isinstance(op, sc.Send):
            msg = Message(
                sender=world.pid,
                dest=op.dest,
                data=op.data,
                predicate=world.predicates,
                msg_id=self._msg_ids.next(),
                sent_at=self.now,
                sender_world=world.wid,
            )
            cost = self.profile.message_cost(msg.size_bytes())
            self._park_costed(world, op, cost, msg)
            return _PARKED, None

        if isinstance(op, sc.Recv):
            got = self._try_receive(world)
            if got is not None:
                msg, split_cost = got
                if split_cost > 0:
                    self._park_costed(world, _InternalOp("recv-split"), split_cost, msg)
                    return _PARKED, None
                self._log(world, op, msg)
                return _INLINE, msg
            world.state = ProcState.BLOCKED_RECV
            world.blocked_recv_deadline = None
            if op.timeout is not None:
                deadline = self.now + op.timeout
                world.blocked_recv_deadline = deadline
                self._set_timer(world, deadline, "recv")
            self.trace.record(self.now, "recv-block", world.pid, wid=world.wid)
            return _PARKED, None

        # ---- worlds ----------------------------------------------------------
        if isinstance(op, sc.AltSpawn):
            if world.own_group is not None:
                return _THROW, KernelError(
                    "alt_spawn while a previous block awaits alt_wait"
                )
            if not op.alternatives:
                return _THROW, KernelError("alt_spawn needs at least one alternative")
            try:
                alts = [
                    sc.normalize_alternative(a, i)
                    for i, a in enumerate(op.alternatives)
                ]
            except TypeError as exc:
                return _THROW, KernelError(str(exc))
            # BEFORE_SPAWN guards run serially in the parent, before any
            # fork cost is paid (paper: "thus improving throughput at the
            # expense of response time")
            plan: list[tuple[int, Alternative, bool]] = []
            parent_snapshot: dict[str, Any] | None = None
            for index, alt in enumerate(alts):
                passed = True
                if (
                    alt.guard.placement & GuardPlacement.BEFORE_SPAWN
                    and alt.guard.check is not None
                ):
                    if parent_snapshot is None:
                        parent_snapshot = world.heap.as_dict()
                    try:
                        passed = bool(alt.guard.passes_entry(parent_snapshot))
                    except Exception:
                        passed = False
                plan.append((index, alt, passed))
            pages = len(world.heap.space.table)
            cost = self.profile.fork_cost(pages) * sum(
                1 for _, _, passed in plan if passed
            )
            self._park_costed(world, op, cost, plan)
            return _PARKED, None

        if isinstance(op, sc.AltWait):
            group = world.own_group
            if group is None:
                return _THROW, KernelError("alt_wait without alt_spawn")
            group.waiting = True
            group.policy = op.elimination
            group.timeout = op.timeout
            if group.settled:
                self._deliver_alt_outcome(world, group)
                return _PARKED, None
            world.state = ProcState.BLOCKED_ALT
            if op.timeout is not None:
                self._set_timer(world, self.now + op.timeout, "altwait")
            self.trace.record(self.now, "alt-wait", world.pid, wid=world.wid)
            return _PARKED, None

        # ---- time -------------------------------------------------------------
        if isinstance(op, sc.Compute):
            if op.seconds < 0:
                return _THROW, InvalidSyscall("negative compute time")
            if op.seconds == 0:
                self._log(world, op, None)
                return _INLINE, None
            seconds = op.seconds + self._stall_for(world)
            self._park_costed(world, op, seconds, None)
            return _PARKED, None

        if isinstance(op, sc.Sleep):
            if op.seconds <= 0:
                self._log(world, op, None)
                return _INLINE, None
            world.state = ProcState.SLEEPING
            self._set_timer(world, self.now + op.seconds, "sleep")
            return _PARKED, None

        # ---- devices -------------------------------------------------------------
        if isinstance(op, (sc.DeviceRead, sc.DeviceWrite)):
            device = self.devices.get(op.device)
            if device is None:
                return _THROW, KernelError(f"no device {op.device!r}")
            if device.is_source and world.speculative:
                if self.source_policy == "strict":
                    return _THROW, SourceAccessError(
                        f"speculative world pid {world.pid} touched source "
                        f"{device.name!r}"
                    )
                world.state = ProcState.BLOCKED_SOURCE
                world.blocked_source_op = op
                self.trace.record(
                    self.now, "source-block", world.pid,
                    wid=world.wid, device=device.name,
                )
                return _PARKED, None
            self._park_costed(world, op, self.profile.device_latency_s, None)
            return _PARKED, None

        return _THROW, InvalidSyscall(f"unknown syscall {op!r}")

    @staticmethod
    def _frozen_heap_error() -> KernelError:
        return KernelError(
            "parent may not modify its heap between alt_spawn and alt_wait "
            "(the paper's parent stays blocked for consistency)"
        )

    def _draw(self, op: sc.Draw) -> Any:
        kind = op.kind
        if kind == "uniform":
            return self.rng.uniform(*op.args)
        if kind == "integers":
            return self.rng.integers(*op.args)
        if kind == "angle":
            return self.rng.angle()
        if kind == "exponential":
            return self.rng.exponential(*op.args)
        if kind == "normal":
            return self.rng.normal(*op.args)
        raise InvalidSyscall(f"unknown draw kind {kind!r}")

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def _park_costed(self, world: SimProcess, op: sc.Syscall, cost: float, result: Any) -> None:
        world.current_op = op
        world.op_remaining = cost
        world.op_result = result
        world.state = ProcState.READY
        self._ready.append(world.wid)

    def _dispatch(self) -> None:
        while self._cpus_busy < self.cpus and self._ready:
            wid = self._ready.popleft()
            world = self.worlds.get(wid)
            if world is None or world.state is not ProcState.READY:
                continue
            slice_s = min(self.profile.quantum_s, world.op_remaining)
            world.state = ProcState.RUNNING
            token = world.bump_dispatch()
            event = self._push_event(self.now + slice_s, "slice", (wid, token, slice_s))
            world.slice_event = event
            self._cpus_busy += 1

    def _push_event(self, time: float, kind: str, data: tuple) -> _Event:
        event = _Event(time, self._event_seq.next(), kind, data)
        heapq.heappush(self._events, event)
        return event

    def _set_timer(self, world: SimProcess, deadline: float, tag: str) -> None:
        token = world.bump_timer()
        self._push_event(deadline, "timer", (world.wid, token, tag))

    def _handle_event(self, event: _Event) -> None:
        if event.kind == "slice":
            self._on_slice(event)
        elif event.kind == "timer":
            self._on_timer(event)
        elif event.kind == "route":
            # a fault-delayed message reaching its rescheduled delivery
            self._route_message(event.data[0], fault_checked=True)
        else:  # pragma: no cover - defensive
            raise KernelError(f"unknown event kind {event.kind!r}")

    def _stall_for(self, world: SimProcess) -> float:
        """Injected extra virtual seconds for this world's next costed op."""
        if self.fault_plan is None:
            return 0.0
        from repro.faults.plan import COMPUTE_SITE, FaultKind

        decision = self.fault_plan.decide(COMPUTE_SITE, world.wid, len(world.log))
        if decision.kind is not FaultKind.STALL:
            return 0.0
        self.faults_injected.append(
            {"kind": "stall", "wid": world.wid, "pid": world.pid, "extra_s": decision.param}
        )
        self.trace.record(
            self.now, "fault-stall", world.pid, wid=world.wid, extra_s=decision.param
        )
        self.fault_plan.note_injection(
            COMPUTE_SITE, "stall", t=self.now, track=world.wid,
            wid=world.wid, pid=world.pid, extra_s=decision.param,
        )
        return decision.param

    def _on_slice(self, event: _Event) -> None:
        wid, token, slice_s = event.data
        self._cpus_busy -= 1
        world = self.worlds.get(wid)
        if world is None or world.state is not ProcState.RUNNING or world.dispatch_token != token:
            return
        world.slice_event = None
        world.cpu_time_s += slice_s
        world.op_remaining -= slice_s
        if world.op_remaining > 1e-12:
            world.state = ProcState.READY
            self._ready.append(wid)
        else:
            self._complete_op(world)

    def _on_timer(self, event: _Event) -> None:
        wid, token, tag = event.data
        world = self.worlds.get(wid)
        if world is None or world.timer_token != token or not world.alive:
            return
        if tag == "sleep" and world.state is ProcState.SLEEPING:
            if not world.started:
                # staggered spawn: the program starts only now, so no
                # Sleep entry is logged (the program never yielded one)
                self._start_world(world)
            else:
                self._log(world, sc.Sleep(0), None)
                self._advance(world, None)
        elif tag == "recv" and world.state is ProcState.BLOCKED_RECV:
            self._log(world, sc.Recv(), sc.TIMEOUT)
            self.trace.record(self.now, "recv-timeout", world.pid, wid=world.wid)
            self._advance(world, sc.TIMEOUT)
        elif tag == "altwait" and world.state is ProcState.BLOCKED_ALT:
            group = world.own_group
            if group is None or group.settled:
                return
            self._timeout_group(world, group)

    # ------------------------------------------------------------------
    # op completion
    # ------------------------------------------------------------------
    def _complete_op(self, world: SimProcess) -> None:
        op = world.current_op
        world.current_op = None
        if isinstance(op, (sc.Compute, sc.HeapPut)):
            self._log(world, op, None)
            self._advance(world, None)
        elif isinstance(op, _InternalOp):
            result = world.op_result
            if op.label == "recv-split":
                self._log(world, sc.Recv(), result)
            elif op.label == "alt-outcome":
                self._log(world, sc.AltWait(), result)
            else:
                self._log(world, op, None)
            self._advance(world, result)
        elif isinstance(op, sc.Send):
            msg = world.op_result
            self._route_message(msg)
            self._log(world, op, msg.msg_id)
            self._advance(world, msg.msg_id)
        elif isinstance(op, sc.AltSpawn):
            self._complete_altspawn(world, op)
        elif isinstance(op, sc.DeviceRead):
            try:
                result = self._do_device_read(world, op)
            except InputExhausted as exc:
                # scripted input ran out: the program gets the exception
                # (it may catch it as EOF); the log gets a sentinel so
                # replay rethrows at the same point.
                self._log(world, op, INPUT_EXHAUSTED)
                self.trace.record(
                    self.now, "input-exhausted", world.pid,
                    wid=world.wid, device=op.device,
                )
                self._advance(world, None, throw=exc)
            else:
                self._log(world, op, result)
                self._advance(world, result)
        elif isinstance(op, sc.DeviceWrite):
            result = self._do_device_write(world, op)
            self._log(world, op, result)
            self._advance(world, result)
        else:  # pragma: no cover - defensive
            raise KernelError(f"cannot complete op {op!r}")

    # ------------------------------------------------------------------
    # devices
    # ------------------------------------------------------------------
    def _do_device_read(self, world: SimProcess, op: sc.DeviceRead) -> bytes:
        device = self.device(op.device)
        if isinstance(device, SinkDevice):
            return device.read(op.nbytes, offset=op.offset, world=world.wid)
        return device.read(op.nbytes, client=world.pid)

    def _do_device_write(self, world: SimProcess, op: sc.DeviceWrite) -> int:
        device = self.device(op.device)
        if isinstance(device, SinkDevice) and world.speculative:
            world.staged_devices.add(device.name)
            return device.stage_write(world.wid, op.data, offset=op.offset)
        if isinstance(device, SinkDevice):
            return device.write(op.data, offset=op.offset)
        return device.write(op.data, client=world.pid)

    # ------------------------------------------------------------------
    # messaging: routing, receive rule, world splitting
    # ------------------------------------------------------------------
    def _route_message(self, msg: Message, fault_checked: bool = False) -> None:
        if self.fault_plan is not None and not fault_checked:
            from repro.ipc.router import fault_filter

            verdict, delay_s = fault_filter(msg, self.fault_plan)
            if verdict == "drop":
                self.faults_injected.append({"kind": "msg-drop", "msg_id": msg.msg_id})
                self.trace.record(
                    self.now, "fault-msg-drop", msg.dest,
                    msg_id=msg.msg_id, sender=msg.sender,
                )
                self.fault_plan.note_injection(
                    "message", "msg-drop", t=self.now,
                    msg_id=msg.msg_id, sender=msg.sender, dest=msg.dest,
                )
                return
            if verdict == "delay":
                self.faults_injected.append(
                    {"kind": "msg-delay", "msg_id": msg.msg_id, "delay_s": delay_s}
                )
                self.trace.record(
                    self.now, "fault-msg-delay", msg.dest,
                    msg_id=msg.msg_id, delay_s=delay_s,
                )
                self.fault_plan.note_injection(
                    "message", "msg-delay", t=self.now,
                    msg_id=msg.msg_id, delay_s=delay_s, dest=msg.dest,
                )
                self._push_event(self.now + delay_s, "route", (msg,))
                return
        targets = [
            self.worlds[w]
            for w in self.pid_worlds.get(msg.dest, [])
            if self.worlds[w].alive
        ]
        if not targets:
            self.trace.record(self.now, "dead-letter", msg.dest, msg_id=msg.msg_id)
            return
        for world in targets:
            world.mailbox.deliver(msg)
            self.trace.record(
                self.now, "deliver", world.pid, wid=world.wid,
                msg_id=msg.msg_id, sender=msg.sender,
            )
        for world in targets:
            if world.state is ProcState.BLOCKED_RECV:
                self._pump_blocked_receiver(world)

    def _pump_blocked_receiver(self, world: SimProcess) -> None:
        """Retry the receive rule for a world blocked in recv."""
        got = self._try_receive(world)
        if got is None:
            return
        received, split_cost = got
        world.bump_timer()  # cancel any recv timeout
        if split_cost > 0:
            self._park_costed(world, _InternalOp("recv-split"), split_cost, received)
        else:
            self._log(world, sc.Recv(), received)
            self._advance(world, received)

    def _try_receive(self, world: SimProcess) -> tuple[Message, float] | None:
        """Apply the receive rule to the mailbox head(s).

        Returns (message, extra_cost) when a message is accepted —
        ``extra_cost`` is the clone fork charge when acceptance split the
        world — or None when the world must (keep) wait(ing).
        """
        while world.mailbox:
            head = world.mailbox.peek()
            action = decide_receive(head, world.predicates)
            if action.decision is MessageDecision.IGNORE:
                world.mailbox.discard_head()
                self.trace.record(
                    self.now, "msg-ignore", world.pid, wid=world.wid, msg_id=head.msg_id
                )
                continue
            if action.decision is MessageDecision.ACCEPT:
                msg = world.mailbox.pop()
                self.trace.record(
                    self.now, "msg-accept", world.pid, wid=world.wid, msg_id=msg.msg_id
                )
                return msg, 0.0
            # SPLIT
            msg = world.mailbox.pop()
            if action.rejecting is None:
                # rejecting copy would be self-contradictory: accept with
                # the extended predicates, no clone.
                world.predicates = action.accepting
                self.trace.record(
                    self.now, "msg-accept-extend", world.pid, wid=world.wid,
                    msg_id=msg.msg_id,
                )
                return msg, 0.0
            clone = self._split_clone(world, action.rejecting)
            world.predicates = action.accepting
            self.trace.record(
                self.now, "world-split", world.pid, wid=world.wid,
                clone_wid=clone.wid, msg_id=msg.msg_id, sender=msg.sender,
            )
            return msg, self.profile.fork_cost(len(world.heap.space.table))
        return None

    def _split_clone(self, orig: SimProcess, predicates: PredicateSet) -> SimProcess:
        """Clone ``orig`` (parked at a recv) as the rejecting world."""
        for pid in orig.child_pids:
            for w in self.pid_worlds.get(pid, []):
                if self.worlds[w].alive:
                    raise KernelError(
                        "cannot split a world with live alternative children"
                    )
        if orig.own_group is not None:
            raise KernelError("cannot split a world between alt_spawn and alt_wait")
        split_seq = None
        if self.journal is not None:
            split_seq = self.journal.begin(
                "split", pid=orig.pid, orig_wid=orig.wid,
            )
            self.journal.seal(split_seq)
        clone = SimProcess(
            wid=self._wids.next(),
            pid=orig.pid,
            name=orig.name,
            program=orig.program,
            args=orig.args,
            heap=orig.heap.fork(),
            predicates=predicates,
            birth_predicates=orig.birth_predicates,
            parent_wid=orig.parent_wid,
            cloned_from=orig.wid,
            alt_group=orig.alt_group,
        )
        clone.log = list(orig.log)
        self._replay(clone)
        clone.state = ProcState.BLOCKED_RECV
        clone.mailbox = orig.mailbox.clone(orig.pid)
        self._register(clone)
        if self.obs is not None:
            self.obs.split(self.now, orig, clone)
        self._fork_readers(orig.wid, clone.wid)
        deadline = orig.blocked_recv_deadline
        if deadline is not None and deadline > self.now:
            clone.blocked_recv_deadline = deadline
            self._set_timer(clone, deadline, "recv")
        if split_seq is not None:
            self.journal.mark_applied(split_seq, clone_wid=clone.wid)
        return clone

    def _fork_readers(self, src_wid: int, dst_wid: int) -> None:
        """A world forked: gated sources inherit the parent's read position."""
        for device in self.devices.values():
            fork_reader = getattr(device, "fork_reader", None)
            if fork_reader is not None:
                fork_reader(src_wid, dst_wid)

    def _transfer_readers(self, src_wid: int, dst_wid: int) -> None:
        """A winner committed: its consumed input becomes the parent's.

        Covers gated sources the winner only *read* from — those never
        enter ``staged_devices``, so :meth:`_transfer_staging` does not
        reach them. ``transfer_world`` on an empty ledger just moves the
        read position (and is a no-op if staging already transferred).
        """
        for device in self.devices.values():
            if getattr(device, "fork_reader", None) is not None:
                device.transfer_world(src_wid, dst_wid)

    def _replay(self, clone: SimProcess) -> None:
        """Reconstruct the clone's generator by deterministic replay.

        Feeds the logged results while performing no side effects; leaves
        the generator parked exactly at the recv the original is waiting
        on.
        """
        ctx = Context(clone.pid, clone.name)
        gen = clone.program(ctx, *clone.args)
        clone.gen = gen
        clone.started = True
        send_value = None
        throw_next = False
        try:
            for kind, result in clone.log:
                if throw_next:
                    op = gen.throw(InputExhausted("replayed input exhaustion"))
                    throw_next = False
                else:
                    op = gen.send(send_value)
                if type(op).__name__ != kind:
                    raise KernelError(
                        f"replay divergence: expected {kind}, program yielded "
                        f"{type(op).__name__} (programs must be deterministic)"
                    )
                if isinstance(result, _ExhaustedMarker):
                    throw_next = True
                    send_value = None
                else:
                    send_value = result
            if throw_next:
                op = gen.throw(InputExhausted("replayed input exhaustion"))
            else:
                op = gen.send(send_value)
        except StopIteration:
            raise KernelError("replay divergence: program finished early") from None
        if not isinstance(op, sc.Recv):
            raise KernelError(
                f"replay did not reach the recv point (got {type(op).__name__})"
            )

    # ------------------------------------------------------------------
    # alt blocks
    # ------------------------------------------------------------------
    def _complete_altspawn(self, world: SimProcess, op: sc.AltSpawn) -> None:
        plan: list[tuple[int, Alternative, bool]] = world.op_result
        pages = len(world.heap.space.table)
        total_fork = self.profile.fork_cost(pages) * sum(
            1 for _, _, passed in plan if passed
        )
        group = AltGroup(
            group_id=self._group_ids.next(),
            parent_wid=world.wid,
            parent_pid=world.pid,
            issued_at=self.now - total_fork,
            spawned_at=self.now,
        )
        group.overhead.setup_s += total_fork
        self.groups[group.group_id] = group
        world.own_group = group
        if self.obs is not None:
            self.obs.block_opened(group, world)

        spawn_list: list[tuple[int, Alternative]] = []
        child_pids: list[int] = []
        for index, alt, passed in plan:
            pid = self._pids.next()
            group.child_pids.append(pid)
            if not passed:
                group.records[pid] = sc.ChildRecord(
                    pid=pid, index=index, name=alt.name,
                    status="guard-rejected",
                    reason="guard rejected before spawn",
                    finished_at=self.now,
                )
                continue
            child_pids.append(pid)
            spawn_list.append((pid, alt))
            group.records[pid] = sc.ChildRecord(pid=pid, index=index, name=alt.name)

        for pid, alt in spawn_list:
            plain = not inspect.isgeneratorfunction(alt.fn)
            group.plain[pid] = plain
            group.alt_by_pid[pid] = alt
            program = _plain_program(alt) if plain else alt.fn
            predicates = world.predicates.child_predicates(pid, child_pids)
            child = SimProcess(
                wid=self._wids.next(),
                pid=pid,
                name=f"{world.name}/{alt.name}",
                program=program,
                heap=world.heap.fork(),
                predicates=predicates,
                birth_predicates=predicates,
                parent_wid=world.wid,
                alt_group=group,
            )
            world.child_pids.append(pid)
            self._register(child)
            self._fork_readers(world.wid, child.wid)
            # IN_CHILD entry guard for generator programs (plain wrappers
            # perform their own entry check).
            if (
                not plain
                and alt.guard.placement & GuardPlacement.IN_CHILD
                and alt.guard.check is not None
            ):
                try:
                    passed = alt.guard.passes_entry(child.heap.as_dict())
                except Exception:
                    passed = False
                if not passed:
                    self._finish_abort(child, "guard rejected entry")
                    continue
            if alt.start_delay > 0:
                child.state = ProcState.SLEEPING
                self._set_timer(child, self.now + alt.start_delay, "sleep")
                self.trace.record(
                    self.now, "stagger", child.pid, wid=child.wid,
                    delay=alt.start_delay,
                )
            else:
                self._start_world(child)

        self.trace.record(
            self.now, "alt-spawn", world.pid, wid=world.wid,
            group=group.group_id, children=list(child_pids),
        )
        self._log(world, op, list(group.child_pids))
        if not spawn_list:
            self._settle_failure(group)
        self._advance(world, list(group.child_pids))

    def _sync_guard_ok(self, group: AltGroup, world: SimProcess, value: Any) -> bool:
        """Evaluate the result guard at the synchronization point."""
        alt = group.alt_by_pid.get(world.pid)
        if alt is None or alt.guard.accept is None:
            return True
        placement = alt.guard.placement
        kernel_checks = bool(placement & GuardPlacement.AT_SYNC) or (
            bool(placement & GuardPlacement.IN_CHILD) and not group.plain[world.pid]
        )
        if not kernel_checks:
            return True
        try:
            return bool(alt.guard.passes_result(world.heap.as_dict(), value))
        except Exception:
            return False

    def _finish_normal(self, world: SimProcess, value: Any) -> None:
        """A program returned: attempt synchronization / completion."""
        extra = world.extra_predicates()
        if extra.unresolved:
            world.state = ProcState.BLOCKED_SYNC
            world.pending_finish = ("done", value)
            self.trace.record(
                self.now, "sync-defer", world.pid, wid=world.wid, extra=str(extra)
            )
            return
        group = world.alt_group
        if group is not None:
            self._child_sync(world, group, value)
            return
        world.state = ProcState.DONE
        world.result = value
        world.finished_at = self.now
        self._committed.add(world.pid)
        self.trace.record(self.now, "done", world.pid, wid=world.wid)
        if self.obs is not None:
            self.obs.world_finished(self.now, world, "committed")
        self._resolve_fact(world_key(world.wid), True)
        self._resolve_fact(world.pid, True)

    def _child_sync(self, world: SimProcess, group: AltGroup, value: Any) -> None:
        rec = group.records[world.pid]
        if group.settled:
            # a winner already committed (or the block failed/timed out);
            # this late finisher is eliminated.
            self._kill_world(world, "lost the race", status="eliminated")
            return
        if not self._sync_guard_ok(group, world, value):
            self._finish_abort(world, "guard rejected result at sync")
            return
        # the winner decision becomes durable *before* any state mutates:
        # a crash from here on rolls forward to the same winner
        sync_seq = None
        if self.journal is not None:
            sync_seq = self.journal.begin(
                "sync", group=group.group_id,
                winner_pid=world.pid, winner_wid=world.wid,
            )
            self.journal.seal(sync_seq)
        # the "at most once" synchronization: this world wins the block
        group.settled = True
        group.winner_pid = world.pid
        group.winner_value = value
        group.committed_at = self.now
        rec.status = "committed"
        rec.value = value
        rec.finished_at = self.now
        self._committed.add(world.pid)
        world.state = ProcState.DONE
        world.result = value
        world.finished_at = self.now
        self.trace.record(
            self.now, "commit", world.pid, wid=world.wid, group=group.group_id
        )
        if self.obs is not None:
            self.obs.world_finished(
                self.now, world, "committed", group=group.group_id
            )
        # count the victims first, then let the completion fact eliminate
        # them (they all assume ¬complete(winner))
        losers = [
            w
            for pid in group.child_pids
            if pid != world.pid
            for w in self.pid_worlds.get(pid, [])
            if self.worlds[w].alive
        ]
        group.n_eliminated = len(losers)
        self._resolve_fact(world_key(world.wid), True)
        self._resolve_fact(world.pid, True)
        for wid in losers:  # safety net; normally dead via the fact cascade
            target = self.worlds.get(wid)
            if target is not None and target.alive:
                self._kill_world(target, "sibling eliminated", status="eliminated")
        parent = self.worlds.get(group.parent_wid)
        if parent is not None and parent.alive and group.waiting:
            if parent.state is not ProcState.BLOCKED_ALT:  # pragma: no cover
                raise KernelError("waiting parent in unexpected state")
            parent.bump_timer()  # cancel the alt_wait timeout
            self._deliver_alt_outcome(parent, group)
        if sync_seq is not None:
            self.journal.mark_applied(sync_seq)

    def _settle_failure(self, group: AltGroup) -> None:
        """Every alternative failed: the failure alternative is selected."""
        if group.settled:
            return
        group.settled = True
        group.committed_at = self.now
        self.trace.record(
            self.now, "block-failed", group.parent_pid, group=group.group_id
        )
        parent = self.worlds.get(group.parent_wid)
        if parent is not None and parent.alive and group.waiting:
            parent.bump_timer()
            self._deliver_alt_outcome(parent, group)

    def _timeout_group(self, parent: SimProcess, group: AltGroup) -> None:
        group.settled = True
        group.timed_out = True
        group.committed_at = self.now
        victims = [
            w
            for pid in group.child_pids
            for w in self.pid_worlds.get(pid, [])
            if self.worlds[w].alive
        ]
        group.n_eliminated = len(victims)
        for wid in victims:
            target = self.worlds.get(wid)
            if target is not None and target.alive:
                self._kill_world(target, "block timeout", status="timeout-killed")
        self.trace.record(
            self.now, "block-timeout", group.parent_pid, group=group.group_id
        )
        self._deliver_alt_outcome(parent, group)

    def _deliver_alt_outcome(self, parent: SimProcess, group: AltGroup) -> None:
        """Build the AltOutcome, swap heaps, charge elimination, resume parent."""
        elim_cost = self.profile.elimination_cost(
            group.n_eliminated, group.policy is EliminationPolicy.SYNCHRONOUS
        )
        group.overhead.completion_s += elim_cost

        winner_index = None
        if group.winner_pid is not None:
            winner_index = group.records[group.winner_pid].index
            winner_world = next(
                (
                    self.worlds[w]
                    for w in self.pid_worlds.get(group.winner_pid, [])
                    if self.worlds[w].state is ProcState.DONE
                ),
                None,
            )
            if winner_world is None:  # pragma: no cover - defensive
                raise KernelError("winner world vanished before commit")
            commit_seq = None
            if self.journal is not None:
                commit_seq = self.journal.begin(
                    "commit", group=group.group_id,
                    winner_pid=group.winner_pid, winner_wid=winner_world.wid,
                    parent_wid=parent.wid,
                )
                self.journal.seal(commit_seq)
            parent.heap.replace_with(winner_world.heap)
            self._transfer_staging(winner_world, parent)
            self._transfer_readers(winner_world.wid, parent.wid)
            if commit_seq is not None:
                self.journal.mark_applied(commit_seq)

        parent_cost = 0.0
        if group.policy is EliminationPolicy.SYNCHRONOUS:
            parent_cost = elim_cost
        elif elim_cost > 0:
            self._spawn_reaper(elim_cost, group.group_id)
        group.parent_resumed_at = self.now + parent_cost

        value = group.winner_value
        if group.timed_out:
            value = sc.TIMEOUT
        outcome = sc.AltOutcome(
            winner_index=winner_index,
            winner_pid=group.winner_pid,
            value=value,
            timed_out=group.timed_out,
            spawned_at=group.issued_at,
            committed_at=group.committed_at if group.committed_at is not None else self.now,
            parent_resumed_at=group.parent_resumed_at,
            overhead=group.overhead,
            children=sorted(group.records.values(), key=lambda r: r.index),
        )
        parent.own_group = None
        if self.obs is not None:
            self.obs.block_settled(self.now, group)
        if parent_cost > 0:
            self._park_costed(parent, _InternalOp("alt-outcome"), parent_cost, outcome)
        else:
            self._log(parent, sc.AltWait(), outcome)
            self._advance(parent, outcome)

    def _spawn_reaper(self, cost: float, group_id: int) -> None:
        """Asynchronous elimination: background CPU work nobody waits for."""

        def reaper(ctx: Context):
            yield sc.Compute(cost)

        pid = self._pids.next()
        world = SimProcess(
            wid=self._wids.next(),
            pid=pid,
            name=f"reaper-g{group_id}",
            program=reaper,
            heap=PagedHeap(pool=self.pool),
        )
        self._register(world)
        self._start_world(world)

    def _transfer_staging(self, child: SimProcess, parent: SimProcess) -> None:
        """Move the winner's staged sink writes up to the parent's world.

        If the parent itself is speculative the journals migrate to the
        parent's world id; otherwise they flush (become permanent).
        """
        for name in sorted(child.staged_devices):
            device = self.devices.get(name)
            if not isinstance(device, SinkDevice):
                continue
            if parent.speculative:
                if device.transfer_world(child.wid, parent.wid):
                    parent.staged_devices.add(name)
            else:
                device.commit_world(child.wid)
        child.staged_devices.clear()

    # ------------------------------------------------------------------
    # death and resolution
    # ------------------------------------------------------------------
    def _finish_abort(self, world: SimProcess, reason: str) -> None:
        """A world failed (guard, Abort syscall or uncaught exception)."""
        if not world.alive:
            return
        world.state = ProcState.ABORTED
        world.error = reason
        world.finished_at = self.now
        self.trace.record(self.now, "abort", world.pid, wid=world.wid, reason=reason)
        if self.obs is not None:
            self.obs.world_finished(self.now, world, "aborted", reason=reason)
        self._after_world_death(world, reason, status="aborted")

    def _kill_world(self, world: SimProcess, reason: str, status: str = "eliminated") -> None:
        if not world.alive:
            return
        elim_seq = None
        if self.journal is not None:
            elim_seq = self.journal.begin(
                "eliminate", wid=world.wid, pid=world.pid, status=status,
            )
            self.journal.seal(elim_seq)
        world.state = ProcState.KILLED
        world.error = reason
        world.finished_at = self.now
        self.trace.record(self.now, "kill", world.pid, wid=world.wid, reason=reason)
        if self.obs is not None:
            self.obs.world_finished(
                self.now, world, "eliminated", reason=reason, status=status
            )
        self._after_world_death(world, reason, status=status)
        if elim_seq is not None:
            self.journal.mark_applied(elim_seq)

    def _after_world_death(self, world: SimProcess, reason: str, status: str) -> None:
        # cancel any scheduled timeslice and free the CPU immediately
        if world.slice_event is not None and not world.slice_event.cancelled:
            world.slice_event.cancelled = True
            world.slice_event = None
            self._cpus_busy -= 1
        world.bump_dispatch()
        world.bump_timer()
        if world.heap is not None:
            world.heap.release()
        for name in world.staged_devices:
            device = self.devices.get(name)
            if isinstance(device, SinkDevice):
                device.discard_world(world.wid)
        world.staged_devices.clear()
        # subtree: alternative children of a dead world cannot survive
        for pid in world.child_pids:
            for wid in list(self.pid_worlds.get(pid, [])):
                target = self.worlds.get(wid)
                if target is not None and target.alive:
                    self._kill_world(
                        target, f"parent world died: {reason}", status="eliminated"
                    )
        # group bookkeeping + pid-level completion fact
        live_others = [
            w for w in self.pid_worlds.get(world.pid, []) if self.worlds[w].alive
        ]
        # drop the dead world's replay positions so loser buffers don't
        # accumulate across blocks: sink-style gates key by wid, buffered
        # sources key by pid (only safe to forget once the pid is gone)
        pid_gone = not live_others and world.pid not in self._committed
        for device in self.devices.values():
            forget = getattr(device, "forget_client", None)
            if forget is None:
                continue
            if isinstance(device, SinkDevice):
                forget(world.wid)
            elif pid_gone:
                forget(world.pid)
        # this specific world is gone, whatever happens to the pid
        self._resolve_fact(world_key(world.wid), False)
        if not live_others and world.pid not in self._committed:
            group = world.alt_group
            if group is not None:
                rec = group.records.get(world.pid)
                if rec is not None and rec.status == "spawned":
                    rec.status = status
                    rec.reason = reason
                    rec.finished_at = self.now
                if not group.settled and not group.live_child_pids():
                    self._settle_failure(group)
            self._resolve_fact(world.pid, False)

    def _resolve_fact(self, pid: int, completed: bool) -> None:
        """Record complete(pid) and cascade through every live world."""
        if pid in self.facts:
            if self.facts[pid] != completed:  # pragma: no cover - invariant
                raise KernelError(f"contradictory completion facts for pid {pid}")
            return
        self.facts[pid] = completed
        self.trace.record(self.now, "fact", pid, completed=completed)
        # pass 1: eliminate every world whose assumptions are now false,
        # so the survivors' retries below see a consistent population.
        touched: list[SimProcess] = []
        for world in list(self.worlds.values()):
            if not world.alive:
                continue
            updated = world.predicates.resolve(pid, completed)
            if updated is None:
                # assumption violated: eliminate this world; its own
                # pid-level fact (if it was the last world) cascades via
                # the kill path.
                self._kill_world(world, f"assumption about pid {pid} failed")
                continue
            world.mailbox.resolve(pid, completed)
            if updated is not world.predicates:
                touched.append(world)
        # pass 2: shrink survivors' predicate sets; this may unblock
        # staged sinks, gated sources and deferred synchronizations.
        # Recompute from the *current* set — nested facts resolved during
        # pass 1 kills may already have shrunk it further.
        for world in touched:
            if not world.alive:
                continue
            updated = world.predicates.resolve(pid, completed)
            if updated is None:  # pragma: no cover - defensive
                self._kill_world(world, f"assumption about pid {pid} failed")
                continue
            if updated is not world.predicates:
                world.predicates = updated
            if not world.predicates.unresolved:
                self._on_unpredicated(world)
            elif world.state is ProcState.BLOCKED_SYNC:
                self._retry_sync(world)
        # worlds blocked at recv may now be able to act on queued messages
        # whose predicates just changed
        for world in list(self.worlds.values()):
            if world.alive and world.state is ProcState.BLOCKED_RECV and world.mailbox:
                self._pump_blocked_receiver(world)

    def _retry_sync(self, world: SimProcess) -> None:
        """A BLOCKED_SYNC world re-attempts completion after resolution."""
        if world.state is not ProcState.BLOCKED_SYNC or world.pending_finish is None:
            return
        if world.extra_predicates().unresolved:
            return
        _, value = world.pending_finish
        world.pending_finish = None
        self.trace.record(self.now, "sync-retry", world.pid, wid=world.wid)
        self._finish_normal(world, value)

    def _on_unpredicated(self, world: SimProcess) -> None:
        """A world's last assumption resolved: flush staging, unblock."""
        self.trace.record(self.now, "unpredicated", world.pid, wid=world.wid)
        for name in sorted(world.staged_devices):
            device = self.devices.get(name)
            if isinstance(device, SinkDevice):
                device.commit_world(world.wid)
        world.staged_devices.clear()
        if world.state is ProcState.BLOCKED_SOURCE and world.blocked_source_op is not None:
            op = world.blocked_source_op
            world.blocked_source_op = None
            self.trace.record(self.now, "source-unblock", world.pid, wid=world.wid)
            self._park_costed(world, op, self.profile.device_latency_s, None)
        elif world.state is ProcState.BLOCKED_SYNC:
            self._retry_sync(world)
