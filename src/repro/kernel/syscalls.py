"""Syscall objects yielded by simulated programs.

A simulated program is a generator function ``prog(ctx)``; each ``yield``
hands the kernel one of these objects and receives the operation's result:

    def prog(ctx):
        yield Compute(0.5)                  # burn 0.5 s of virtual CPU
        yield HeapPut("x", 41)              # COW-paged state update
        x = yield HeapGet("x")
        msg = yield Recv()                  # may split this world!
        yield Send(msg.sender, x + 1)
        return "done"

Programs must be deterministic given their syscall results — that is what
makes world cloning by replay sound. All randomness therefore flows
through :class:`Draw`, whose results the kernel logs like any other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative
from repro.core.policy import EliminationPolicy


class _Timeout:
    """Singleton returned by Recv/AltWait when the timeout fires first."""

    _instance: "_Timeout | None" = None

    def __new__(cls) -> "_Timeout":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TIMEOUT"

    def __bool__(self) -> bool:
        return False


#: Sentinel result for timed-out blocking operations.
TIMEOUT = _Timeout()


class Syscall:
    """Base class of everything a program may yield."""

    __slots__ = ()


@dataclass(frozen=True)
class Compute(Syscall):
    """Occupy a CPU for ``seconds`` of virtual time."""

    seconds: float


@dataclass(frozen=True)
class Sleep(Syscall):
    """Wait ``seconds`` of virtual time without occupying a CPU."""

    seconds: float


@dataclass(frozen=True)
class HeapPut(Syscall):
    """Store ``value`` under ``key`` in this process's paged heap.

    Costs virtual time proportional to the COW page copies the write
    actually triggers.
    """

    key: str
    value: Any


@dataclass(frozen=True)
class HeapGet(Syscall):
    """Read ``key`` from the heap; returns ``default`` when absent."""

    key: str
    default: Any = None


@dataclass(frozen=True)
class HeapDelete(Syscall):
    """Remove ``key`` from the heap (no-op when absent)."""

    key: str


@dataclass(frozen=True)
class HeapSnapshot(Syscall):
    """The whole heap as a plain dict (read-only convenience)."""


@dataclass(frozen=True)
class Send(Syscall):
    """Send ``data`` to process ``dest``; stamps the sender's predicates.

    Returns the message id. Transfer cost is charged to the sender.
    """

    dest: int
    data: Any


@dataclass(frozen=True)
class Recv(Syscall):
    """Receive the next acceptable message; may SPLIT this world.

    Returns a :class:`repro.ipc.message.Message`, or :data:`TIMEOUT`
    when ``timeout`` (virtual seconds) elapses first.
    """

    timeout: float | None = None


@dataclass(frozen=True)
class AltSpawn(Syscall):
    """Spawn one world per alternative (paper's ``alt_spawn(n)``).

    ``alternatives`` may be :class:`~repro.core.alternative.Alternative`
    objects, generator program functions, or plain callables (run against
    a dict workspace with ``sim_cost`` virtual duration). Returns the list
    of child pids. The parent must not mutate its heap until the matching
    :class:`AltWait` — the paper's parent stays blocked for consistency.
    """

    alternatives: Sequence[Any]


@dataclass(frozen=True)
class AltWait(Syscall):
    """Parent side of the synchronization (paper's ``alt_wait(TIMEOUT)``).

    Blocks until the first successful child commits, every child fails, or
    ``timeout`` virtual seconds pass. Returns an :class:`AltOutcome`.
    """

    timeout: float | None = None
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS


@dataclass(frozen=True)
class Abort(Syscall):
    """Terminate this world unsuccessfully (guard failure path)."""

    reason: str = ""


@dataclass(frozen=True)
class DeviceWrite(Syscall):
    """Write to a named device.

    Sink devices stage the write per-world while this process is
    speculative; sources are gated (block or error) until predicates
    resolve.
    """

    device: str
    data: bytes
    offset: int = 0


@dataclass(frozen=True)
class DeviceRead(Syscall):
    """Read from a named device (same gating rules as writes)."""

    device: str
    nbytes: int
    offset: int = 0


@dataclass(frozen=True)
class Draw(Syscall):
    """Kernel-mediated randomness (replay-safe).

    ``kind`` is one of ``uniform``, ``angle``, ``integers``,
    ``exponential``, ``normal``; ``args`` are passed through to
    :class:`repro.util.rng.ReplayableRNG`.
    """

    kind: str
    args: tuple = ()


@dataclass(frozen=True)
class Now(Syscall):
    """The current virtual time in seconds."""


@dataclass(frozen=True)
class GetPid(Syscall):
    """This world's process id."""


@dataclass(frozen=True)
class GetPredicates(Syscall):
    """This world's current predicate set (introspection)."""


@dataclass
class ChildRecord:
    """Postmortem of one alternative child within an AltOutcome."""

    pid: int
    index: int
    name: str
    status: str = "spawned"  # spawned|committed|aborted|eliminated|timeout-killed
    value: Any = None
    reason: str = ""
    finished_at: float | None = None


@dataclass
class AltOutcome:
    """Result of :class:`AltWait` as seen by the parent program."""

    winner_index: int | None
    winner_pid: int | None
    value: Any
    timed_out: bool = False
    spawned_at: float = 0.0
    committed_at: float = 0.0
    parent_resumed_at: float = 0.0
    overhead: OverheadBreakdown = field(default_factory=OverheadBreakdown)
    children: list[ChildRecord] = field(default_factory=list)

    @property
    def failed(self) -> bool:
        return self.winner_index is None

    @property
    def elapsed_s(self) -> float:
        """Spawn-to-commit virtual time (excludes elimination)."""
        return self.committed_at - self.spawned_at

    @property
    def response_s(self) -> float:
        """Spawn-to-parent-resume virtual time — the paper's metric.

        Includes synchronous elimination; asynchronous elimination keeps
        this equal to :attr:`elapsed_s` (paper section 2.2.1).
        """
        return self.parent_resumed_at - self.spawned_at


def normalize_alternative(alt: Any, index: int) -> Alternative:
    """Coerce an AltSpawn entry into an :class:`Alternative`."""
    if isinstance(alt, Alternative):
        return alt
    if callable(alt):
        return Alternative(alt, name=getattr(alt, "__name__", f"alt{index}"))
    raise TypeError(f"cannot use {alt!r} as an alternative")
