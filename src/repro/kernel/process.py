"""Simulated process records and alternative-group bookkeeping.

Identity model
--------------

The paper's predicates name *processes* (logical computations). A message
split (section 2.4.2) creates "two copies of the receiver" which are the
same logical process under different assumptions. We therefore separate:

- **pid** — the logical process id predicates and messages refer to; all
  split copies of a receiver share it;
- **wid** — the unique world (instance) id the kernel schedules by.

``complete(pid)`` resolves TRUE when any world of ``pid`` synchronizes
successfully, and FALSE when the last world of ``pid`` dies without having
done so.

A world whose predicate set has grown beyond its *birth predicates*
(through message acceptance) may not complete observably until the extra
assumptions resolve — it parks in ``BLOCKED_SYNC``. This closes the
soundness gap of committing a world whose defining assumptions could
still prove false.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative
from repro.core.policy import EliminationPolicy
from repro.core.predicates import PredicateSet
from repro.ipc.mailbox import Mailbox
from repro.kernel.syscalls import ChildRecord
from repro.memory.heap import PagedHeap


class ProcState(enum.Enum):
    """Lifecycle of one simulated world."""

    READY = "ready"  # has a costed op, waiting for a CPU
    RUNNING = "running"  # a timeslice is scheduled
    BLOCKED_RECV = "blocked-recv"
    BLOCKED_ALT = "blocked-alt-wait"
    BLOCKED_SOURCE = "blocked-source"  # speculative, tried to touch a source
    BLOCKED_SYNC = "blocked-sync"  # finished, but extra predicates unresolved
    SLEEPING = "sleeping"
    DONE = "done"
    ABORTED = "aborted"
    KILLED = "killed"  # eliminated by resolution, timeout or subtree kill

    @property
    def alive(self) -> bool:
        return self not in (ProcState.DONE, ProcState.ABORTED, ProcState.KILLED)

    @property
    def blocked(self) -> bool:
        return self in (
            ProcState.BLOCKED_RECV,
            ProcState.BLOCKED_ALT,
            ProcState.BLOCKED_SOURCE,
            ProcState.BLOCKED_SYNC,
            ProcState.SLEEPING,
        )


@dataclass
class AltGroup:
    """One alt_spawn/alt_wait block in flight.

    ``child_pids`` are logical pids (one per alternative actually
    spawned); ``records`` hold per-pid postmortems. Overheads accumulate
    into the paper's three buckets: setup (forks), runtime (COW copies in
    children), completion (commit + sibling elimination).
    """

    group_id: int
    parent_wid: int
    parent_pid: int
    child_pids: list[int] = field(default_factory=list)
    alt_by_pid: dict[int, Alternative] = field(default_factory=dict)
    plain: dict[int, bool] = field(default_factory=dict)  # pid -> wrapped plain fn?
    n_eliminated: int = 0
    policy: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS
    timeout: float | None = None
    issued_at: float = 0.0  # AltSpawn yielded
    spawned_at: float = 0.0  # children created
    winner_pid: int | None = None
    winner_value: Any = None
    committed_at: float | None = None
    parent_resumed_at: float | None = None
    timed_out: bool = False
    overhead: OverheadBreakdown = field(default_factory=OverheadBreakdown)
    records: dict[int, ChildRecord] = field(default_factory=dict)
    waiting: bool = False  # parent is blocked in AltWait
    settled: bool = False  # outcome decided (winner, all-failed, or timeout)

    def live_child_pids(self) -> list[int]:
        return [pid for pid, rec in self.records.items() if rec.status == "spawned"]


@dataclass
class SimProcess:
    """One simulated world (instance of a logical process)."""

    wid: int
    pid: int
    name: str
    program: Callable[..., Generator]
    args: tuple = ()
    heap: PagedHeap | None = None
    predicates: PredicateSet = field(default_factory=PredicateSet)
    birth_predicates: PredicateSet = field(default_factory=PredicateSet)
    state: ProcState = ProcState.READY
    parent_wid: int | None = None
    #: logical pids of alt-children this world spawned (for subtree kills)
    child_pids: list[int] = field(default_factory=list)

    # generator machinery
    gen: Generator | None = None
    started: bool = False
    #: replay log: (syscall class name, result) for every completed syscall
    log: list[tuple[str, Any]] = field(default_factory=list)
    cloned_from: int | None = None  # wid of the split original

    # scheduling
    current_op: Any = None
    op_remaining: float = 0.0
    op_result: Any = None
    dispatch_token: int = 0
    timer_token: int = 0
    slice_event: Any = None  # live _Event while RUNNING

    # alt-block roles
    alt_group: AltGroup | None = None  # the block this world is a CHILD of
    own_group: AltGroup | None = None  # the outstanding block this world spawned

    # deferred completion (BLOCKED_SYNC)
    pending_finish: tuple[str, Any] | None = None  # ("done"|..., value)

    # blocking details
    blocked_recv_deadline: float | None = None

    # accounting / results
    cpu_time_s: float = 0.0
    result: Any = None
    error: str | None = None
    finished_at: float | None = None
    mailbox: Mailbox = None  # type: ignore[assignment]
    #: sink device names with writes staged on behalf of this world
    staged_devices: set[str] = field(default_factory=set)
    #: source syscall waiting for predicates to clear
    blocked_source_op: Any = None

    def __post_init__(self) -> None:
        if self.mailbox is None:
            self.mailbox = Mailbox(self.pid)

    @property
    def alive(self) -> bool:
        return self.state.alive

    @property
    def speculative(self) -> bool:
        """True while this world carries any unresolved assumption."""
        return self.predicates.unresolved

    def extra_predicates(self) -> PredicateSet:
        """Assumptions acquired after birth (message splits/acceptance)."""
        return PredicateSet(
            self.predicates.must - self.birth_predicates.must,
            self.predicates.cant - self.birth_predicates.cant,
        )

    def bump_dispatch(self) -> int:
        self.dispatch_token += 1
        return self.dispatch_token

    def bump_timer(self) -> int:
        self.timer_token += 1
        return self.timer_token

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SimProcess(wid={self.wid}, pid={self.pid}, "
            f"name={self.name!r}, state={self.state.value})"
        )
