"""Kernel event traces.

Every interesting kernel action can be recorded as a :class:`TraceEvent`;
the Figure 1 / Figure 2 benches render these into the paper's diagrams in
text form, and tests assert ordering properties against them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped kernel event."""

    time: float
    kind: str
    pid: int
    info: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        details = ", ".join(f"{k}={v}" for k, v in sorted(self.info.items()))
        return f"[{self.time:12.6f}s] pid {self.pid:>4} {self.kind:<18} {details}"


class Trace:
    """An append-only event log with simple query helpers."""

    def __init__(self, enabled: bool = True, limit: int | None = None) -> None:
        self.enabled = enabled
        self.limit = limit
        self.events: list[TraceEvent] = []
        #: Events discarded because ``limit`` was reached. A truncated
        #: log is not a complete one: query helpers still work, but
        #: ordering assertions against a clipped trace are unsound, so
        #: callers should check this (``render()`` flags it too).
        self.dropped = 0

    def record(self, time: float, kind: str, pid: int, **info: Any) -> None:
        if not self.enabled:
            return
        if self.limit is not None and len(self.events) >= self.limit:
            self.dropped += 1
            return
        self.events.append(TraceEvent(time, kind, pid, info))

    def of_kind(self, *kinds: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind in kinds]

    def for_pid(self, pid: int) -> list[TraceEvent]:
        return [e for e in self.events if e.pid == pid]

    def render(self) -> str:
        body = "\n".join(str(e) for e in self.events)
        if self.dropped:
            note = (
                f"[trace truncated: {self.dropped} event(s) dropped past "
                f"limit={self.limit}]"
            )
            return f"{body}\n{note}" if body else note
        return body

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)
