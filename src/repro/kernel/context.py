"""The handle a simulated program receives.

``Context`` is a thin namespace of syscall constructors plus the process
id. Programs do ``result = yield ctx.recv()`` — every method returns a
syscall object for the program to yield. The composite helpers
(:meth:`run_alternatives`, :meth:`print`) are generators to delegate to
with ``yield from``.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from repro.core.policy import EliminationPolicy
from repro.kernel import syscalls as sc


class Context:
    """Per-process syscall factory handed to every simulated program."""

    def __init__(self, pid: int, name: str) -> None:
        self.pid = pid
        self.name = name

    # -- basic ops ---------------------------------------------------------
    def compute(self, seconds: float) -> sc.Compute:
        return sc.Compute(seconds)

    def sleep(self, seconds: float) -> sc.Sleep:
        return sc.Sleep(seconds)

    def now(self) -> sc.Now:
        return sc.Now()

    def abort(self, reason: str = "") -> sc.Abort:
        return sc.Abort(reason)

    # -- heap ------------------------------------------------------------------
    def put(self, key: str, value: Any) -> sc.HeapPut:
        return sc.HeapPut(key, value)

    def get(self, key: str, default: Any = None) -> sc.HeapGet:
        return sc.HeapGet(key, default)

    def delete(self, key: str) -> sc.HeapDelete:
        return sc.HeapDelete(key)

    def snapshot(self) -> sc.HeapSnapshot:
        return sc.HeapSnapshot()

    # -- IPC ----------------------------------------------------------------------
    def send(self, dest: int, data: Any) -> sc.Send:
        return sc.Send(dest, data)

    def recv(self, timeout: float | None = None) -> sc.Recv:
        return sc.Recv(timeout)

    # -- worlds ---------------------------------------------------------------------
    def alt_spawn(self, alternatives: Sequence[Any]) -> sc.AltSpawn:
        return sc.AltSpawn(tuple(alternatives))

    def alt_wait(
        self,
        timeout: float | None = None,
        elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    ) -> sc.AltWait:
        return sc.AltWait(timeout, elimination)

    def run_alternatives(
        self,
        alternatives: Sequence[Any],
        timeout: float | None = None,
        elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    ) -> Generator[Any, Any, sc.AltOutcome]:
        """Spawn + wait in one step: ``outcome = yield from ctx.run_alternatives(...)``."""
        yield sc.AltSpawn(tuple(alternatives))
        outcome = yield sc.AltWait(timeout, elimination)
        return outcome

    # -- devices ----------------------------------------------------------------------
    def device_write(self, device: str, data: bytes, offset: int = 0) -> sc.DeviceWrite:
        return sc.DeviceWrite(device, data, offset)

    def device_read(self, device: str, nbytes: int, offset: int = 0) -> sc.DeviceRead:
        return sc.DeviceRead(device, nbytes, offset)

    def print(self, text: str) -> Generator[Any, Any, None]:
        """Write a line to the teletype: ``yield from ctx.print("hi")``.

        Subject to source gating: a speculative world blocks here until
        its predicates resolve.
        """
        yield sc.DeviceWrite("tty", (text + "\n").encode())

    # -- randomness ------------------------------------------------------------------------
    def uniform(self, low: float = 0.0, high: float = 1.0) -> sc.Draw:
        return sc.Draw("uniform", (low, high))

    def integers(self, low: int, high: int) -> sc.Draw:
        return sc.Draw("integers", (low, high))

    def angle(self) -> sc.Draw:
        return sc.Draw("angle", ())

    def exponential(self, scale: float = 1.0) -> sc.Draw:
        return sc.Draw("exponential", (scale,))

    def normal(self, loc: float = 0.0, scale: float = 1.0) -> sc.Draw:
        return sc.Draw("normal", (loc, scale))

    # -- introspection ---------------------------------------------------------------------
    def predicates(self) -> sc.GetPredicates:
        return sc.GetPredicates()

    def getpid(self) -> sc.GetPid:
        return sc.GetPid()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Context(pid={self.pid}, name={self.name!r})"
