"""The paper's three selection schemes (section 3.2).

Given N alternative methods C_1..C_N for the same computation:

- **Scheme A** — apply statistical knowledge ("quicksort is almost always
  O(n log n)"): pick the method with the best historical record.
- **Scheme B** — pick uniformly at random; repeated over an input this
  performs at the arithmetic mean C_mean, and is *frustrated by failures
  or infinite loops* (a random pick can land on a diverging method).
- **Scheme C** — run all alternatives concurrently, select the first
  acceptable output, terminate the rest (Multiple Worlds).

Scheme C is implemented by the backends; this module supplies the A and B
selectors plus C's analytic expectation so benches can compare all three.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.analysis.model import c_best, c_mean


def scheme_a(history: Sequence[Sequence[float]]) -> int:
    """Pick the alternative with the lowest historical mean runtime.

    ``history`` is a (runs × alternatives) matrix of past runtimes;
    failed/diverged runs should be recorded as ``math.inf``. Relies on
    "information which may not be available" — with an empty or
    uninformative history the choice is arbitrary (index 0).
    """
    arr = np.asarray(history, dtype=float)
    if arr.size == 0:
        return 0
    if arr.ndim != 2:
        raise ValueError("history must be a (runs × alternatives) matrix")
    means = arr.mean(axis=0)
    if np.all(np.isinf(means)):
        return 0
    return int(np.nanargmin(np.where(np.isinf(means), np.nan, means)))


def scheme_b(n_alternatives: int, rng) -> int:
    """Pick an alternative uniformly at random.

    ``rng`` is anything exposing ``integers(low, high)`` — e.g.
    :class:`repro.util.rng.ReplayableRNG` or ``numpy.random.Generator``.
    """
    if n_alternatives <= 0:
        raise ValueError("need at least one alternative")
    return int(rng.integers(0, n_alternatives))


def scheme_b_expectation(times: Sequence[float]) -> float:
    """Expected runtime of Scheme B on one input: C_mean.

    Any ``inf`` entry (failure / infinite loop) makes the expectation
    infinite — the paper's observation that failures frustrate Scheme B.
    """
    if any(math.isinf(t) for t in times):
        return math.inf
    return c_mean(times)


def scheme_c_expectation(times: Sequence[float], overhead: float = 0.0) -> float:
    """Expected runtime of Scheme C on one input: C_best + overhead.

    Diverging alternatives cost nothing extra as long as at least one
    alternative terminates — they are eliminated when the winner commits.
    """
    finite = [t for t in times if not math.isinf(t)]
    if not finite:
        return math.inf
    return c_best(finite) + overhead


def scheme_comparison(times: Sequence[float], overhead: float = 0.0,
                      history: Sequence[Sequence[float]] | None = None) -> dict[str, float]:
    """Expected runtimes of all three schemes on one input.

    Scheme A's entry uses the historically best alternative's time on
    *this* input (which may be far from this input's best — that is the
    scheme's weakness).
    """
    pick_a = scheme_a(history) if history is not None else 0
    return {
        "scheme_a": float(times[pick_a]),
        "scheme_b": scheme_b_expectation(times),
        "scheme_c": scheme_c_expectation(times, overhead),
    }
