"""Results of executing an alternative block."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analysis.overhead import OverheadBreakdown


class _Failure:
    """Singleton marking the failure alternative's selection."""

    _instance: "_Failure | None" = None

    def __new__(cls) -> "_Failure":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "FAILURE"

    def __bool__(self) -> bool:
        return False


#: Returned as ``BlockOutcome.value`` when every alternative failed.
FAILURE = _Failure()


@dataclass
class AlternativeResult:
    """What one alternative produced (winner or postmortem record)."""

    index: int
    name: str
    value: Any = None
    succeeded: bool = False
    guard_failed: bool = False
    error: str | None = None
    elapsed_s: float = 0.0


@dataclass
class BlockOutcome:
    """The overall result of one alternative block execution.

    ``winner`` is the selected alternative (or ``None`` on failure);
    ``value`` is its result or :data:`FAILURE`. ``elapsed_s`` is wall
    clock for real backends and virtual time for the simulator.
    """

    winner: AlternativeResult | None
    elapsed_s: float
    overhead: OverheadBreakdown = field(default_factory=OverheadBreakdown)
    timed_out: bool = False
    losers: list[AlternativeResult] = field(default_factory=list)
    extras: dict[str, Any] = field(default_factory=dict)

    @property
    def failed(self) -> bool:
        return self.winner is None

    @property
    def value(self) -> Any:
        if self.winner is None:
            return FAILURE
        return self.winner.value

    @property
    def degraded(self) -> bool:
        """True when a supervisor fell back to a weaker backend."""
        return bool(self.extras.get("degraded"))

    @property
    def attempts(self) -> int:
        """How many supervised attempts this outcome took (1 if unsupervised)."""
        sup = self.extras.get("supervisor")
        return int(sup["attempts"]) if sup else 1

    @property
    def watchdog_events(self) -> list:
        """Escalation events (SIGTERM/SIGKILL) the fork watchdog recorded."""
        return list(self.extras.get("watchdog", ()))

    @property
    def network_retries(self) -> int:
        """Link-level retries the rfork/lease protocol spent on this block."""
        total = 0
        rfork = self.extras.get("rfork")
        if rfork:
            total += int(rfork.get("retries", 0))
        remote = self.extras.get("remote")
        if remote and remote.get("ship"):
            total += int(remote["ship"].get("retries", 0))
        return total

    @property
    def lease_events(self) -> list:
        """The remote-world lease's event log (granted/suspect/declare-dead/…)."""
        return list(self.extras.get("lease", ()))

    @property
    def relanded(self) -> bool:
        """True when a dead/unreachable remote world was re-run locally."""
        return bool(self.extras.get("relanded"))

    @property
    def remote_fallback(self) -> str | None:
        """"local" when an rfork exhausted its retries and ran here, else None."""
        rfork = self.extras.get("rfork")
        return rfork.get("fallback") if rfork else None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        who = self.winner.name if self.winner else "FAILURE"
        return f"BlockOutcome(winner={who}, elapsed={self.elapsed_s:.6f}s)"
