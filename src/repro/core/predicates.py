"""Predicate sets: the bookkeeping that keeps Multiple Worlds consistent.

Paper section 2.3: predicates are "lists of process identifiers, some of
which the sending process depends on completing successfully and others on
which the sending process depends on to not complete successfully". They
are deliberately simpler than Eswaran-style data predicates — they are
updated on process *status changes*, which are much rarer than memory
references.

Two lists per world:

- ``must``  — pids this world assumes WILL complete successfully,
- ``cant``  — pids this world assumes will NOT complete.

Section 2.4.2 gives the receive rule for a message with sender predicates
``S`` arriving at a receiver with predicates ``R``:

- **agree** (``S ⊆ R``): accept immediately;
- **conflict** (``p ∈ S`` and ``¬p ∈ R``): ignore the message;
- **extend** (``p ∈ S`` and ``p ∉ R``): split the receiver in two — one
  copy assuming ``complete(sender)`` (which implies all of S), one copy
  assuming ``¬complete(sender)``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import PredicateError


class MessageDecision(enum.Enum):
    """Outcome of checking a message's predicates against a receiver's."""

    ACCEPT = "accept"
    IGNORE = "ignore"
    SPLIT = "split"


#: Predicate ids below this refer to logical processes (pids); ids at or
#: above it refer to individual *worlds* (speculative versions). A split
#: receiver's assumption about its sender must name the sending world:
#: if a different surviving version of the same process completes, that
#: must not count as the sender's message-world having happened.
WORLD_FACT_BASE = 1_000_000_000


def world_key(wid: int) -> int:
    """The predicate id for "world ``wid`` completes"."""
    return WORLD_FACT_BASE + wid


def is_world_key(ident: int) -> bool:
    return ident >= WORLD_FACT_BASE


@dataclass(frozen=True)
class PredicateSet:
    """An immutable (must-complete, cant-complete) pair of pid sets.

    All mutating operations return new sets; worlds therefore share
    predicate structure safely.
    """

    must: frozenset[int] = field(default_factory=frozenset)
    cant: frozenset[int] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        if self.must & self.cant:
            raise PredicateError(
                f"inconsistent predicates: {sorted(self.must & self.cant)} "
                "both must and cannot complete"
            )

    # -- construction -------------------------------------------------------
    @classmethod
    def empty(cls) -> "PredicateSet":
        return cls()

    @classmethod
    def of(cls, must: "frozenset[int] | set[int] | list[int]" = (), cant: "frozenset[int] | set[int] | list[int]" = ()) -> "PredicateSet":
        return cls(frozenset(must), frozenset(cant))

    # -- queries ---------------------------------------------------------------
    @property
    def unresolved(self) -> bool:
        """True when this world still carries any assumption.

        A world with unresolved predicates is speculative and may not
        touch source devices (paper section 2.4.2).
        """
        return bool(self.must or self.cant)

    def depends_on(self, pid: int) -> bool:
        return pid in self.must or pid in self.cant

    def all_pids(self) -> frozenset[int]:
        return self.must | self.cant

    def is_subset_of(self, other: "PredicateSet") -> bool:
        """True when every assumption here is also held by ``other``."""
        return self.must <= other.must and self.cant <= other.cant

    def conflicts_with(self, other: "PredicateSet") -> bool:
        """True when the two worlds hold contradictory assumptions."""
        return bool(self.must & other.cant) or bool(self.cant & other.must)

    # -- derivation --------------------------------------------------------------
    def assume_complete(self, pid: int) -> "PredicateSet":
        """This world plus the assumption that ``pid`` completes."""
        if pid in self.cant:
            raise PredicateError(f"cannot assume complete({pid}): already assumed not")
        return PredicateSet(self.must | {pid}, self.cant)

    def assume_incomplete(self, pid: int) -> "PredicateSet":
        """This world plus the assumption that ``pid`` does NOT complete."""
        if pid in self.must:
            raise PredicateError(f"cannot assume ¬complete({pid}): already assumed so")
        return PredicateSet(self.must, self.cant | {pid})

    def union(self, other: "PredicateSet") -> "PredicateSet":
        """Both worlds' assumptions combined (must be compatible)."""
        if self.conflicts_with(other):
            raise PredicateError("cannot union conflicting predicate sets")
        return PredicateSet(self.must | other.must, self.cant | other.cant)

    def child_predicates(self, self_pid: int, sibling_pids: "list[int] | tuple[int, ...]") -> "PredicateSet":
        """Predicates for a freshly spawned alternative (paper section 2.3).

        The child inherits the parent's predicates, assumes that it will
        itself complete, and that each sibling will not — "sibling rivalry
        taken to its extreme".
        """
        result = self.assume_complete(self_pid)
        for sib in sibling_pids:
            if sib != self_pid:
                result = result.assume_incomplete(sib)
        return result

    def failure_predicates(self, sibling_pids: "list[int] | tuple[int, ...]") -> "PredicateSet":
        """Predicates of the failure alternative: no sibling completes."""
        result = self
        for sib in sibling_pids:
            result = result.assume_incomplete(sib)
        return result

    # -- resolution ---------------------------------------------------------------
    def resolve(self, pid: int, completed: bool) -> "PredicateSet | None":
        """Apply the resolution of ``complete(pid)``.

        Returns the reduced predicate set when this world survives, or
        ``None`` when the resolution contradicts this world's assumptions
        (the world must be eliminated).
        """
        if completed:
            if pid in self.cant:
                return None
            if pid in self.must:
                return PredicateSet(self.must - {pid}, self.cant)
        else:
            if pid in self.must:
                return None
            if pid in self.cant:
                return PredicateSet(self.must, self.cant - {pid})
        return self

    # -- rendering ---------------------------------------------------------------
    @staticmethod
    def _render_id(ident: int) -> str:
        if is_world_key(ident):
            return f"w{ident - WORLD_FACT_BASE}"
        return str(ident)

    def __str__(self) -> str:
        musts = [f"complete({self._render_id(p)})" for p in sorted(self.must)]
        cants = [f"¬complete({self._render_id(p)})" for p in sorted(self.cant)]
        return "{" + ", ".join(musts + cants) + "}"


def classify_message(
    sender: PredicateSet, receiver: PredicateSet
) -> MessageDecision:
    """The section 2.4.2 receive rule: accept, ignore, or split."""
    if sender.is_subset_of(receiver):
        return MessageDecision.ACCEPT
    if sender.conflicts_with(receiver):
        return MessageDecision.IGNORE
    return MessageDecision.SPLIT


def split_predicates(
    sender: PredicateSet, sender_pid: int, receiver: PredicateSet
) -> tuple[PredicateSet, "PredicateSet | None"]:
    """Predicate sets for the two receiver copies created by a SPLIT.

    The accepting copy holds ``R ∪ S ∪ {complete(sender)}`` — believing the
    sender's world. The rejecting copy holds ``R ∪ {¬complete(sender)}`` —
    "implying rejection of the sender's predicates without creating a
    logical impossibility" (negating every element of S individually could
    demand two mutually exclusive processes both complete).

    When the receiver already assumes ``complete(sender)`` the rejecting
    copy would be self-contradictory; ``None`` is returned in its place and
    no rejecting world should be created.
    """
    accepting = receiver.union(sender).assume_complete(sender_pid)
    if sender_pid in receiver.must:
        return accepting, None
    rejecting = receiver.assume_incomplete(sender_pid)
    return accepting, rejecting
