"""Execution policies: sibling elimination and timeouts.

Paper section 2.2.1: when an alternative is selected its siblings are
eliminated, either *synchronously* (before execution resumes in the
parent) or *asynchronously* (at some unspecified later time). The paper's
experiments found asynchronous elimination gives better execution-time
performance at the expense of throughput — our benches reproduce that
(about 2× on their measured constants).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EliminationPolicy(enum.Enum):
    """How losing siblings are killed after a winner synchronizes."""

    SYNCHRONOUS = "sync"
    ASYNCHRONOUS = "async"

    @property
    def blocks_parent(self) -> bool:
        return self is EliminationPolicy.SYNCHRONOUS


@dataclass(frozen=True)
class TimeoutPolicy:
    """The parent's alt_wait TIMEOUT handling.

    ``timeout_s`` of ``None`` waits indefinitely. ``fail_fast`` selects
    whether timeout raises (:class:`repro.errors.BlockTimeout`) or returns
    a failure outcome.
    """

    timeout_s: float | None = None
    fail_fast: bool = False

    def expired(self, waited_s: float) -> bool:
        return self.timeout_s is not None and waited_s >= self.timeout_s
