"""Execution policies: sibling elimination and timeouts.

Paper section 2.2.1: when an alternative is selected its siblings are
eliminated, either *synchronously* (before execution resumes in the
parent) or *asynchronously* (at some unspecified later time). The paper's
experiments found asynchronous elimination gives better execution-time
performance at the expense of throughput — our benches reproduce that
(about 2× on their measured constants).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class EliminationPolicy(enum.Enum):
    """How losing siblings are killed after a winner synchronizes."""

    SYNCHRONOUS = "sync"
    ASYNCHRONOUS = "async"

    @property
    def blocks_parent(self) -> bool:
        return self is EliminationPolicy.SYNCHRONOUS


@dataclass(frozen=True)
class WatchdogPolicy:
    """Per-alternative hang escalation for the fork backend.

    A child that has neither reported nor died ``soft_deadline_s``
    seconds after its (stagger-adjusted) start is presumed hung and is
    escalated: SIGTERM first, giving it ``term_grace_s`` seconds to
    clean up or report, then SIGKILL. This replaces the block-level
    "bare SIGKILL on timeout" as the only defence against hangs — a
    well-behaved alternative gets a chance to release resources or ship
    a partial report before it is destroyed.
    """

    soft_deadline_s: float
    term_grace_s: float = 0.2

    def __post_init__(self) -> None:
        if self.soft_deadline_s <= 0:
            raise ValueError(f"soft_deadline_s must be positive, got {self.soft_deadline_s}")
        if self.term_grace_s < 0:
            raise ValueError(f"term_grace_s must be non-negative, got {self.term_grace_s}")

    def deadline_for(self, start_delay: float) -> float:
        """Seconds after block start when this alternative is presumed hung."""
        return start_delay + self.soft_deadline_s


@dataclass(frozen=True)
class TimeoutPolicy:
    """The parent's alt_wait TIMEOUT handling.

    ``timeout_s`` of ``None`` waits indefinitely. ``fail_fast`` selects
    whether timeout raises (:class:`repro.errors.BlockTimeout`) or returns
    a failure outcome.
    """

    timeout_s: float | None = None
    fail_fast: bool = False

    def expired(self, waited_s: float) -> bool:
        return self.timeout_s is not None and waited_s >= self.timeout_s
