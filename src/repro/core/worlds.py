"""`run_alternatives`: the user-facing Multiple Worlds entry point.

One call executes a block of mutually exclusive alternatives on a chosen
backend and returns a :class:`~repro.core.outcome.BlockOutcome`. The
backend list below is generated from the registry in
:mod:`repro.core.backend` (so it cannot go stale):

{backend_list}

All backends share the same sequential semantics: the observable result
is one some sequential execution of a single alternative could have
produced (paper section 3.3).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.analysis.calibration import MODERN_SIM, MachineProfile
from repro.core.backend import (
    backend_names,
    backend_summaries,
    normalize_alternatives,
    resolve_backend,
)
from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.core.policy import EliminationPolicy
from repro.errors import WorldsError

#: Backwards-compatible alias; the runtime backends import this name.
_normalize = normalize_alternatives

__doc__ = (__doc__ or "").format(
    backend_list="\n".join(
        f'- ``backend="{name}"`` — {summary};' for name, summary in backend_summaries()
    )
)


def __getattr__(name: str):
    # PEP 562: ``BACKENDS`` is computed from the live registry so that
    # backends registered after import (plugins, tests) appear too.
    if name == "BACKENDS":
        return backend_names()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(list(globals()) + ["BACKENDS"])


def outcome_from_alt(alt_outcome, state: dict | None = None, extras: dict | None = None) -> BlockOutcome:
    """Convert a kernel :class:`~repro.kernel.syscalls.AltOutcome`."""
    winner = None
    losers = []
    for rec in alt_outcome.children:
        result = AlternativeResult(
            index=rec.index,
            name=rec.name,
            value=rec.value,
            succeeded=rec.status == "committed",
            guard_failed="guard" in (rec.reason or "") or rec.status == "guard-rejected",
            error=rec.reason or None,
            elapsed_s=(rec.finished_at - alt_outcome.spawned_at)
            if rec.finished_at is not None
            else 0.0,
        )
        if rec.status == "committed":
            winner = result
        else:
            losers.append(result)
    elapsed = alt_outcome.response_s if alt_outcome.parent_resumed_at else (
        alt_outcome.committed_at - alt_outcome.spawned_at
    )
    out = BlockOutcome(
        winner=winner,
        elapsed_s=elapsed,
        overhead=alt_outcome.overhead,
        timed_out=alt_outcome.timed_out,
        losers=losers,
    )
    if state is not None:
        out.extras["state"] = state
    if extras:
        out.extras.update(extras)
    return out


def run_alternatives_sim(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    profile: MachineProfile = MODERN_SIM,
    cpus: int | None = None,
    seed: int = 0,
    trace: bool = False,
    fault_plan=None,
    journal=None,
    obs=None,
):
    """Execute one block on a fresh simulation kernel.

    Returns ``(BlockOutcome, Kernel)`` — the kernel is returned so callers
    can inspect stats, traces and devices. ``fault_plan`` enables the
    kernel's deterministic fault hooks (message drop/delay, stalls);
    ``journal`` (a :class:`~repro.journal.CommitJournal`) makes the
    kernel's commit/eliminate/split decisions crash-durable; ``obs``
    (an :class:`~repro.obs.Observability`) records world/block spans and
    speculation metrics in virtual time.
    """
    from repro.kernel import Kernel  # local import: kernel depends on core

    alts = normalize_alternatives(alternatives)
    kernel = Kernel(
        profile=profile, cpus=cpus, seed=seed, trace=trace,
        fault_plan=fault_plan, journal=journal, obs=obs,
    )
    box: dict[str, Any] = {}

    def driver(ctx):
        outcome = yield from ctx.run_alternatives(alts, timeout, elimination)
        box["alt_outcome"] = outcome
        box["state"] = yield ctx.snapshot()
        return outcome.value

    kernel.spawn(driver, name="block-parent", heap_init=initial)
    kernel.run()
    alt_outcome = box.get("alt_outcome")
    if alt_outcome is None:
        raise WorldsError("block driver did not complete")
    outcome = outcome_from_alt(
        alt_outcome,
        state=box.get("state"),
        extras={"virtual_time": kernel.now},
    )
    return outcome, kernel


def run_alternatives(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    backend: str = "sim",
    fault_plan=None,
    block_id: int = 0,
    attempt: int = 0,
    watchdog=None,
    journal=None,
    obs=None,
    **kwargs: Any,
) -> BlockOutcome:
    """Run a block of mutually exclusive alternatives; return the outcome.

    ``alternatives`` are :class:`Alternative` objects or callables. For
    the ``sim`` backend, callables may be generator programs or plain
    functions of a dict workspace; for the OS-style backends
    (``fork``/``thread``/``sequential``) they are plain functions of a
    dict workspace, and for ``async`` they may additionally be coroutine
    functions. At most one alternative's state change survives into
    ``outcome.extras["state"]``.

    Dispatch goes through the backend registry in
    :mod:`repro.core.backend`; an unknown ``backend`` raises
    :class:`~repro.errors.WorldsError` listing the valid names before
    any side effect occurs.

    Robustness plumbing (see :mod:`repro.faults`): ``fault_plan`` injects
    a deterministic fault schedule into whichever backend runs the block
    (``block_id``/``attempt`` namespace its fault keys); ``watchdog`` is
    a :class:`~repro.core.policy.WatchdogPolicy` enabling per-alternative
    SIGTERM→SIGKILL hang escalation on the fork backend (ignored by the
    backends that have no processes to signal); ``journal`` (a
    :class:`~repro.journal.CommitJournal`) records the block's winner
    durably — the sim backend journals every kernel transition, the
    others seal a single ``block`` transaction at winner acceptance;
    ``obs`` (an :class:`~repro.obs.Observability`) records spans and
    metrics for the block on whichever backend runs it.
    """
    runner = resolve_backend(backend)  # raises before any side effect
    if obs is not None and fault_plan is not None:
        # fault-plane correlation: every injection the backend acts on
        # also lands as an annotation instant + counter increment (the
        # sim kernel wires this itself via KernelObserver)
        obs.watch_fault_plan(fault_plan)
    return runner(
        alternatives, initial, timeout, elimination=elimination,
        fault_plan=fault_plan, block_id=block_id, attempt=attempt,
        watchdog=watchdog, journal=journal, obs=obs, **kwargs
    )


def first_of(*fns: Callable[[dict], Any], **kwargs: Any) -> BlockOutcome:
    """Convenience: run bare callables as a block with default settings."""
    return run_alternatives(list(fns), **kwargs)
