"""Multiple Worlds core: alternatives, predicates, schemes, policies.

This package holds the paper's primary contribution in backend-neutral
form:

- :mod:`repro.core.predicates` — must-complete / cant-complete predicate
  sets and the accept/ignore/split message rule (paper section 2.4.2).
- :mod:`repro.core.alternative` — :class:`Alternative` blocks with guards
  (paper section 1.1).
- :mod:`repro.core.policy` — timeout and sibling-elimination policies
  (paper sections 2.2, 2.2.1).
- :mod:`repro.core.schemes` — the Scheme A / B / C selectors of the
  performance analysis (paper section 3.2).
- :mod:`repro.core.worlds` — `run_alternatives`, the user-facing entry
  point, dispatching to the simulation or fork backend.
"""

from repro.core.predicates import PredicateSet, MessageDecision, classify_message
from repro.core.alternative import Alternative, Guard, AltBlock
from repro.core.outcome import BlockOutcome, AlternativeResult, FAILURE
from repro.core.policy import EliminationPolicy, TimeoutPolicy
from repro.core.schemes import scheme_a, scheme_b, scheme_c_expectation
from repro.core.worlds import first_of, run_alternatives, run_alternatives_sim
from repro.core.dsl import WorldsBlock, worlds_block

__all__ = [
    "run_alternatives",
    "run_alternatives_sim",
    "first_of",
    "worlds_block",
    "WorldsBlock",
    "PredicateSet",
    "MessageDecision",
    "classify_message",
    "Alternative",
    "Guard",
    "AltBlock",
    "BlockOutcome",
    "AlternativeResult",
    "FAILURE",
    "EliminationPolicy",
    "TimeoutPolicy",
    "scheme_a",
    "scheme_b",
    "scheme_c_expectation",
]
