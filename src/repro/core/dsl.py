"""Decorator sugar: the paper's preprocessor, as a Python API.

Section 2.2 imagines "a language preprocessor applied to a program with
mutually exclusive alternatives". In Python the natural equivalent is a
decorator-based builder:

    from repro.core.dsl import worlds_block

    block = worlds_block(timeout=5.0)

    @block.alternative(cost=1.0)
    def newton(ws):
        ws["root"] = solve_newton(ws["f"])
        return "newton"

    @block.alternative(cost=4.0, guard=lambda ws, v: ws["root"] is not None)
    def bisect(ws):
        ws["root"] = solve_bisect(ws["f"])
        return "bisect"

    outcome = block.run(initial={"f": f, "root": None}, backend="sim")

The decorated functions stay directly callable — the block only collects
them.
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.core.alternative import Alternative, Guard, GuardPlacement
from repro.core.outcome import BlockOutcome
from repro.core.policy import EliminationPolicy
from repro.core.worlds import run_alternatives
from repro.errors import WorldsError


class WorldsBlock:
    """A collected block of alternatives with run configuration."""

    def __init__(
        self,
        name: str = "worlds-block",
        timeout: float | None = None,
        elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    ) -> None:
        self.name = name
        self.timeout = timeout
        self.elimination = elimination
        self._alternatives: list[Alternative] = []

    # -- collection --------------------------------------------------------
    def alternative(
        self,
        fn: Callable | None = None,
        *,
        cost: float | Callable[[dict], float] | None = None,
        guard: Callable[[dict, Any], bool] | None = None,
        applies: Callable[[dict], bool] | None = None,
        placement: GuardPlacement = GuardPlacement.IN_CHILD,
        name: str | None = None,
    ):
        """Register a function as one alternative of this block.

        Usable bare (``@block.alternative``) or parameterized
        (``@block.alternative(cost=2.0, guard=...)``). ``guard`` is the
        acceptance predicate ``(workspace, result) -> bool``; ``applies``
        gates entry.
        """

        def register(func: Callable) -> Callable:
            self._alternatives.append(
                Alternative(
                    func,
                    name=name or getattr(func, "__name__", "alternative"),
                    guard=Guard(
                        name=f"{name or func.__name__}-guard",
                        check=applies,
                        accept=guard,
                        placement=placement,
                    ),
                    sim_cost=cost,
                )
            )
            return func

        if fn is not None:  # bare decorator form
            return register(fn)
        return register

    @property
    def alternatives(self) -> Sequence[Alternative]:
        return tuple(self._alternatives)

    def __len__(self) -> int:
        return len(self._alternatives)

    # -- execution -------------------------------------------------------------
    def run(
        self,
        initial: dict[str, Any] | None = None,
        backend: str = "sim",
        **kwargs: Any,
    ) -> BlockOutcome:
        """Execute the collected block; see :func:`run_alternatives`."""
        if not self._alternatives:
            raise WorldsError(f"block {self.name!r} has no alternatives")
        return run_alternatives(
            list(self._alternatives),
            initial=initial,
            timeout=self.timeout,
            elimination=self.elimination,
            backend=backend,
            **kwargs,
        )


def worlds_block(
    name: str = "worlds-block",
    timeout: float | None = None,
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
) -> WorldsBlock:
    """Start collecting a block of mutually exclusive alternatives."""
    return WorldsBlock(name=name, timeout=timeout, elimination=elimination)
