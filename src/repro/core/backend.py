"""The ``Backend`` protocol, registry, and shared block bookkeeping.

Every execution backend — simulation kernel, ``os.fork`` worlds, thread
worlds, degenerate sequential execution, asyncio tasks — implements one
contract: *spawn* a world per alternative, *wait* for the first
acceptable result, *eliminate* the losers, *label* every alternative's
fate, and *record* the settled block (journal win + telemetry). Before
this module existed that contract lived as three near-copies inside
:mod:`repro.runtime`; it is now split into two reusable pieces so a new
backend is one module, not a fourth copy:

- :class:`Backend` — the structural protocol a runner satisfies, plus a
  registry (:func:`register_backend` / :func:`resolve_backend`) that
  :func:`repro.core.worlds.run_alternatives` dispatches through. The
  built-in backends are registered here with lazy loaders, so importing
  :mod:`repro.core` never drags in ``asyncio`` or the fork machinery.
- :class:`BlockRun` — the shared spawn/wait/eliminate/label/record
  bookkeeping: pre-spawn guard checks, deterministic ``spawn``/``child``
  fault decisions, winner acceptance (with the durable
  :func:`~repro.journal.wal.record_block_win` transaction), loser
  labelling, and final :class:`~repro.core.outcome.BlockOutcome`
  assembly including the :func:`repro.obs.integrate.record_block` hook.

A backend owns only what is genuinely its own: how worlds run and how
losers die (signals for fork, cooperative tokens for threads, task
cancellation for asyncio).
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Protocol, Sequence, runtime_checkable

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative, GuardPlacement
from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.errors import SpawnError, WorldsError

if TYPE_CHECKING:  # import cycle: repro.faults pulls in the supervisor → worlds
    from repro.faults.plan import FaultDecision


def normalize_alternatives(alternatives: Sequence[Any]) -> list[Alternative]:
    """Coerce a sequence of callables/Alternatives into Alternatives."""
    out = []
    for i, alt in enumerate(alternatives):
        if isinstance(alt, Alternative):
            out.append(alt)
        elif callable(alt):
            out.append(Alternative(alt, name=getattr(alt, "__name__", f"alt{i}")))
        else:
            raise WorldsError(f"cannot use {alt!r} as an alternative")
    if not out:
        raise WorldsError("need at least one alternative")
    return out


@runtime_checkable
class Backend(Protocol):
    """What ``run_alternatives`` requires of a backend runner.

    A backend is any callable with this signature; the built-in runners
    are plain functions. ``watchdog`` is accepted by every backend and
    honoured only where it means something (the fork backend's
    SIGTERM→SIGKILL ladder); likewise ``elimination`` degrades to each
    backend's best available mechanism (signals, cooperative tokens,
    task cancellation, or nothing at all for sequential execution).
    """

    def __call__(
        self,
        alternatives: Sequence[Any],
        initial: dict[str, Any] | None = None,
        timeout: float | None = None,
        *,
        fault_plan=None,
        block_id: int = 0,
        attempt: int = 0,
        watchdog=None,
        journal=None,
        obs=None,
        **kwargs: Any,
    ) -> BlockOutcome:
        ...  # pragma: no cover - protocol stub


@dataclass
class BackendSpec:
    """One registry entry: a name, a lazy loader, and doc metadata.

    ``loader`` returns the runner on first use; the result is cached so
    repeat dispatches cost one dict lookup. ``summary`` feeds the
    generated backend list in :mod:`repro.core.worlds`'s docstring.
    """

    name: str
    loader: Callable[[], Callable[..., BlockOutcome]]
    summary: str = ""
    _runner: Callable[..., BlockOutcome] | None = field(
        default=None, repr=False, compare=False
    )

    def resolve(self) -> Callable[..., BlockOutcome]:
        if self._runner is None:
            self._runner = self.loader()
        return self._runner


_REGISTRY: "OrderedDict[str, BackendSpec]" = OrderedDict()


def register_backend(
    name: str,
    loader: Callable[[], Callable[..., BlockOutcome]],
    summary: str = "",
    *,
    replace: bool = False,
) -> None:
    """Register a backend under ``name`` with a lazy ``loader``.

    ``loader`` is called (once) the first time the backend is used; it
    must return a :class:`Backend`-shaped callable. Registering an
    existing name raises unless ``replace=True`` — shadowing a built-in
    backend by accident would silently change program semantics.
    """
    if not name or not isinstance(name, str):
        raise WorldsError(f"backend name must be a non-empty string, got {name!r}")
    if name in _REGISTRY and not replace:
        raise WorldsError(
            f"backend {name!r} is already registered (pass replace=True to override)"
        )
    _REGISTRY[name] = BackendSpec(name=name, loader=loader, summary=summary)


def backend_names() -> tuple[str, ...]:
    """Every registered backend name, in registration order."""
    return tuple(_REGISTRY)


def backend_summaries() -> list[tuple[str, str]]:
    """``(name, summary)`` pairs for doc generation."""
    return [(spec.name, spec.summary) for spec in _REGISTRY.values()]


def resolve_backend(name: str) -> Callable[..., BlockOutcome]:
    """The runner registered under ``name``; raises listing valid names."""
    spec = _REGISTRY.get(name)
    if spec is None:
        raise WorldsError(
            f"unknown backend {name!r}: valid backends are "
            + ", ".join(repr(b) for b in _REGISTRY)
        )
    return spec.resolve()


# -- shared block bookkeeping ----------------------------------------------
class BlockRun:
    """Spawn/wait/eliminate/label/record state shared by the OS-style backends.

    One instance tracks one block execution: the normalized alternative
    list, the base workspace, fault decisions taken, the winner and its
    workspace, loser records, and the clock. The thread, sequential and
    asyncio backends drive their whole lifecycle through it; the fork
    backend (whose children live across a ``fork()``) uses the same
    decision helpers where the process boundary allows.
    """

    def __init__(
        self,
        backend: str,
        alternatives: Sequence[Any],
        initial: dict[str, Any] | None = None,
        *,
        fault_plan=None,
        block_id: int = 0,
        attempt: int = 0,
        journal=None,
        obs=None,
    ) -> None:
        self.backend = backend
        self.alts = normalize_alternatives(alternatives)
        self.base: dict[str, Any] = dict(initial or {})
        self.fault_plan = fault_plan
        self.block_id = block_id
        self.attempt = attempt
        self.journal = journal
        self.obs = obs
        self.t_start = time.perf_counter()
        self.winner: AlternativeResult | None = None
        self.winner_ws: dict | None = None
        self.losers: list[AlternativeResult] = []
        self.injected: list[dict] = []
        self.timed_out = False

    # -- spawn-side decisions ---------------------------------------------
    def precheck_guard(self, index: int, alt: Alternative) -> bool:
        """BEFORE_SPAWN guard evaluation; False records the skip as a loser."""
        if not (alt.guard.placement & GuardPlacement.BEFORE_SPAWN) or alt.guard.check is None:
            return True
        try:
            ok = alt.guard.passes_entry(self.base)
        except Exception:
            ok = False
        if not ok:
            self.losers.append(
                AlternativeResult(
                    index=index, name=alt.name, guard_failed=True,
                    error="guard rejected before spawn",
                )
            )
        return ok

    def spawn_fault(
        self, index: int, alt: Alternative, on_abort=None, detail: str | None = None
    ) -> None:
        """Raise :class:`~repro.errors.SpawnError` if the plan dooms this spawn.

        ``on_abort`` runs first (cancel/destroy already-started siblings)
        so a failed spawn never leaks running worlds; ``detail`` names the
        mechanism that "failed" in the error message.
        """
        if self.fault_plan is None:
            return
        from repro.faults.plan import SPAWN_SITE

        if self.fault_plan.decide(SPAWN_SITE, self.block_id, index, self.attempt).fires:
            if on_abort is not None:
                on_abort()
            self.fault_plan.note_injection(
                SPAWN_SITE, "spawn-fail", block_id=self.block_id,
                index=index, attempt=self.attempt, backend=self.backend,
            )
            raise SpawnError(
                f"spawning alternative {alt.name!r} failed: "
                + (detail or f"injected {self.backend}-spawn failure")
            )

    def child_fault(self, index: int, alt: Alternative) -> FaultDecision | None:
        """This world's ``child``-site verdict, logged when it fires."""
        from repro.faults.plan import CHILD_SITE

        return self.site_fault(CHILD_SITE, index, alt)

    def site_fault(self, site: str, index: int, alt: Alternative) -> FaultDecision | None:
        """A backend-specific fault site's verdict, keyed like ``child``."""
        if self.fault_plan is None:
            return None
        fault = self.fault_plan.decide(site, self.block_id, index, self.attempt)
        if fault.fires:
            self.injected.append(
                {"index": index, "name": alt.name, "kind": fault.kind.value}
            )
            self.fault_plan.note_injection(
                site, fault.kind, block_id=self.block_id,
                index=index, attempt=self.attempt, backend=self.backend,
            )
        return fault

    # -- settlement --------------------------------------------------------
    def accept(
        self,
        index: int,
        value: Any,
        workspace: dict | None = None,
        elapsed_s: float = 0.0,
    ) -> AlternativeResult:
        """Commit ``index`` as the winner; journals the win durably."""
        self.winner = AlternativeResult(
            index=index, name=self.alts[index].name, value=value,
            succeeded=True, elapsed_s=elapsed_s,
        )
        self.winner_ws = workspace
        if self.journal is not None:
            from repro.journal import record_block_win

            record_block_win(self.journal, self.block_id, self.attempt, self.winner)
        return self.winner

    def reject(
        self,
        index: int,
        error: str,
        *,
        guard_failed: bool | None = None,
        elapsed_s: float = 0.0,
    ) -> AlternativeResult:
        """Label ``index`` a loser (failure, elimination, or timeout)."""
        loser = AlternativeResult(
            index=index, name=self.alts[index].name, error=error,
            guard_failed="guard" in error if guard_failed is None else guard_failed,
            elapsed_s=elapsed_s,
        )
        self.losers.append(loser)
        return loser

    def finish(
        self,
        *,
        overhead: OverheadBreakdown | None = None,
        extras: dict[str, Any] | None = None,
    ) -> BlockOutcome:
        """Assemble the outcome and fire the telemetry record hook."""
        outcome = BlockOutcome(
            winner=self.winner,
            elapsed_s=time.perf_counter() - self.t_start,
            overhead=overhead if overhead is not None else OverheadBreakdown(),
            timed_out=self.timed_out and self.winner is None,
            losers=sorted(self.losers, key=lambda r: r.index),
        )
        if self.winner_ws is not None:
            outcome.extras["state"] = self.winner_ws
        if self.injected:
            outcome.extras["injected_faults"] = self.injected
        if extras:
            outcome.extras.update(extras)
        if self.obs is not None:
            from repro.obs.integrate import record_block

            record_block(
                self.obs, backend=self.backend, block_id=self.block_id,
                attempt=self.attempt, t_start=self.t_start, outcome=outcome,
            )
        return outcome


# -- built-in backends ------------------------------------------------------
def _load_sim():
    from repro.core.worlds import run_alternatives_sim

    def run_sim(
        alternatives, initial=None, timeout=None, *,
        fault_plan=None, block_id=0, attempt=0, watchdog=None,
        journal=None, obs=None, **kwargs,
    ):
        outcome, _kernel = run_alternatives_sim(
            alternatives, initial, timeout,
            fault_plan=fault_plan, journal=journal, obs=obs,
            **kwargs,
        )
        return outcome

    return run_sim


def _load_fork():
    from repro.runtime.fork_backend import run_alternatives_fork

    return run_alternatives_fork


def _load_thread():
    from repro.runtime.thread_backend import run_alternatives_thread

    return run_alternatives_thread


def _load_sequential():
    from repro.runtime.sequential_backend import run_alternatives_sequential

    return run_alternatives_sequential


def _load_async():
    from repro.aio.backend import run_alternatives_async

    return run_alternatives_async


register_backend(
    "sim", _load_sim,
    "the deterministic simulation kernel (virtual time, calibrated "
    "overheads, full predicate semantics)",
)
register_backend(
    "fork", _load_fork,
    "real ``os.fork`` worlds with genuine kernel COW and SIGKILL "
    "elimination (wall-clock time)",
)
register_backend(
    "thread", _load_thread,
    "threads with copied workspaces and cooperative cancellation "
    "(no COW; useful where fork is unavailable, and as a baseline)",
)
register_backend(
    "sequential", _load_sequential,
    "degenerate standby-spares execution, one alternative at a time "
    "(the last rung of the degradation ladder)",
)
register_backend(
    "async", _load_async,
    "asyncio tasks with copied workspaces and cancellation-as-"
    "elimination; scales I/O-bound blocks to tens of thousands of "
    "concurrent worlds in one process",
)
