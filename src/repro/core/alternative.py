"""Alternatives, guards and alternative blocks (paper sections 1.1, 2.2).

An :class:`Alternative` is one method of effecting the block's state
change, paired with a *guard condition* it must satisfy to be considered
successful. An :class:`AltBlock` composes alternatives with the meaning
that at most one of them (or failure) takes effect, selected
non-deterministically — in parallel execution, by whoever synchronizes
first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import WorldsError


class GuardPlacement(enum.Flag):
    """Where a guard is evaluated (paper section 2.2, Figure 1 text).

    Guards "can be executed serially before spawning the alternatives
    (thus improving throughput at the expense of response time); in the
    child process; at the synchronization point; or at any combination of
    these places, for redundancy."
    """

    BEFORE_SPAWN = enum.auto()
    IN_CHILD = enum.auto()
    AT_SYNC = enum.auto()


@dataclass
class Guard:
    """A named guard condition over (state, result).

    ``check(state)`` gates entry (BEFORE_SPAWN / IN_CHILD placements) and
    ``accept(state, result)`` judges the produced result (IN_CHILD after
    the body, and/or AT_SYNC). Either may be omitted; a missing predicate
    always passes.
    """

    name: str = "guard"
    check: Callable[[Any], bool] | None = None
    accept: Callable[[Any, Any], bool] | None = None
    placement: GuardPlacement = GuardPlacement.IN_CHILD

    def passes_entry(self, state: Any) -> bool:
        if self.check is None:
            return True
        return bool(self.check(state))

    def passes_result(self, state: Any, result: Any) -> bool:
        if self.accept is None:
            return True
        return bool(self.accept(state, result))

    @classmethod
    def always(cls) -> "Guard":
        return cls(name="always")


@dataclass
class Alternative:
    """One alternative method within a block.

    Attributes
    ----------
    fn:
        The body. For the fork and thread backends this is an ordinary
        callable ``fn(state) -> result`` that may mutate ``state``
        (a dict-like workspace). For the simulation backend it is either a
        generator program ``fn(ctx)`` yielding syscalls, or a plain
        callable paired with ``sim_cost``.
    guard:
        The guard condition; defaults to always-true.
    name:
        Diagnostic label.
    sim_cost:
        Virtual-time cost for the simulation backend when ``fn`` is a
        plain callable (seconds, or a callable ``state -> seconds``).
    start_delay:
        Seconds this alternative waits before starting — staggered
        spawning. Launching the primary immediately and spares after a
        delay trades response time (a failing primary costs up to the
        stagger) against throughput (spares that were never needed never
        run). Honoured by the simulation backend in virtual time and by
        the fork/thread backends in wall-clock time.
    """

    fn: Callable[..., Any]
    guard: Guard = field(default_factory=Guard.always)
    name: str = ""
    sim_cost: float | Callable[[Any], float] | None = None
    start_delay: float = 0.0

    def __post_init__(self) -> None:
        if not callable(self.fn):
            raise WorldsError(f"alternative body must be callable, got {self.fn!r}")
        if self.start_delay < 0:
            raise WorldsError(f"start_delay must be non-negative, got {self.start_delay}")
        if not self.name:
            self.name = getattr(self.fn, "__name__", "alternative")

    def cost_for(self, state: Any) -> float:
        """Resolve ``sim_cost`` against a concrete state."""
        if self.sim_cost is None:
            return 0.0
        if callable(self.sim_cost):
            return float(self.sim_cost(state))
        return float(self.sim_cost)


@dataclass
class AltBlock:
    """A composed block of mutually exclusive alternatives.

    ``timeout`` is the parent's TIMEOUT argument to ``alt_wait()`` —
    "chosen so that after TIMEOUT time units have elapsed, it is unlikely
    that any of the alternatives have succeeded"; ``None`` waits forever.
    """

    alternatives: list[Alternative]
    timeout: float | None = None
    name: str = "alt-block"

    def __post_init__(self) -> None:
        if not self.alternatives:
            raise WorldsError("an alternative block needs at least one alternative")
        if self.timeout is not None and self.timeout <= 0:
            raise WorldsError(f"timeout must be positive or None, got {self.timeout}")

    def __len__(self) -> int:
        return len(self.alternatives)

    def __iter__(self):
        return iter(self.alternatives)

    @classmethod
    def of(cls, *fns: Callable[..., Any], timeout: float | None = None) -> "AltBlock":
        """Build a block from bare callables with always-true guards."""
        return cls([Alternative(fn) for fn in fns], timeout=timeout)
