"""Network-attached single-level store and demand-paged remote state.

Paper section 2.1 buries the network under the page abstraction ("network
file systems can be utilized to hide the network through the page
management abstraction"), and section 3.4 notes the rfork used an NFS to
reduce copying, while "more sophisticated migration schemes, using
'on-demand' state management techniques have been constructed"
(Theimer et al. [23]).

- :class:`NetworkStore` — a :class:`~repro.memory.store.SingleLevelStore`
  reached over a :class:`~repro.distrib.netsim.SimulatedLink`: every file
  and page operation charges the link.
- :class:`DemandPagedImage` — a checkpoint published as pages on a
  network store; a restart pulls only the pages it actually touches,
  turning the rfork's up-front transfer into per-access latency.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass

from repro.distrib.netsim import SimulatedLink
from repro.distrib.retry import RetryPolicy, call_with_retries
from repro.errors import NetworkError, TransferCorrupted
from repro.memory.store import SingleLevelStore


class NetworkStore:
    """A remote single-level store: operations pay link transfer time.

    All times are accounted on the link (and returned per call); file
    content lives in the wrapped local store, which stands in for the
    server.

    On an unreliable link (one carrying a fault plan) every operation is
    an at-least-once exchange: payloads are CRC-checked end to end (a
    corrupted delivery is retried, never applied), uploads carry an
    idempotency token so a duplicated or re-sent write lands exactly
    once, and drops/partitions retry under ``retry`` with deterministic
    backoff. ``stats`` accumulates what unreliability actually cost.
    """

    def __init__(
        self,
        store: SingleLevelStore,
        link: SimulatedLink,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.store = store
        self.link = link
        self.retry = retry if retry is not None else RetryPolicy()
        self._applied_tokens: set[str] = set()
        self.stats = {
            "retries": 0,
            "backoff_s": 0.0,
            "corrupt_rejected": 0,
            "duplicates_suppressed": 0,
        }

    @property
    def page_size(self) -> int:
        return self.store.page_size

    # -- the at-least-once exchange -----------------------------------------
    def _exchange(self, payload: bytes, token: str) -> tuple[bytes, float]:
        """Ship ``payload`` with retries; returns (verified bytes, seconds).

        Seconds include every failed attempt, duplicate copy and backoff
        pause — the caller-visible price of the unreliable link.
        """
        expect = zlib.crc32(payload)
        before = self.link.busy_seconds

        def once(attempt: int) -> bytes:
            delivery = self.link.ship(payload, attempt=attempt)
            if delivery.copies > 1:
                self.stats["duplicates_suppressed"] += delivery.copies - 1
            if zlib.crc32(delivery.payload) != expect:
                self.stats["corrupt_rejected"] += 1
                raise TransferCorrupted(
                    f"{token}: delivered payload fails checksum"
                )
            return delivery.payload

        data, stats = call_with_retries(
            once, policy=self.retry, token=token, link=self.link
        )
        self.stats["retries"] += stats.retries
        self.stats["backoff_s"] += stats.backoff_s
        return data, (self.link.busy_seconds - before) + stats.backoff_s

    # -- whole files --------------------------------------------------------
    def write_file(self, name: str, data: bytes) -> float:
        """Upload a file; returns the transfer seconds charged.

        Applies at most once per (name, content): a duplicate delivery or
        a redundant re-send of bytes the server already holds is charged
        on the wire but not re-applied to the store.
        """
        token = f"put:{name}:{zlib.crc32(data):08x}"
        _, seconds = self._exchange(data, token)
        if token in self._applied_tokens:
            self.stats["duplicates_suppressed"] += 1
        else:
            self.store.write_file(name, data)
            self._applied_tokens.add(token)
        return seconds

    def read_file(self, name: str) -> tuple[bytes, float]:
        """Download a whole file; returns (data, seconds)."""
        data = self.store.read_file(name)
        verified, seconds = self._exchange(data, f"get:{name}")
        return verified, seconds

    # -- page-granular access ---------------------------------------------------
    def read_page(self, name: str, page_index: int) -> tuple[bytes, float]:
        """Fetch one page of a file (a demand fault across the network)."""
        stored = self.store.stat(name)
        if not 0 <= page_index < max(stored.pages, 1):
            raise NetworkError(
                f"page {page_index} out of range for {name!r} ({stored.pages} pages)"
            )
        start = page_index * self.page_size
        data = self.store.read_file(name)[start : start + self.page_size]
        verified, seconds = self._exchange(
            data if data else b"\x00", f"page:{name}:{page_index}"
        )
        return data, seconds

    def pages_of(self, name: str) -> int:
        return self.store.stat(name).pages


@dataclass
class DemandPageAccounting:
    """What one demand-paged restart actually moved."""

    pages_total: int
    pages_fetched: int
    transfer_s: float

    @property
    def fetch_fraction(self) -> float:
        if self.pages_total == 0:
            return 0.0
        return self.pages_fetched / self.pages_total


class DemandPagedImage:
    """A checkpoint image published page-wise on a network store.

    ``publish`` uploads once (the checkpointing node pays the full
    transfer); each remote ``reader()`` then pulls pages lazily and
    caches them — the on-demand migration of [23]. Compare
    :meth:`eager_fetch_time` with a reader's accounting to see when lazy
    wins.
    """

    def __init__(self, netstore: NetworkStore, name: str) -> None:
        self.netstore = netstore
        self.name = name

    @classmethod
    def publish(cls, netstore: NetworkStore, name: str, image: bytes) -> tuple["DemandPagedImage", float]:
        seconds = netstore.write_file(name, image)
        return cls(netstore, name), seconds

    @property
    def pages(self) -> int:
        return self.netstore.pages_of(self.name)

    def eager_fetch_time(self) -> float:
        """Nominal cost of shipping the whole image up front."""
        stored = self.netstore.store.stat(self.name)
        return self.netstore.link.transfer_time(stored.length)

    def reader(self) -> "DemandPagedReader":
        return DemandPagedReader(self)


class DemandPagedReader:
    """One remote consumer of a published image, page cache included."""

    def __init__(self, image: DemandPagedImage) -> None:
        self.image = image
        self._cache: dict[int, bytes] = {}
        self.transfer_s = 0.0

    def read(self, offset: int, length: int) -> bytes:
        """Read image bytes, faulting pages over the network as needed."""
        if offset < 0 or length < 0:
            raise NetworkError("bad read range")
        page_size = self.image.netstore.page_size
        first = offset // page_size
        last = (offset + length - 1) // page_size if length else first
        pieces = []
        for index in range(first, last + 1):
            if index not in self._cache:
                data, seconds = self.image.netstore.read_page(self.image.name, index)
                self._cache[index] = data
                self.transfer_s += seconds
            pieces.append(self._cache[index])
        blob = b"".join(pieces)
        start = offset - first * page_size
        return blob[start : start + length]

    def accounting(self) -> DemandPageAccounting:
        return DemandPageAccounting(
            pages_total=self.image.pages,
            pages_fetched=len(self._cache),
            transfer_s=self.transfer_s,
        )


def breakeven_fraction(image_bytes: int, link: SimulatedLink, page_size: int) -> float:
    """Fraction of pages touched at which lazy fetching stops winning.

    Lazy pays one link latency per faulted page; eager pays one latency
    plus the whole image's bandwidth cost. Equating the two gives the
    touch fraction where eager becomes cheaper.
    """
    pages = max(1, math.ceil(image_bytes / page_size))
    eager = link.transfer_time(image_bytes)
    per_page = link.transfer_time(page_size)
    if per_page == 0:
        return 1.0
    return min(1.0, eager / (per_page * pages))
