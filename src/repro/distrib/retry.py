"""Bounded retries with exponential backoff and deterministic jitter.

Every distributed consumer (rfork, network store, migration) faces the
same loop: try a link operation, classify the failure, back off, try
again, give up after a bounded number of attempts. :func:`call_with_retries`
is that loop, once.

Jitter is deterministic: it derives from the CRC of the operation's
idempotency token and the attempt number, not from a shared RNG, so two
runs of the same seeded scenario back off identically (the property the
determinism tests assert) while distinct operations still decorrelate.

Backoff consumes *link* time via :meth:`SimulatedLink.wait` — that is
what eventually walks a retry out of a partition window — and is
reported in the stats so callers can account "added latency due to
unreliability" separately from nominal transfer time.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RetriesExhausted, TransferError


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try: bounded attempts, exponential backoff, jitter.

    ``deadline_s``, when set, caps the loop's *total* elapsed time: no
    retry is attempted once ``elapsed + next_pause`` would cross it, even
    with attempts left — whichever bound (attempts or deadline) trips
    first wins. Elapsed time is measured on the same clock the backoff is
    charged to: real ``time.monotonic`` without a link, the link's
    virtual clock with one (so simulated scenarios stay deterministic).
    """

    max_retries: int = 4
    base_backoff_s: float = 0.01
    multiplier: float = 2.0
    max_backoff_s: float = 1.0
    jitter: float = 0.5  # extra backoff fraction in [0, jitter]
    deadline_s: float | None = None  # total-time cap across all attempts

    @property
    def max_attempts(self) -> int:
        return 1 + self.max_retries

    def backoff_s(self, attempt: int, token: str = "") -> float:
        """Backoff before retry ``attempt`` (1-based), deterministic in token."""
        base = min(
            self.base_backoff_s * self.multiplier ** (attempt - 1),
            self.max_backoff_s,
        )
        frac = (zlib.crc32(f"{token}:{attempt}".encode()) % 1000) / 999.0
        return base * (1.0 + self.jitter * frac)


@dataclass
class RetryStats:
    """What one retried operation cost beyond the happy path."""

    attempts: int = 0
    retries: int = 0
    backoff_s: float = 0.0
    faults: list[str] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "attempts": self.attempts,
            "retries": self.retries,
            "backoff_s": self.backoff_s,
            "faults": list(self.faults),
        }


def call_with_retries(
    op: Callable[[int], Any],
    *,
    policy: RetryPolicy,
    token: str = "",
    link=None,
    retry_on: tuple[type[BaseException], ...] = (TransferError,),
) -> tuple[Any, RetryStats]:
    """Run ``op(attempt)`` until it succeeds or the policy is exhausted.

    ``op`` receives the 0-based attempt number (it is part of every link
    fault key, so each attempt genuinely re-rolls the dice). Failures in
    ``retry_on`` trigger backoff — charged to ``link`` when one is given
    — and a retry; anything else propagates immediately. After the last
    attempt fails — or once the policy's ``deadline_s`` total-time cap
    would be crossed by the next backoff — raises
    :class:`~repro.errors.RetriesExhausted` chained to the final failure.
    """
    stats = RetryStats()
    last: BaseException | None = None
    why = "attempts"
    started = time.monotonic()
    for attempt in range(policy.max_attempts):
        stats.attempts = attempt + 1
        try:
            return op(attempt), stats
        except retry_on as exc:
            last = exc
            stats.faults.append(type(exc).__name__)
            if attempt + 1 >= policy.max_attempts:
                break
            pause = policy.backoff_s(attempt + 1, token)
            if policy.deadline_s is not None:
                # measure on the clock the backoff is charged to: the
                # link's virtual clock when simulating, wall time when
                # real — so deadline-vs-attempts races are deterministic
                # under a SimulatedLink
                elapsed = (
                    stats.backoff_s if link is not None
                    else time.monotonic() - started
                )
                if elapsed + pause > policy.deadline_s:
                    why = f"deadline ({policy.deadline_s}s)"
                    break
            stats.retries += 1
            stats.backoff_s += pause
            if link is not None:
                link.wait(pause)
            else:
                # no simulated link to charge: this is a real transport
                # (e.g. the shard RPC client), so the backoff must
                # actually pass before the resend hits the wire
                time.sleep(pause)
    exhausted = RetriesExhausted(
        f"{token or 'operation'} failed after {stats.attempts} attempts "
        f"({why} exhausted): {last}",
        attempts=stats.attempts,
    )
    exhausted.stats = stats  # callers recover the full retry accounting
    raise exhausted from last
