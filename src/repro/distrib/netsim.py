"""Simulated network links.

A :class:`SimulatedLink` is a latency + bandwidth pipe with optional
per-transfer jitter and a transfer ledger. It computes (and can optionally
really sleep for) the time to ship a byte payload — the substitution for
the 1989 LAN the paper's rfork ran over (see DESIGN.md section 3).

Unreliability is opt-in: hand the link a
:class:`~repro.faults.plan.FaultPlan` and :meth:`transfer` /
:meth:`ship` start consulting the plan's ``link`` and ``partition``
sites. Every fault decision is a pure function of
``(seed, link_id, transfer_seq, attempt)``, so a seeded link replays the
exact same loss/corruption/flap schedule on every run — the property the
``tests/distrib_faults`` suite pins down.

Two call styles:

- :meth:`transfer` — accounting only (how long did ``nbytes`` take);
  subject to drops, slowdowns and partitions.
- :meth:`ship` — carries a real payload and models the full at-least-once
  wire: the returned :class:`Delivery` may be a corrupted copy, a
  duplicated one (``copies == 2``), or arrive reordered behind the next
  transfer. Consumers are expected to defend themselves with checksums
  and idempotency tokens, not by peeking at the delivery flags.
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass, field

from repro.analysis.calibration import NetworkProfile
from repro.errors import LinkPartitioned, NetworkError, TransferDropped
from repro.faults.plan import LINK_SITE, FaultKind
from repro.util.rng import ReplayableRNG


@dataclass(frozen=True)
class TransferRecord:
    """One transfer attempt on a link (successful or faulted)."""

    nbytes: int
    seconds: float
    started_at: float
    seq: int = 0
    attempt: int = 0
    ok: bool = True
    fault: str | None = None


@dataclass(frozen=True)
class LinkFaultEvent:
    """One injected network fault, in the order it fired."""

    seq: int
    kind: str
    at_s: float
    detail: str = ""


@dataclass(frozen=True)
class Delivery:
    """What the far end of a :meth:`SimulatedLink.ship` actually received."""

    seq: int
    payload: bytes
    seconds: float
    copies: int = 1
    corrupted: bool = False
    reordered: bool = False


def corrupt_payload(payload: bytes) -> bytes:
    """Deterministically flip one byte of ``payload`` (XFER_CORRUPT).

    The flipped position derives from the payload's own CRC, so the same
    bytes always corrupt the same way — no RNG stream to coordinate.
    """
    if not payload:
        return payload
    pos = zlib.crc32(payload) % len(payload)
    mutated = bytearray(payload)
    mutated[pos] ^= 0xFF
    return bytes(mutated)


@dataclass
class SimulatedLink:
    """A point-to-point link with latency, bandwidth, jitter and faults.

    ``jitter`` adds a uniform[0, jitter·nominal] penalty per transfer,
    drawn from a seeded RNG for reproducibility. ``real_sleep`` makes
    :meth:`transfer` actually block for the computed duration (for
    end-to-end wall-clock demos); by default the link only accounts.

    ``fault_plan`` + ``link_id`` enable the deterministic fault sites
    (see module docstring). Accounting (``ledger``, ``clock``,
    ``fault_events``) is guarded by a lock so concurrent transfers from
    real threads keep ``bytes_moved`` / ``busy_seconds`` exact.
    """

    profile: NetworkProfile
    jitter: float = 0.0
    real_sleep: bool = False
    seed: int = 0
    clock: float = 0.0
    ledger: list[TransferRecord] = field(default_factory=list)
    fault_plan: "object | None" = None
    link_id: int = 0
    obs: "object | None" = None

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise NetworkError("jitter must be non-negative")
        self._rng = ReplayableRNG(self.seed)
        self._lock = threading.Lock()
        self._seq = 0
        self.fault_events: list[LinkFaultEvent] = []
        self.arrival_order: list[int] = []
        self._reorder_hold: int | None = None
        self._xfer_c = None
        if self.obs is not None:
            self._xfer_c = self.obs.registry.counter(
                "mw_net_transfers_total", "Link transfer attempts",
                labelnames=("link", "result"),
            )
            if self.fault_plan is not None:
                self.obs.watch_fault_plan(self.fault_plan)
            self.obs.tracer.set_track_name(
                f"link:{self.link_id}", f"link {self.link_id}"
            )

    def transfer_time(self, nbytes: int) -> float:
        """Nominal (jitter- and fault-free) time to ship ``nbytes``."""
        if nbytes < 0:
            raise NetworkError("cannot transfer a negative payload")
        return self.profile.transfer_time(nbytes)

    # -- internals ---------------------------------------------------------
    def _decide(self, seq: int, attempt: int):
        if self.fault_plan is None:
            from repro.faults.plan import FaultDecision

            return FaultDecision()
        return self.fault_plan.decide(LINK_SITE, self.link_id, seq, attempt)

    def _record_fault(self, seq: int, kind: FaultKind, detail: str = "") -> None:
        self.fault_events.append(
            LinkFaultEvent(seq=seq, kind=kind.value, at_s=self.clock, detail=detail)
        )
        if self.fault_plan is not None:
            self.fault_plan.note_injection(
                LINK_SITE, kind, detail=detail, t=self.clock,
                track=f"link:{self.link_id}", link=self.link_id, seq=seq,
            )

    def _xfer_span(
        self, seq: int, attempt: int, nbytes: int, start: float,
        seconds: float, *, disposition: str, fault: str | None = None,
    ) -> None:
        if self.obs is None:
            return
        attrs = {"seq": seq, "attempt": attempt, "nbytes": nbytes}
        if fault is not None:
            attrs["fault"] = fault
        self.obs.tracer.complete(
            f"xfer:{seq}", start, start + seconds, cat="net",
            track=f"link:{self.link_id}", disposition=disposition, **attrs,
        )

    def _check_partition(self, seq: int) -> None:
        plan = self.fault_plan
        if plan is not None and plan.link_down(self.link_id, self.clock):
            self._record_fault(seq, FaultKind.LINK_FLAP, f"at {self.clock:.6f}s")
            self.ledger.append(
                TransferRecord(
                    nbytes=0, seconds=0.0, started_at=self.clock,
                    seq=seq, ok=False, fault=FaultKind.LINK_FLAP.value,
                )
            )
            if self._xfer_c is not None:
                self._xfer_c.inc(link=str(self.link_id), result="partitioned")
            raise LinkPartitioned(
                f"link {self.link_id} is partitioned at t={self.clock:.6f}s"
            )

    def _one_transfer(
        self, nbytes: int, attempt: int, payload: bytes | None
    ) -> tuple[int, float, "FaultKind | None"]:
        """Account one wire crossing; returns (seq, seconds, payload fault).

        Caller must hold the lock. Raises on drop/partition; payload-level
        kinds (dup/corrupt/reorder) are returned for :meth:`ship` to apply
        and ignored by :meth:`transfer`.
        """
        seq = self._seq
        self._seq += 1
        self._check_partition(seq)
        nominal = self.transfer_time(nbytes)
        seconds = nominal
        if self.jitter > 0:
            seconds += self._rng.uniform(0.0, self.jitter * nominal)
        decision = self._decide(seq, attempt)
        kind = decision.kind
        if kind is FaultKind.LINK_SLOW:
            seconds *= decision.param
            self._record_fault(seq, kind, f"x{decision.param:g}")
        if kind is FaultKind.XFER_DROP:
            # the sender pays the full send time before concluding the
            # payload is gone (a timeout, not an instant NACK)
            self._record_fault(seq, kind)
            self.ledger.append(
                TransferRecord(
                    nbytes=nbytes, seconds=seconds, started_at=self.clock,
                    seq=seq, attempt=attempt, ok=False, fault=kind.value,
                )
            )
            started = self.clock
            self.clock += seconds
            self._xfer_span(
                seq, attempt, nbytes, started, seconds,
                disposition="aborted", fault=kind.value,
            )
            if self._xfer_c is not None:
                self._xfer_c.inc(link=str(self.link_id), result="dropped")
            raise TransferDropped(
                f"transfer seq={seq} ({nbytes} bytes) lost on link {self.link_id}"
            )
        self.ledger.append(
            TransferRecord(
                nbytes=nbytes, seconds=seconds, started_at=self.clock,
                seq=seq, attempt=attempt,
                fault=kind.value if kind is not None else None,
            )
        )
        started = self.clock
        self.clock += seconds
        self._xfer_span(
            seq, attempt, nbytes, started, seconds, disposition="committed",
            fault=kind.value if kind is not None else None,
        )
        if self._xfer_c is not None:
            self._xfer_c.inc(link=str(self.link_id), result="ok")
        payload_fault = kind if kind in (
            FaultKind.XFER_DUP, FaultKind.XFER_CORRUPT, FaultKind.XFER_REORDER
        ) else None
        return seq, seconds, payload_fault

    def _note_arrival(self, seq: int, reorder: bool) -> bool:
        """Track arrival order; returns True when this seq was reordered."""
        if reorder and self._reorder_hold is None:
            self._reorder_hold = seq
            return True
        self.arrival_order.append(seq)
        if self._reorder_hold is not None and self._reorder_hold != seq:
            self.arrival_order.append(self._reorder_hold)
            self._reorder_hold = None
        return False

    # -- public API --------------------------------------------------------
    def transfer(self, nbytes: int, attempt: int = 0) -> float:
        """Account (and optionally sleep) one transfer; returns seconds.

        With a fault plan attached this may raise
        :class:`~repro.errors.TransferDropped` or
        :class:`~repro.errors.LinkPartitioned`; payload-level faults
        (duplicate/corrupt/reorder) need :meth:`ship`.
        """
        with self._lock:
            seq, seconds, _ = self._one_transfer(nbytes, attempt, None)
            self._note_arrival(seq, reorder=False)
        if self.real_sleep:  # pragma: no cover - timing-dependent
            time.sleep(seconds)
        return seconds

    def ship(self, payload: bytes, attempt: int = 0) -> Delivery:
        """Ship a real payload; returns what the far end received.

        Raises like :meth:`transfer`; otherwise the returned
        :class:`Delivery` models the at-least-once wire: ``corrupted``
        payloads differ from what was sent, ``copies == 2`` means the
        receiver saw the same bytes twice (and was charged twice), and
        ``reordered`` deliveries land behind the next transfer in
        :attr:`arrival_order`.
        """
        with self._lock:
            seq, seconds, fault = self._one_transfer(len(payload), attempt, payload)
            delivered = payload
            copies = 1
            if fault is FaultKind.XFER_CORRUPT:
                delivered = corrupt_payload(payload)
                self._record_fault(seq, fault)
            elif fault is FaultKind.XFER_DUP:
                copies = 2
                self._record_fault(seq, fault)
                # the duplicate crosses the wire too: charge it
                dup_seconds = self.transfer_time(len(payload))
                self.ledger.append(
                    TransferRecord(
                        nbytes=len(payload), seconds=dup_seconds,
                        started_at=self.clock, seq=seq, attempt=attempt,
                        fault=fault.value,
                    )
                )
                self.clock += dup_seconds
                seconds += dup_seconds
            reordered = self._note_arrival(seq, fault is FaultKind.XFER_REORDER)
            if reordered:
                self._record_fault(seq, FaultKind.XFER_REORDER)
        if self.real_sleep:  # pragma: no cover - timing-dependent
            time.sleep(seconds)
        return Delivery(
            seq=seq, payload=delivered, seconds=seconds, copies=copies,
            corrupted=delivered != payload, reordered=reordered,
        )

    def wait(self, seconds: float) -> float:
        """Advance the link clock without moving bytes (retry backoff).

        Backoff must consume link time: a retry that waited is what walks
        the clock out of a partition window.
        """
        if seconds < 0:
            raise NetworkError("cannot wait a negative duration")
        with self._lock:
            self.clock += seconds
        if self.real_sleep:  # pragma: no cover - timing-dependent
            time.sleep(seconds)
        return seconds

    # -- accounting --------------------------------------------------------
    @property
    def bytes_moved(self) -> int:
        return sum(r.nbytes for r in self.ledger)

    @property
    def busy_seconds(self) -> float:
        return sum(r.seconds for r in self.ledger)

    @property
    def drops(self) -> int:
        return sum(1 for r in self.ledger if r.fault == FaultKind.XFER_DROP.value)

    @property
    def faults_injected(self) -> int:
        return len(self.fault_events)
