"""Simulated network links.

A :class:`SimulatedLink` is a latency + bandwidth pipe with optional
per-transfer jitter and a transfer ledger. It computes (and can optionally
really sleep for) the time to ship a byte payload — the substitution for
the 1989 LAN the paper's rfork ran over (see DESIGN.md section 3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.analysis.calibration import NetworkProfile
from repro.errors import NetworkError
from repro.util.rng import ReplayableRNG


@dataclass(frozen=True)
class TransferRecord:
    """One completed transfer on a link."""

    nbytes: int
    seconds: float
    started_at: float


@dataclass
class SimulatedLink:
    """A point-to-point link with latency, bandwidth and jitter.

    ``jitter`` adds a uniform[0, jitter·nominal] penalty per transfer,
    drawn from a seeded RNG for reproducibility. ``real_sleep`` makes
    :meth:`transfer` actually block for the computed duration (for
    end-to-end wall-clock demos); by default the link only accounts.
    """

    profile: NetworkProfile
    jitter: float = 0.0
    real_sleep: bool = False
    seed: int = 0
    clock: float = 0.0
    ledger: list[TransferRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.jitter < 0:
            raise NetworkError("jitter must be non-negative")
        self._rng = ReplayableRNG(self.seed)

    def transfer_time(self, nbytes: int) -> float:
        """Nominal (jitter-free) time to ship ``nbytes``."""
        if nbytes < 0:
            raise NetworkError("cannot transfer a negative payload")
        return self.profile.transfer_time(nbytes)

    def transfer(self, nbytes: int) -> float:
        """Account (and optionally sleep) one transfer; returns seconds."""
        nominal = self.transfer_time(nbytes)
        seconds = nominal
        if self.jitter > 0:
            seconds += self._rng.uniform(0.0, self.jitter * nominal)
        record = TransferRecord(nbytes=nbytes, seconds=seconds, started_at=self.clock)
        self.ledger.append(record)
        self.clock += seconds
        if self.real_sleep:  # pragma: no cover - timing-dependent
            time.sleep(seconds)
        return seconds

    @property
    def bytes_moved(self) -> int:
        return sum(r.nbytes for r in self.ledger)

    @property
    def busy_seconds(self) -> float:
        return sum(r.seconds for r in self.ledger)
