"""The distributed case: simulated links, remote fork, migration.

The paper's section 3.1 notes the distributed penalty — "in the
distributed case we must actually copy state for a remote child" — and
section 3.4 measures it: an rfork() of a 70K process takes just under a
second of checkpoint work, with network delays pushing the observed
average to ~1.3 s.

- :mod:`repro.distrib.netsim` — latency/bandwidth link models with
  transfer accounting and deterministic fault injection (drops,
  duplicates, reordering, corruption, flap/partition windows).
- :mod:`repro.distrib.retry` — bounded retries with exponential backoff
  and deterministic jitter, shared by every link consumer.
- :mod:`repro.distrib.rfork` — remote fork: checkpoint + ship + restart,
  in both a calibrated-1989 cost model and a real local measurement
  mode, hardened into an at-least-once protocol with idempotent apply
  and local fallback.
- :mod:`repro.distrib.netstore` — network-attached single-level store
  and demand paging, with CRC-verified, idempotent transfers.
- :mod:`repro.distrib.migration` — migrating a simulated process between
  two simulation kernels; the source keeps the process until the target
  acks.
- :mod:`repro.distrib.lease` — leases + heartbeats for remote worlds,
  the failure detector behind the remote→local degradation chain.
"""

from repro.distrib.netsim import (
    Delivery,
    LinkFaultEvent,
    SimulatedLink,
    TransferRecord,
    corrupt_payload,
)
from repro.distrib.retry import RetryPolicy, RetryStats, call_with_retries
from repro.distrib.rfork import RemoteFork, RforkCost
from repro.distrib.migration import MigrationRecord, migrate_process
from repro.distrib.lease import (
    LeaseEvent,
    LeaseState,
    RemoteNode,
    RemoteWorldLease,
    heartbeat_lost,
)
from repro.distrib.netstore import (
    DemandPagedImage,
    DemandPagedReader,
    NetworkStore,
    breakeven_fraction,
)

__all__ = [
    "Delivery",
    "LinkFaultEvent",
    "SimulatedLink",
    "TransferRecord",
    "corrupt_payload",
    "RetryPolicy",
    "RetryStats",
    "call_with_retries",
    "RemoteFork",
    "RforkCost",
    "MigrationRecord",
    "migrate_process",
    "LeaseEvent",
    "LeaseState",
    "RemoteNode",
    "RemoteWorldLease",
    "heartbeat_lost",
    "NetworkStore",
    "DemandPagedImage",
    "DemandPagedReader",
    "breakeven_fraction",
]
