"""The distributed case: simulated links, remote fork, migration.

The paper's section 3.1 notes the distributed penalty — "in the
distributed case we must actually copy state for a remote child" — and
section 3.4 measures it: an rfork() of a 70K process takes just under a
second of checkpoint work, with network delays pushing the observed
average to ~1.3 s.

- :mod:`repro.distrib.netsim` — latency/bandwidth link models with
  transfer accounting.
- :mod:`repro.distrib.rfork` — remote fork: checkpoint + ship + restart,
  in both a calibrated-1989 cost model and a real local measurement mode.
- :mod:`repro.distrib.migration` — migrating a simulated process between
  two simulation kernels by checkpoint/replay.
"""

from repro.distrib.netsim import SimulatedLink, TransferRecord
from repro.distrib.rfork import RemoteFork, RforkCost
from repro.distrib.migration import migrate_process
from repro.distrib.netstore import (
    DemandPagedImage,
    DemandPagedReader,
    NetworkStore,
    breakeven_fraction,
)

__all__ = [
    "SimulatedLink",
    "TransferRecord",
    "RemoteFork",
    "RforkCost",
    "migrate_process",
    "NetworkStore",
    "DemandPagedImage",
    "DemandPagedReader",
    "breakeven_fraction",
]
