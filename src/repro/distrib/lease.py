"""Leased remote worlds: heartbeats, failure detection, crash recovery.

A world shipped to a remote node (via rfork) is invisible once it leaves:
the 1989 LAN gave no notification when the peer machine rebooted. The
classic answer is a *lease*: the remote world must renew its claim by
heartbeat; a holder that goes quiet is first suspected (probe), then
declared dead, its orphaned state reclaimed, and its work re-landed
locally — the distributed rung of PR 1's fork → thread → sequential
degradation ladder.

Everything here runs in *virtual* link time and is deterministic per
fault-plan seed:

- whether the remote node crashes, and when, is the plan's ``remote``
  site (``REMOTE_CRASH`` at ``(node_id, attempt)``; the crash lands at
  ``remote_crash_fraction`` of the shipped work);
- whether an individual heartbeat is lost in flight even though the node
  is alive is the ``heartbeat`` site (``(lease_id, beat_index)``);
- link flap windows silence heartbeats too (``partition`` site), which is
  exactly how a live node gets wrongly suspected — the probe on the
  healed link then rescues it.

:class:`RemoteWorldLease` is the pure state machine + event log;
:meth:`repro.faults.Supervisor.run_remote` drives it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import NetworkError
from repro.faults.plan import HEARTBEAT_SITE, REMOTE_SITE, FaultKind


class LeaseState(str, enum.Enum):
    """Where a remote world's lease is in its lifecycle."""

    ACTIVE = "active"
    SUSPECT = "suspect"          # a heartbeat was missed; probing
    DEAD = "dead"                # declared dead (misses or expiry)
    RECLAIMED = "reclaimed"      # orphaned state torn down
    COMPLETED = "completed"      # the remote world finished and committed


@dataclass(frozen=True)
class LeaseEvent:
    """One transition or observation in a lease's life, in virtual time."""

    at_s: float
    event: str
    detail: str = ""


@dataclass
class RemoteWorldLease:
    """The supervisor-side record of one leased remote world.

    ``term_s`` is the lease length: with no successful renewal (heartbeat)
    for a full term the holder is dead regardless of the miss counter.
    ``miss_threshold`` consecutive missed heartbeats declare death sooner
    (probes rescue false suspicions in between).
    """

    lease_id: int
    node_id: int
    term_s: float = 0.5
    heartbeat_s: float = 0.1
    miss_threshold: int = 3
    state: LeaseState = LeaseState.ACTIVE
    granted_at_s: float = 0.0
    last_renewal_s: float = 0.0
    beats_ok: int = 0
    beats_missed: int = 0
    consecutive_misses: int = 0
    events: list[LeaseEvent] = field(default_factory=list)
    obs: "object | None" = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.term_s <= 0 or self.heartbeat_s <= 0:
            raise NetworkError("lease term and heartbeat interval must be positive")
        if self.miss_threshold < 1:
            raise NetworkError("miss_threshold must be at least 1")
        self.last_renewal_s = self.granted_at_s
        self._span_id = -1
        if self.obs is not None:
            track = f"lease:{self.lease_id}"
            self.obs.tracer.set_track_name(
                track, f"lease {self.lease_id} · node {self.node_id}"
            )
            self._span_id = self.obs.tracer.begin(
                f"lease:{self.lease_id}", cat="distrib", track=track,
                t=self.granted_at_s, node=self.node_id, term_s=self.term_s,
            )
        self._log(self.granted_at_s, "granted", f"term={self.term_s:g}s")

    # -- bookkeeping -------------------------------------------------------
    #: terminal lease events and the span disposition each one settles
    _TERMINAL = {
        "completed": "committed",
        "declare-dead": "eliminated",
    }

    def _log(self, at_s: float, event: str, detail: str = "") -> None:
        self.events.append(LeaseEvent(at_s=at_s, event=event, detail=detail))
        if self.obs is not None:
            disposition = self._TERMINAL.get(event)
            if disposition is not None:
                self.obs.tracer.end(
                    self._span_id, t=at_s, disposition=disposition,
                    reason=detail, beats_ok=self.beats_ok,
                    beats_missed=self.beats_missed,
                )
                self._span_id = -1
            elif event != "granted":
                self.obs.tracer.instant(
                    f"lease:{event}", cat="distrib",
                    track=f"lease:{self.lease_id}", t=at_s, detail=detail,
                )

    def note(self, at_s: float, event: str, detail: str = "") -> None:
        """Record an observation (probe result, …) without a transition."""
        self._log(at_s, event, detail)

    @property
    def event_names(self) -> list[str]:
        return [e.event for e in self.events]

    @property
    def alive(self) -> bool:
        return self.state in (LeaseState.ACTIVE, LeaseState.SUSPECT)

    # -- transitions -------------------------------------------------------
    def renew(self, at_s: float) -> None:
        """A heartbeat arrived: the holder is alive, suspicion clears."""
        self.beats_ok += 1
        self.consecutive_misses = 0
        self.last_renewal_s = at_s
        if self.state is LeaseState.SUSPECT:
            self.state = LeaseState.ACTIVE
            self._log(at_s, "recovered")

    def miss(self, at_s: float, reason: str = "") -> None:
        """A heartbeat did not arrive; escalate toward declaration."""
        self.beats_missed += 1
        self.consecutive_misses += 1
        if self.state is LeaseState.ACTIVE:
            self.state = LeaseState.SUSPECT
            self._log(at_s, "suspect", reason)

    @property
    def expired(self) -> bool:
        """No renewal for a full term (check against a current time)."""
        return self.state is LeaseState.DEAD

    def check_expiry(self, now_s: float) -> bool:
        return (now_s - self.last_renewal_s) >= self.term_s

    def declare_dead(self, at_s: float, reason: str) -> None:
        """Declare the holder dead. Idempotent on settled leases.

        A lease that already ``COMPLETED`` (the result committed), was
        ``RECLAIMED`` (the orphan torn down) or is already ``DEAD`` must
        not be revived into ``DEAD`` — a late failure detector repeating
        the declaration is a no-op, not a state change, and nothing is
        re-logged.
        """
        if self.state in (
            LeaseState.COMPLETED, LeaseState.RECLAIMED, LeaseState.DEAD
        ):
            return
        self.state = LeaseState.DEAD
        self._log(at_s, "declare-dead", reason)

    def reclaim(self, at_s: float) -> None:
        """Tear down the orphan's record; its results can no longer commit.

        Reclaiming twice is a no-op (the second pass must not re-log);
        reclaiming a live or completed lease is still a protocol error.
        """
        if self.state is LeaseState.RECLAIMED:
            return
        if self.state is not LeaseState.DEAD:
            raise NetworkError(f"cannot reclaim a lease in state {self.state.value}")
        self.state = LeaseState.RECLAIMED
        self._log(at_s, "reclaim-orphan")

    def takeover(self, at_s: float, new_node_id: int) -> "RemoteWorldLease":
        """Hand a dead holder's work to ``new_node_id``; returns the new lease.

        The takeover path of the cluster failover protocol: only a lease
        already declared ``DEAD`` (reclaiming it first is fine) may be
        taken over — taking over a live or completed lease would fork
        the work. The successor starts ``ACTIVE`` at ``at_s`` with the
        same ``lease_id`` and timing knobs; the predecessor logs the
        handoff so the lineage is auditable from either record.
        """
        if self.state not in (LeaseState.DEAD, LeaseState.RECLAIMED):
            raise NetworkError(
                f"cannot take over a lease in state {self.state.value}; "
                "declare the holder dead first"
            )
        self._log(at_s, "takeover", f"node {self.node_id} -> {new_node_id}")
        return RemoteWorldLease(
            lease_id=self.lease_id,
            node_id=new_node_id,
            term_s=self.term_s,
            heartbeat_s=self.heartbeat_s,
            miss_threshold=self.miss_threshold,
            granted_at_s=at_s,
            obs=self.obs,
        )

    def complete(self, at_s: float) -> None:
        if not self.alive:
            raise NetworkError(
                f"lease {self.lease_id} is {self.state.value}; a late result "
                "from a reclaimed world must not commit"
            )
        self.state = LeaseState.COMPLETED
        self._log(at_s, "completed")


@dataclass
class RemoteNode:
    """The fault plan's view of one remote machine.

    Answers, deterministically per seed, whether the node survives a
    shipped piece of work or crashes partway through it.
    """

    node_id: int
    plan: "object | None" = None

    def crash_time(self, work_s: float, attempt: int = 0) -> float | None:
        """Seconds into the work at which the node dies, or None."""
        if self.plan is None:
            return None
        decision = self.plan.decide(REMOTE_SITE, self.node_id, attempt)
        if decision.kind is FaultKind.REMOTE_CRASH:
            return work_s * decision.param
        return None


def heartbeat_lost(plan, lease_id: int, beat_index: int, t: float | None = None) -> bool:
    """Whether heartbeat ``beat_index`` of ``lease_id`` is lost in flight.

    A lost beat is recorded on the plan's injection log (``t`` is the
    virtual time the caller will charge the miss to).
    """
    if plan is None:
        return False
    lost = plan.decide(HEARTBEAT_SITE, lease_id, beat_index).kind is FaultKind.HEARTBEAT_MISS
    if lost:
        plan.note_injection(
            HEARTBEAT_SITE, FaultKind.HEARTBEAT_MISS,
            detail=f"beat {beat_index}", t=t, track=f"lease:{lease_id}",
            lease=lease_id, beat=beat_index,
        )
    return lost
