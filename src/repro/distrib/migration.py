"""Process migration between simulation kernels.

The paper's rfork was built "to implement a process migration scheme"
(Smith & Ioannidis [19]). Here we migrate a simulated process from one
:class:`~repro.kernel.Kernel` (machine) to another: checkpoint its
program + syscall log + heap contents, ship the image over a simulated
link, and reconstruct the process on the target by deterministic replay —
the same mechanism world-splitting uses.

Restrictions (checked): the process must be unpredicated (migrating a
speculative world would tear it out of its resolution web), have exactly
one live world, be parked in ``recv`` (the natural quiescent point of a
server process), and have no live alternative children.

On an unreliable link the protocol is conservative: the image ship and
the target's acknowledgement both retry under a
:class:`~repro.distrib.retry.RetryPolicy`, and the source kernel keeps
the process — completely untouched — until the ack lands. A link that
dies mid-ship (or swallows every ack) aborts the migration with
:class:`~repro.errors.NetworkError`: nothing was registered on the
target, nothing was torn down on the source, and the caller may simply
retry later.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.distrib.netsim import SimulatedLink
from repro.distrib.retry import RetryPolicy, call_with_retries
from repro.errors import CheckpointError, NetworkError, RetriesExhausted
from repro.kernel.kernel import Kernel
from repro.kernel.process import ProcState, SimProcess
from repro.memory.heap import PagedHeap

#: The ack is a tiny fixed-size frame (dst pid + status), not the image.
_ACK_BYTES = 64


@dataclass(frozen=True)
class MigrationRecord:
    """What one migration cost and produced."""

    src_pid: int
    dst_pid: int
    image_bytes: int
    transfer_s: float
    queued_messages: int
    retries: int = 0
    backoff_s: float = 0.0


def _image_size(world: SimProcess) -> int:
    """Approximate checkpoint size: heap contents + replay log."""
    try:
        heap_blob = pickle.dumps(world.heap.as_dict(), protocol=pickle.HIGHEST_PROTOCOL)
        log_blob = pickle.dumps(world.log, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"process state not serializable: {exc}") from exc
    return len(heap_blob) + len(log_blob) + 256  # header/registers allowance


def migrate_process(
    src: Kernel,
    pid: int,
    dst: Kernel,
    link: SimulatedLink | None = None,
    retry: RetryPolicy | None = None,
) -> MigrationRecord:
    """Move process ``pid`` from kernel ``src`` to kernel ``dst``.

    Returns a :class:`MigrationRecord`; the process continues on ``dst``
    under a new pid, blocked at the same ``recv`` with its queued
    messages carried along. If the link dies mid-ship or never delivers
    the target's ack, raises :class:`~repro.errors.NetworkError` with
    both kernels unchanged (the source keeps the process).
    """
    live = [w for w in src.worlds_of(pid) if w.alive]
    if len(live) != 1:
        raise CheckpointError(
            f"pid {pid} has {len(live)} live worlds; need exactly one to migrate"
        )
    world = live[0]
    if world.state is not ProcState.BLOCKED_RECV:
        raise CheckpointError(
            f"pid {pid} is {world.state.value}; only recv-parked processes migrate"
        )
    if world.predicates.unresolved:
        raise CheckpointError(f"pid {pid} is speculative; resolve before migrating")
    for child_pid in world.child_pids:
        for wid in src.pid_worlds.get(child_pid, []):
            if src.worlds[wid].alive:
                raise CheckpointError(
                    f"pid {pid} has a live alternative child (pid {child_pid})"
                )

    image_bytes = _image_size(world)
    transfer_s = 0.0
    retries = 0
    backoff_s = 0.0
    if link is not None:
        policy = retry if retry is not None else RetryPolicy()
        before = link.busy_seconds
        try:
            # phase 1: ship the image; phase 2: the target acks receipt.
            # Only after the ack does either kernel mutate — a dead link
            # aborts here with the process still owned by the source.
            _, ship_stats = call_with_retries(
                lambda attempt: link.transfer(image_bytes, attempt=attempt),
                policy=policy, token=f"migrate:{pid}:image", link=link,
            )
            _, ack_stats = call_with_retries(
                lambda attempt: link.transfer(_ACK_BYTES, attempt=attempt),
                policy=policy, token=f"migrate:{pid}:ack", link=link,
            )
        except RetriesExhausted as exc:
            raise NetworkError(
                f"migration of pid {pid} aborted, link died mid-ship: {exc} "
                "(source kernel keeps the process)"
            ) from exc
        retries = ship_stats.retries + ack_stats.retries
        backoff_s = ship_stats.backoff_s + ack_stats.backoff_s
        transfer_s = (link.busy_seconds - before) + backoff_s

    # reconstruct on the destination machine
    new_pid = dst._pids.next()
    heap = PagedHeap(pool=dst.pool)
    heap.update(world.heap.as_dict())
    clone = SimProcess(
        wid=dst._wids.next(),
        pid=new_pid,
        name=world.name,
        program=world.program,
        args=world.args,
        heap=heap,
        cloned_from=world.wid,
    )
    clone.log = list(world.log)
    dst._replay(clone)
    clone.state = ProcState.BLOCKED_RECV
    queued = list(world.mailbox)
    dst._register(clone)
    for msg in queued:
        clone.mailbox.deliver(
            type(msg)(
                sender=msg.sender, dest=new_pid, data=msg.data,
                predicate=msg.predicate, msg_id=msg.msg_id, sent_at=msg.sent_at,
                sender_world=msg.sender_world,
            )
        )
    if queued:
        dst._pump_blocked_receiver(clone)

    # tear down the source copy without emitting a completion fact — the
    # process did not fail, it moved.
    world.state = ProcState.KILLED
    world.error = f"migrated to {dst!r} as pid {new_pid}"
    world.bump_dispatch()
    world.bump_timer()
    world.heap.release()
    src.trace.record(src.now, "migrate-out", pid, wid=world.wid, dst_pid=new_pid)
    dst.trace.record(dst.now, "migrate-in", new_pid, wid=clone.wid, src_pid=pid)

    return MigrationRecord(
        src_pid=pid,
        dst_pid=new_pid,
        image_bytes=image_bytes,
        transfer_s=transfer_s,
        queued_messages=len(queued),
        retries=retries,
        backoff_s=backoff_s,
    )
