"""Remote fork: checkpoint + ship + restart, surviving a lossy link.

Two modes:

- :meth:`RemoteFork.model` — the calibrated 1989 cost model. The paper
  reports a 70K-process rfork at slightly under 1 s of checkpoint work
  with an observed ~1.3 s average once network delays are included; the
  default checkpoint rate and :data:`repro.analysis.calibration.RFORK_LINK`
  regenerate those numbers.
- :meth:`RemoteFork.execute` — really checkpoint a task, ship it over the
  simulated link, and restart the image in a forked child, returning both
  the task result and the measured/simulated breakdown.

When the link carries a :class:`~repro.faults.plan.FaultPlan`,
``execute`` becomes an at-least-once protocol:

- dropped/partitioned transfers retry with exponential backoff and
  deterministic jitter (bounded by the :class:`RetryPolicy`);
- every shipped image is CRC-verified at
  :meth:`~repro.runtime.checkpoint.CheckpointImage.from_bytes`; a
  corrupted delivery is rejected and retried instead of reaching
  ``pickle.loads``;
- an idempotency token (CRC of the blob) guards application: a duplicated
  delivery, or a retry whose earlier copy actually landed, executes the
  task exactly once;
- an injected remote-node crash (the ``remote`` fault site) is retried
  like a transfer fault, and when the whole budget is exhausted the task
  re-lands *locally* (``fallback="local"``) so the caller still commits —
  the distributed leg of PR 1's fork→thread→sequential degradation.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass

from repro.analysis.calibration import RFORK_LINK
from repro.distrib.netsim import SimulatedLink
from repro.distrib.retry import RetryPolicy, RetryStats, call_with_retries
from repro.errors import (
    CheckpointError,
    RemoteNodeDown,
    RetriesExhausted,
    TransferError,
)
from repro.faults.plan import REMOTE_SITE, FaultKind
from repro.runtime.checkpoint import CheckpointImage

#: Failures :meth:`RemoteFork.execute` treats as retryable: anything the
#: wire did (drop/partition/corrupt-detected-by-CRC) plus the remote node
#: crashing before it could apply the image.
_RETRYABLE = (TransferError, CheckpointError, RemoteNodeDown)

#: Calibrated checkpoint throughput: ~70 KiB dumped in ~0.85 s (paper: an
#: rfork of a 70K process "requires slightly less than a second", dominated
#: by checkpoint creation).
CHECKPOINT_BYTES_PER_S_1989 = 70 * 1024 / 0.85

#: Fixed restart cost (bootstrap + exec of the image).
RESTART_FIXED_S_1989 = 0.05


@dataclass(frozen=True)
class RforkCost:
    """Time breakdown of one remote fork."""

    checkpoint_s: float
    transfer_s: float
    restart_s: float
    image_bytes: int
    attempts: int = 1
    backoff_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.checkpoint_s + self.transfer_s + self.restart_s + self.backoff_s


class RemoteFork:
    """Remote fork over one simulated link.

    ``node_id`` names the remote machine for the fault plan's ``remote``
    site; ``retry`` bounds the at-least-once protocol;
    ``fallback_local=False`` turns exhaustion into
    :class:`~repro.errors.RetriesExhausted` instead of a local re-landing.
    """

    def __init__(
        self,
        link: SimulatedLink | None = None,
        checkpoint_bytes_per_s: float = CHECKPOINT_BYTES_PER_S_1989,
        restart_fixed_s: float = RESTART_FIXED_S_1989,
        retry: RetryPolicy | None = None,
        node_id: int = 1,
        fallback_local: bool = True,
    ) -> None:
        self.link = link if link is not None else SimulatedLink(RFORK_LINK)
        self.checkpoint_bytes_per_s = checkpoint_bytes_per_s
        self.restart_fixed_s = restart_fixed_s
        self.retry = retry if retry is not None else RetryPolicy()
        self.node_id = node_id
        self.fallback_local = fallback_local
        #: idempotency tokens already applied on the "remote" node
        self._applied: dict[str, object] = {}
        #: duplicate deliveries whose second copy was suppressed
        self.duplicates_suppressed = 0
        #: report of the most recent :meth:`execute` (attempts, faults, ...)
        self.last_report: dict = {}

    # -- analytic model --------------------------------------------------
    def model(self, image_bytes: int) -> RforkCost:
        """Predicted cost of rforking an image of ``image_bytes``."""
        return RforkCost(
            checkpoint_s=image_bytes / self.checkpoint_bytes_per_s,
            transfer_s=self.link.transfer_time(image_bytes),
            restart_s=self.restart_fixed_s,
            image_bytes=image_bytes,
        )

    # -- real execution -----------------------------------------------------
    def _deliver_once(self, blob: bytes, token: str, attempt: int):
        """One protocol attempt: ship, verify, crash-check, apply-once."""
        delivery = self.link.ship(blob, attempt=attempt)
        # CRC gate: a corrupt or torn image must never reach pickle.loads
        restored = CheckpointImage.from_bytes(delivery.payload)
        plan = self.link.fault_plan
        if plan is not None and plan.decide(REMOTE_SITE, self.node_id, attempt).kind is FaultKind.REMOTE_CRASH:
            raise RemoteNodeDown(
                f"node {self.node_id} crashed mid-restart (attempt {attempt})"
            )
        if delivery.copies > 1:
            self.duplicates_suppressed += delivery.copies - 1
        if token in self._applied:
            # an earlier copy of this exact image already ran: at-least-once
            # delivery must not double-apply
            self.duplicates_suppressed += 1
            return self._applied[token], delivery
        result = restored.restart_in_fork()
        self._applied[token] = result
        return result, delivery

    def execute(self, fn, state: dict, name: str = "rfork-task"):
        """Checkpoint, ship (with retries), restart; return the result.

        Returns ``(result, measured: RforkCost)`` where ``checkpoint_s``
        and ``restart_s`` are real wall-clock measurements on this host
        and ``transfer_s``/``backoff_s`` come from the simulated link (the
        network we do not have). A report of the protocol's behaviour —
        attempts, injected faults survived, whether the task fell back to
        local execution — lands in :attr:`last_report`.
        """
        t0 = time.perf_counter()
        image = CheckpointImage.capture(fn, state, name)
        blob = image.to_bytes()
        checkpoint_s = time.perf_counter() - t0
        token = f"rfork:{name}:{zlib.crc32(blob):08x}"

        transfer_before = self.link.busy_seconds
        stats = RetryStats()
        fallback = None
        t1 = time.perf_counter()
        try:
            (result, _delivery), stats = call_with_retries(
                lambda attempt: self._deliver_once(blob, token, attempt),
                policy=self.retry,
                token=token,
                link=self.link,
                retry_on=_RETRYABLE,
            )
        except RetriesExhausted as exc:
            stats = getattr(exc, "stats", stats)
            if not self.fallback_local:
                self.last_report = {
                    "token": token,
                    "attempts": stats.attempts,
                    "retries": stats.retries,
                    "faults": list(stats.faults),
                    "backoff_s": stats.backoff_s,
                    "duplicates_suppressed": self.duplicates_suppressed,
                    "fallback": None,
                }
                raise
            # the network (or the remote node) is gone: degrade to running
            # the already-captured image on this host
            fallback = "local"
            result = image.restart()
        restart_s = time.perf_counter() - t1
        transfer_s = self.link.busy_seconds - transfer_before

        self.last_report = {
            "token": token,
            "attempts": stats.attempts,
            "retries": stats.retries,
            "faults": list(stats.faults),
            "backoff_s": stats.backoff_s,
            "duplicates_suppressed": self.duplicates_suppressed,
            "fallback": fallback,
        }
        return result, RforkCost(
            checkpoint_s=checkpoint_s,
            transfer_s=transfer_s,
            restart_s=restart_s,
            image_bytes=len(blob),
            attempts=stats.attempts,
            backoff_s=stats.backoff_s,
        )

    def execute_block(self, fn, state: dict, name: str = "rfork-task"):
        """Run :meth:`execute` and wrap the result as a ``BlockOutcome``.

        The protocol report (retries, faults survived, local fallback)
        lands in ``outcome.extras["rfork"]`` so supervised pipelines can
        inspect network behaviour the same way they inspect PR 1's
        supervisor history.
        """
        from repro.core.outcome import AlternativeResult, BlockOutcome

        t0 = time.perf_counter()
        try:
            result, cost = self.execute(fn, state, name)
        except RetriesExhausted as exc:
            outcome = BlockOutcome(winner=None, elapsed_s=time.perf_counter() - t0)
            outcome.extras["rfork"] = dict(self.last_report or {})
            outcome.extras["rfork"]["error"] = str(exc)
            return outcome
        winner = AlternativeResult(
            index=0, name=name, value=result, succeeded=True,
            elapsed_s=cost.total_s,
        )
        outcome = BlockOutcome(winner=winner, elapsed_s=time.perf_counter() - t0)
        outcome.extras["rfork"] = dict(self.last_report)
        outcome.extras["rfork"]["cost"] = {
            "checkpoint_s": cost.checkpoint_s,
            "transfer_s": cost.transfer_s,
            "restart_s": cost.restart_s,
            "backoff_s": cost.backoff_s,
            "image_bytes": cost.image_bytes,
        }
        return outcome
