"""Remote fork: checkpoint + ship + restart.

Two modes:

- :meth:`RemoteFork.model` — the calibrated 1989 cost model. The paper
  reports a 70K-process rfork at slightly under 1 s of checkpoint work
  with an observed ~1.3 s average once network delays are included; the
  default checkpoint rate and :data:`repro.analysis.calibration.RFORK_LINK`
  regenerate those numbers.
- :meth:`RemoteFork.execute` — really checkpoint a task, account the
  simulated link transfer, and restart the image in a forked child,
  returning both the task result and the measured/simulated breakdown.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.analysis.calibration import RFORK_LINK
from repro.distrib.netsim import SimulatedLink
from repro.runtime.checkpoint import CheckpointImage

#: Calibrated checkpoint throughput: ~70 KiB dumped in ~0.85 s (paper: an
#: rfork of a 70K process "requires slightly less than a second", dominated
#: by checkpoint creation).
CHECKPOINT_BYTES_PER_S_1989 = 70 * 1024 / 0.85

#: Fixed restart cost (bootstrap + exec of the image).
RESTART_FIXED_S_1989 = 0.05


@dataclass(frozen=True)
class RforkCost:
    """Time breakdown of one remote fork."""

    checkpoint_s: float
    transfer_s: float
    restart_s: float
    image_bytes: int

    @property
    def total_s(self) -> float:
        return self.checkpoint_s + self.transfer_s + self.restart_s


class RemoteFork:
    """Remote fork over one simulated link."""

    def __init__(
        self,
        link: SimulatedLink | None = None,
        checkpoint_bytes_per_s: float = CHECKPOINT_BYTES_PER_S_1989,
        restart_fixed_s: float = RESTART_FIXED_S_1989,
    ) -> None:
        self.link = link if link is not None else SimulatedLink(RFORK_LINK)
        self.checkpoint_bytes_per_s = checkpoint_bytes_per_s
        self.restart_fixed_s = restart_fixed_s

    # -- analytic model --------------------------------------------------
    def model(self, image_bytes: int) -> RforkCost:
        """Predicted cost of rforking an image of ``image_bytes``."""
        return RforkCost(
            checkpoint_s=image_bytes / self.checkpoint_bytes_per_s,
            transfer_s=self.link.transfer_time(image_bytes),
            restart_s=self.restart_fixed_s,
            image_bytes=image_bytes,
        )

    # -- real execution -----------------------------------------------------
    def execute(self, fn, state: dict, name: str = "rfork-task"):
        """Checkpoint, "ship", restart in a forked child; return result.

        Returns ``(result, measured: RforkCost)`` where ``checkpoint_s``
        and ``restart_s`` are real wall-clock measurements on this host
        and ``transfer_s`` comes from the simulated link (the network we
        do not have).
        """
        t0 = time.perf_counter()
        image = CheckpointImage.capture(fn, state, name)
        blob = image.to_bytes()
        checkpoint_s = time.perf_counter() - t0

        transfer_s = self.link.transfer(len(blob))

        t1 = time.perf_counter()
        restored = CheckpointImage.from_bytes(blob)
        result = restored.restart_in_fork()
        restart_s = time.perf_counter() - t1
        return result, RforkCost(
            checkpoint_s=checkpoint_s,
            transfer_s=transfer_s,
            restart_s=restart_s,
            image_bytes=len(blob),
        )
