"""The exactly-once source gate.

A :class:`SourceGate` wraps a non-retryable source device (a
:class:`~repro.devices.teletype.Teletype`, say) and presents it to the
kernel as a *sink*: it implements the full
:class:`~repro.devices.device.SinkDevice` staging protocol, so the
kernel's existing speculative-write machinery routes through it
unchanged. That is Jefferson's buffered-``stdout`` trick (paper § 5)
upgraded with a write-ahead journal:

- **writes by speculative worlds** accumulate in a per-world *effect
  ledger* (``stage_write``); nothing touches the inner device. At commit
  (``commit_world``) the ledger is assigned stream positions and
  released entry-by-entry under a journaled ``release`` transaction —
  intent (carrying the whole ledger, for redo), seal, then one inner
  write + one ``release`` record per entry, then applied.
- **direct writes** (unpredicated worlds) release immediately under a
  bare ``release`` record.
- **exactly-once** is positional: the journal's per-device *release
  frontier* (max released ``pos_end``) survives crashes; any write whose
  positions fall at or below the frontier is already durable on the
  inner device and is skipped, and a partially-covered write is sliced.
  Deterministic re-execution regenerates the same stream, so positions
  — not effect ids, which restart with the process — line up across
  incarnations.
- **reads** are replay-buffered: the first reader past the buffered
  frontier pulls fresh bytes from the inner source and journals them
  (``note_read``); every later reader — including the whole re-run after
  a crash — replays from the buffer, so destructive scripted input is
  consumed exactly once.

Atomicity grain: one ledger entry's (inner write, release record) pair
is a single atomic step. The deterministic fault plane injects crashes
*between* entries (``PARTIAL_RELEASE`` stops the loop halfway), at the
transaction boundaries (torn intent, crash before/after seal), and
never inside the pair — the simulated-crash analogue of a write that
either reached the device or did not.
"""

from __future__ import annotations

from typing import Any

from repro.devices.device import Device, SinkDevice
from repro.errors import InputExhausted, JournalCrash
from repro.faults.plan import JOURNAL_SITE, FaultKind
from repro.journal.wal import CommitJournal


class SourceGate(SinkDevice):
    """A journal-backed, exactly-once façade over a source device.

    Parameters
    ----------
    inner:
        The real source device. Its effects are the only ones that count
        as observable; everything the gate holds is revocable.
    journal:
        The :class:`~repro.journal.wal.CommitJournal` recording releases
        and reads. The gate rebuilds its replay buffer and consults the
        release frontier from it, so constructing a fresh gate over a
        recovered journal resumes exactly where the dead one stopped.
    name:
        Device name the kernel sees; defaults to the inner device's.
    """

    def __init__(self, inner: Device, journal: CommitJournal, name: str | None = None) -> None:
        super().__init__(name or inner.name)
        self.inner = inner
        self.journal = journal
        self._ledger: dict[int, list[tuple[int, bytes]]] = {}  # wid -> [(eid, data)]
        self._read_pos: dict[Any, int] = {}
        self._read_buffer = bytearray(journal.reads_for(self.name))
        self._next_eid = 1
        self._pos = 0  # logical output-stream position of *this* incarnation
        self.released_bytes = 0
        self.skipped_bytes = 0  # deduplicated by the durable frontier
        self.double_commits = 0
        self.real_reads = 0
        self.replayed_reads = 0
        self._committed_worlds: set[int] = set()
        if journal.obs is not None:
            # Absorb the gate's ad-hoc counters as callback gauges. A
            # fresh gate over a recovered journal has the same device
            # name and simply rebinds the shims to itself.
            from repro.obs.metrics import bind_attr_gauges

            slug = "".join(c if c.isalnum() else "_" for c in self.name)
            bind_attr_gauges(
                journal.obs.registry, self,
                ("released_bytes", "skipped_bytes", "double_commits",
                 "real_reads", "replayed_reads"),
                prefix=f"mw_gate_{slug}",
            )

    @property
    def frontier(self) -> int:
        """The durable release frontier (max released stream position)."""
        return self.journal.release_frontier(self.name)

    # -- reads: journal-buffered replay ------------------------------------
    def read(
        self,
        nbytes: int,
        world: int | None = None,
        client: Any = None,
        offset: int = 0,
        **kwargs: Any,
    ) -> bytes:
        """Read through the durable replay buffer.

        Keyed per world (the kernel passes ``world=`` for sink devices);
        each key tracks its own stream position, and
        :meth:`fork_reader` lets a forked world inherit its parent's.
        """
        key = world if world is not None else (client if client is not None else "default")
        pos = self._read_pos.get(key, 0)
        needed = pos + nbytes - len(self._read_buffer)
        if needed > 0:
            try:
                fresh = self.inner.read(needed)
            except InputExhausted:
                if pos >= len(self._read_buffer):
                    raise
                fresh = b""  # partial tail still available from the buffer
            if fresh:
                self.journal.note_read(self.name, fresh)
                self._read_buffer.extend(fresh)
            self.real_reads += 1
        else:
            self.replayed_reads += 1
        chunk = bytes(self._read_buffer[pos : pos + nbytes])
        self._read_pos[key] = pos + len(chunk)
        return chunk

    def fork_reader(self, src: int, dst: int) -> None:
        """A world forked: the child inherits the parent's read position."""
        if src in self._read_pos:
            self._read_pos[dst] = self._read_pos[src]

    def forget_client(self, key: Any) -> None:
        """Drop an eliminated world's read position and pending ledger."""
        self._read_pos.pop(key, None)
        self._ledger.pop(key, None)

    # -- writes: ledger, release, frontier dedup ---------------------------
    def write(self, data: bytes, **kwargs: Any) -> int:
        """Direct (non-speculative) write: release immediately, journaled."""
        pos_start = self._pos
        pos_end = pos_start + len(data)
        self._pos = pos_end
        if data:
            eid = self._next_eid
            self._next_eid += 1
            self._release_entry(None, eid, pos_start, pos_end, bytes(data))
        return len(data)

    def stage_write(self, world: int, data: bytes, **kwargs: Any) -> int:
        """Buffer a speculative world's source effect in its ledger."""
        eid = self._next_eid
        self._next_eid += 1
        self._ledger.setdefault(world, []).append((eid, bytes(data)))
        return len(data)

    def commit_world(self, world: int) -> None:
        """Release ``world``'s ledger exactly-once under a journal txn.

        Idempotent per wid: a repeat commit finds an empty ledger and is
        a counted no-op. May raise :class:`~repro.errors.JournalCrash`
        at any injected fault point; the intent record carries the full
        ledger so recovery can redo the un-released entries.
        """
        entries = self._ledger.pop(world, None)
        if not entries:
            if world in self._committed_worlds:
                self.double_commits += 1
            self._committed_worlds.add(world)
            return
        staged = []
        pos = self._pos
        for eid, data in entries:
            staged.append((eid, pos, pos + len(data), data))
            pos += len(data)
        seq = self.journal.begin(
            "release", device=self.name, world=world, entries=staged
        )
        self.journal.seal(seq)
        armed = self.journal.take_armed(seq)
        limit = len(staged) // 2 if armed is FaultKind.PARTIAL_RELEASE else None
        for i, (eid, pos_start, pos_end, data) in enumerate(staged):
            if limit is not None and i >= limit:
                if self.journal.fault_plan is not None:
                    self.journal.fault_plan.note_injection(
                        JOURNAL_SITE, armed, detail=f"txn {seq}",
                        track="journal", txn=seq, device=self.name,
                        released=i, staged=len(staged),
                    )
                raise JournalCrash(
                    f"injected partial release: {i} of {len(staged)} effects "
                    f"released (txn {seq})",
                    kind=armed, seq=seq,
                )
            self._release_entry(seq, eid, pos_start, pos_end, data)
        self.journal.mark_applied(seq, released=len(staged))
        self._pos = pos
        self._committed_worlds.add(world)

    def discard_world(self, world: int) -> None:
        """Eliminate ``world``'s ledger — its effects never existed."""
        self._ledger.pop(world, None)

    def transfer_world(self, src: int, dst: int) -> int:
        """Re-key ``src``'s ledger to ``dst`` (commit into a speculative parent).

        The read position travels too: input the winner consumed is part
        of the history the parent resumes from.
        """
        moved = self._ledger.pop(src, [])
        if moved:
            self._ledger.setdefault(dst, []).extend(moved)
        if src in self._read_pos:
            self._read_pos[dst] = max(
                self._read_pos.get(dst, 0), self._read_pos.pop(src)
            )
        return len(moved)

    # -- the atomic step ---------------------------------------------------
    def _release_entry(
        self, seq: int | None, eid: int, pos_start: int, pos_end: int, data: bytes
    ) -> None:
        """Release one effect: inner write + release record, frontier-deduped."""
        frontier = self.journal.release_frontier(self.name)
        if pos_end <= frontier:
            self.skipped_bytes += len(data)
            return  # already durable on the inner device (earlier incarnation)
        fresh = data[max(0, frontier - pos_start):]
        self.inner.write(fresh)
        self.journal.release(seq, self.name, eid, pos_start, pos_end)
        self.released_bytes += len(fresh)

    # -- recovery redo -----------------------------------------------------
    def redo_release(self, seq: int, entries) -> int:
        """Roll a sealed-but-unapplied release txn forward; returns redone count.

        Called by :func:`repro.journal.recovery.recover` with the intent's
        ledger. Entries at or below the frontier were released by the dead
        incarnation and are skipped, so redoing twice is a no-op.
        """
        redone = 0
        for eid, pos_start, pos_end, data in entries:
            if pos_end > self.journal.release_frontier(self.name):
                redone += 1
            self._release_entry(seq, eid, pos_start, pos_end, data)
        return redone

    # -- introspection -----------------------------------------------------
    def pending_effects(self, world: int) -> int:
        return len(self._ledger.get(world, ()))

    def staged_worlds(self) -> list[int]:
        return sorted(self._ledger)
