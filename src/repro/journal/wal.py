"""The write-ahead commit journal.

One append-only byte stream of CRC-framed records (the MWCKPT2 idiom of
:mod:`repro.runtime.checkpoint`, per record instead of per image):

    magic ``MWJRNL1\\n`` once, then repeated
    ``<II>(body_len, crc32)`` + pickled body

A record whose frame is incomplete or whose checksum does not match is a
*torn tail*: opening the journal truncates it away (crash-during-append
is expected, not fatal) without ever unpickling unverified bytes.

Transactions follow the intent -> seal -> apply protocol:

====== ================================================================
record meaning
====== ================================================================
intent ``begin(kind, **data)`` — what is about to happen, with enough
       data to redo it (a ``release`` intent carries the full effect
       ledger).
seal   the durable decision point. A sealed transaction *will* happen:
       recovery rolls it forward. An unsealed one never happened:
       recovery rolls it back (abort record).
applied the apply phase finished; recovery skips the transaction.
abort  the transaction was rolled back (recovery, or a voluntary
       abandon before seal).
release one source effect reached the inner device: ``(device, eid,
       pos_start, pos_end)``. The per-device maximum ``pos_end`` is the
       durable *release frontier* — the exactly-once dedup line.
read   fresh bytes consumed from a real source (``note_read``); the
       gate's replay buffer is rebuilt from these, so destructive
       scripted input is consumed exactly once across crash/re-run.
====== ================================================================

Positions, not effect ids, carry the exactly-once guarantee: a re-run
after recovery restarts its eid counters, but deterministic re-execution
regenerates the same output stream, so byte positions line up and the
frontier deduplicates them.

Fault injection (``JOURNAL_SITE``, keyed by transaction seq — one
decision per transaction, first hit wins):

- ``TORN_RECORD``: half the intent frame reaches storage, then the
  process dies (:class:`~repro.errors.JournalCrash`);
- ``CRASH_BEFORE_SEAL`` / ``CRASH_AFTER_SEAL``: armed at ``begin``,
  fired by ``seal`` around the seal append;
- ``PARTIAL_RELEASE``: armed at ``begin``, consumed by the
  :class:`~repro.journal.gate.SourceGate` release loop via
  :meth:`CommitJournal.take_armed`;
- ``DOUBLE_RECOVERY`` is decided at the reserved key
  :data:`~repro.faults.plan.RECOVERY_KEY` by :func:`repro.journal.recovery.recover`.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from typing import Any

from repro.errors import JournalCrash, JournalError
from repro.faults.plan import JOURNAL_SITE, FaultKind

MAGIC = b"MWJRNL1\n"
_FRAME = struct.Struct("<II")

#: Fault kinds armed at ``begin`` and fired later in the transaction.
_ARMED_KINDS = (
    FaultKind.CRASH_BEFORE_SEAL,
    FaultKind.CRASH_AFTER_SEAL,
    FaultKind.PARTIAL_RELEASE,
)


class MemoryJournalStorage:
    """Journal bytes in memory — the fuzz harness's simulated disk.

    The instance outlives the process-under-test: a crash discards the
    :class:`CommitJournal` object but keeps this storage, exactly like a
    real disk surviving a process death.
    """

    def __init__(self, data: bytes = b"") -> None:
        self._buf = bytearray(data)

    def load(self) -> bytes:
        return bytes(self._buf)

    def append(self, blob: bytes) -> None:
        self._buf.extend(blob)

    def truncate(self, size: int) -> None:
        del self._buf[size:]

    def __len__(self) -> int:
        return len(self._buf)


class FileJournalStorage:
    """Journal bytes in a real file, fsynced per append."""

    def __init__(self, path: str) -> None:
        self.path = path

    def load(self) -> bytes:
        try:
            with open(self.path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def append(self, blob: bytes) -> None:
        with open(self.path, "ab") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())

    def truncate(self, size: int) -> None:
        if os.path.exists(self.path):
            os.truncate(self.path, size)

    def __len__(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0


class CommitJournal:
    """The append-only intent log, with torn-tail repair on open.

    Parameters
    ----------
    storage:
        A :class:`MemoryJournalStorage` / :class:`FileJournalStorage`
        (anything with ``load``/``append``/``truncate``). Defaults to a
        fresh in-memory store.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`; enables the
        ``journal`` fault site (see the module docstring).
    obs:
        Optional :class:`~repro.obs.Observability`. Each transaction
        becomes one span on the ``journal`` track (opened at intent,
        settled ``committed`` at applied / ``aborted`` at abort), and
        every protocol step increments
        ``mw_journal_txns_total{kind,phase}``. Journal spans use the
        tracer's wall clock.
    """

    def __init__(self, storage=None, fault_plan=None, obs=None) -> None:
        self.storage = storage if storage is not None else MemoryJournalStorage()
        self.fault_plan = fault_plan
        self.obs = obs
        self._txn_spans: dict[int, int] = {}
        self._txn_c = None
        if obs is not None:
            self._txn_c = obs.registry.counter(
                "mw_journal_txns_total", "Journal protocol steps",
                labelnames=("kind", "phase"),
            )
            obs.tracer.set_track_name("journal", "commit journal")
            if fault_plan is not None:
                obs.watch_fault_plan(fault_plan)
        self._records: list[dict] = []
        self._intents: dict[int, dict] = {}
        self._sealed: set[int] = set()
        self._applied: dict[int, dict] = {}
        self._aborted: set[int] = set()
        self._frontiers: dict[str, int] = {}
        self._reads: dict[str, bytearray] = {}
        self._armed: dict[int, FaultKind] = {}
        self._next_seq = 1
        self.repaired_bytes = 0
        self._open()

    # -- opening / torn-tail repair ----------------------------------------
    def _open(self) -> None:
        raw = self.storage.load()
        if not raw:
            self.storage.append(MAGIC)
            return
        if not raw.startswith(MAGIC):
            if len(raw) < len(MAGIC) and MAGIC.startswith(raw):
                # crash during the very first append: torn magic
                self.repaired_bytes = len(raw)
                self.storage.truncate(0)
                self.storage.append(MAGIC)
                return
            raise JournalError("not a commit journal (bad magic)")
        offset = len(MAGIC)
        while offset < len(raw):
            if offset + _FRAME.size > len(raw):
                break  # torn frame header
            body_len, crc = _FRAME.unpack_from(raw, offset)
            body = raw[offset + _FRAME.size : offset + _FRAME.size + body_len]
            if len(body) < body_len or zlib.crc32(body) != crc:
                break  # torn or corrupt tail — CRC checked before unpickle
            try:
                record = pickle.loads(body)
            except Exception:
                break  # pragma: no cover - CRC passed but body unreadable
            self._index(record)
            self._records.append(record)
            offset += _FRAME.size + body_len
        if offset < len(raw):
            self.repaired_bytes = len(raw) - offset
            self.storage.truncate(offset)

    def _index(self, record: dict) -> None:
        kind = record["t"]
        if kind == "intent":
            seq = record["seq"]
            self._intents[seq] = record
            self._next_seq = max(self._next_seq, seq + 1)
        elif kind == "seal":
            self._sealed.add(record["seq"])
        elif kind == "applied":
            self._applied[record["seq"]] = record.get("data", {})
        elif kind == "abort":
            self._aborted.add(record["seq"])
        elif kind == "release":
            device = record["device"]
            if record["pos_end"] > self._frontiers.get(device, 0):
                self._frontiers[device] = record["pos_end"]
        elif kind == "read":
            self._reads.setdefault(record["device"], bytearray()).extend(
                record["data"]
            )

    # -- appending ---------------------------------------------------------
    @staticmethod
    def _frame(record: dict) -> bytes:
        try:
            body = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise JournalError(
                f"unpicklable journal record {record.get('t')!r}: {exc}"
            ) from exc
        return _FRAME.pack(len(body), zlib.crc32(body)) + body

    def _append(self, record: dict) -> None:
        self.storage.append(self._frame(record))
        self._index(record)
        self._records.append(record)

    # -- the transaction protocol ------------------------------------------
    def begin(self, kind: str, **data: Any) -> int:
        """Write an intent record; returns the transaction seq.

        The intent must carry everything needed to *redo* the apply phase
        (recovery has only the journal and the devices). May raise
        :class:`~repro.errors.JournalCrash` (injected torn record) or arm
        a later-stage fault for this seq.
        """
        seq = self._next_seq
        self._next_seq += 1
        record = {"t": "intent", "seq": seq, "kind": kind, "data": data}
        fault = None
        if self.fault_plan is not None:
            fault = self.fault_plan.decide(JOURNAL_SITE, seq).kind
        if fault is FaultKind.TORN_RECORD:
            blob = self._frame(record)
            self.storage.append(blob[: max(1, len(blob) // 2)])
            self.fault_plan.note_injection(
                JOURNAL_SITE, fault, detail=f"torn intent (txn {seq})",
                track="journal", txn=seq, txn_kind=kind,
            )
            raise JournalCrash(
                f"injected torn intent record (txn {seq}, kind {kind!r})",
                kind=fault, seq=seq,
            )
        self._append(record)
        if fault in _ARMED_KINDS:
            self._armed[seq] = fault
        if self.obs is not None:
            self._txn_c.inc(kind=kind, phase="intent")
            sid = self.obs.tracer.begin(
                f"txn:{kind}", cat="journal", track="journal",
                seq=seq, txn_kind=kind,
            )
            if sid >= 0:
                self._txn_spans[seq] = sid
        return seq

    def seal(self, seq: int) -> None:
        """Write the seal record — the durable commit point of ``seq``."""
        self._check_open(seq, "seal")
        if self._armed.get(seq) is FaultKind.CRASH_BEFORE_SEAL:
            self._armed.pop(seq)
            self._note_crash(seq, FaultKind.CRASH_BEFORE_SEAL)
            raise JournalCrash(
                f"injected crash before seal (txn {seq})",
                kind=FaultKind.CRASH_BEFORE_SEAL, seq=seq,
            )
        self._append({"t": "seal", "seq": seq})
        if self.obs is not None:
            self._txn_c.inc(kind=self._txn_kind(seq), phase="seal")
        if self._armed.get(seq) is FaultKind.CRASH_AFTER_SEAL:
            self._armed.pop(seq)
            self._note_crash(seq, FaultKind.CRASH_AFTER_SEAL)
            raise JournalCrash(
                f"injected crash after seal, before apply (txn {seq})",
                kind=FaultKind.CRASH_AFTER_SEAL, seq=seq,
            )

    def mark_applied(self, seq: int, **data: Any) -> None:
        """Record that ``seq``'s apply phase completed. Idempotent."""
        if seq in self._applied:
            return
        if seq not in self._sealed:
            raise JournalError(f"cannot apply unsealed txn {seq}")
        try:
            self._append({"t": "applied", "seq": seq, "data": data})
        except JournalError:
            # unpicklable apply data: record completion without it
            self._append({"t": "applied", "seq": seq, "data": {}})
        if self.obs is not None:
            self._txn_c.inc(kind=self._txn_kind(seq), phase="applied")
            self.obs.tracer.end(
                self._txn_spans.pop(seq, -1), disposition="committed"
            )

    def abort(self, seq: int, reason: str = "") -> None:
        """Roll ``seq`` back. Idempotent; a sealed txn cannot be aborted."""
        if seq in self._aborted:
            return
        if seq in self._sealed:
            raise JournalError(f"cannot abort sealed txn {seq}")
        if seq not in self._intents:
            raise JournalError(f"cannot abort unknown txn {seq}")
        self._append({"t": "abort", "seq": seq, "reason": reason})
        if self.obs is not None:
            self._txn_c.inc(kind=self._txn_kind(seq), phase="abort")
            self.obs.tracer.end(
                self._txn_spans.pop(seq, -1),
                disposition="aborted", reason=reason,
            )

    def _txn_kind(self, seq: int) -> str:
        intent = self._intents.get(seq)
        return intent["kind"] if intent else "?"

    def _note_crash(self, seq: int, fault: FaultKind) -> None:
        if self.fault_plan is not None:
            self.fault_plan.note_injection(
                JOURNAL_SITE, fault, detail=f"txn {seq}",
                track="journal", txn=seq, txn_kind=self._txn_kind(seq),
            )

    def _check_open(self, seq: int, verb: str) -> None:
        if seq not in self._intents:
            raise JournalError(f"cannot {verb} unknown txn {seq}")
        if seq in self._sealed:
            raise JournalError(f"cannot {verb} already-sealed txn {seq}")
        if seq in self._aborted:
            raise JournalError(f"cannot {verb} aborted txn {seq}")

    # -- source effects ----------------------------------------------------
    def release(
        self, seq: int | None, device: str, eid: int, pos_start: int, pos_end: int
    ) -> None:
        """One source effect reached the inner device (advance frontier).

        ``seq`` is the owning release transaction, or None for a direct
        (non-speculative) write that needs no txn of its own.
        """
        self._append({
            "t": "release", "seq": seq, "device": device,
            "eid": eid, "pos_start": pos_start, "pos_end": pos_end,
        })

    def note_read(self, device: str, data: bytes) -> None:
        """Fresh bytes were consumed from a real source: make them durable."""
        if data:
            self._append({"t": "read", "device": device, "data": bytes(data)})

    def release_frontier(self, device: str) -> int:
        """Max released stream position for ``device`` (the dedup line)."""
        return self._frontiers.get(device, 0)

    def reads_for(self, device: str) -> bytes:
        """Every byte ever consumed from ``device``, in consumption order."""
        return bytes(self._reads.get(device, b""))

    # -- fault arming ------------------------------------------------------
    def take_armed(self, seq: int) -> FaultKind | None:
        """Pop the armed later-stage fault for ``seq`` (gate release loop)."""
        return self._armed.pop(seq, None)

    # -- introspection -----------------------------------------------------
    def records(self) -> list[dict]:
        return list(self._records)

    def intent(self, seq: int) -> dict:
        try:
            return self._intents[seq]
        except KeyError:
            raise JournalError(f"no txn {seq}") from None

    def status(self, seq: int) -> str:
        """``open`` / ``sealed`` / ``applied`` / ``aborted``."""
        if seq in self._applied:
            return "applied"
        if seq in self._aborted:
            return "aborted"
        if seq in self._sealed:
            return "sealed"
        if seq in self._intents:
            return "open"
        raise JournalError(f"no txn {seq}")

    def unsealed_txns(self) -> list[int]:
        """Intents with neither seal nor abort — recovery rolls these back."""
        return sorted(
            seq for seq in self._intents
            if seq not in self._sealed and seq not in self._aborted
        )

    def sealed_unapplied(self) -> list[int]:
        """Sealed intents not yet applied — recovery rolls these forward."""
        return sorted(seq for seq in self._sealed if seq not in self._applied)

    def released_eids(self, seq: int) -> set[int]:
        """Effect ids already released under transaction ``seq``."""
        return {
            r["eid"] for r in self._records
            if r["t"] == "release" and r["seq"] == seq
        }

    def _matches(self, seq: int, kind: str, match: dict) -> bool:
        intent = self._intents[seq]
        if intent["kind"] != kind:
            return False
        data = intent["data"]
        return all(data.get(k) == v for k, v in match.items())

    def find_sealed(self, kind: str, **match: Any) -> dict | None:
        """Latest sealed intent of ``kind`` whose data matches; or None."""
        for seq in sorted(self._sealed, reverse=True):
            if self._matches(seq, kind, match):
                return self._intents[seq]
        return None

    def find_applied(self, kind: str, **match: Any) -> tuple[dict, dict] | None:
        """Latest applied ``(intent, applied_data)`` of ``kind``; or None."""
        for seq in sorted(self._applied, reverse=True):
            if self._matches(seq, kind, match):
                return self._intents[seq], self._applied[seq]
        return None


# -- backend helpers -------------------------------------------------------
def record_block_win(journal: CommitJournal, block_id: int, attempt: int, winner) -> int:
    """Journal a real-backend block win as one intent/seal/applied txn.

    Called by the fork/thread/sequential backends at the moment a winner
    is accepted; the applied record carries the winner's value (when
    picklable) so a supervisor restarted over the same journal can
    replay the outcome instead of re-running the block.
    """
    seq = journal.begin(
        "block", block=block_id, attempt=attempt,
        winner_index=winner.index, winner_name=winner.name,
    )
    journal.seal(seq)
    journal.mark_applied(seq, value=winner.value)
    return seq


def find_block_win(journal: CommitJournal, block_id: int) -> dict | None:
    """The replayable win for ``block_id``, or None.

    Returns ``{"winner_index", "winner_name", "value"}`` only when the
    applied record carries the value (an unpicklable value is recorded
    without it, and such a block must simply re-run).
    """
    hit = journal.find_applied("block", block=block_id)
    if hit is None:
        return None
    intent, applied = hit
    if "value" not in applied:
        return None
    return {
        "winner_index": intent["data"]["winner_index"],
        "winner_name": intent["data"]["winner_name"],
        "value": applied["value"],
    }
