"""The write-ahead commit journal.

One append-only byte stream of CRC-framed records (the MWCKPT2 idiom of
:mod:`repro.runtime.checkpoint`, per record instead of per image):

    magic ``MWJRNL1\\n`` once, then repeated
    ``<II>(body_len, crc32)`` + pickled body

A record whose frame is incomplete or whose checksum does not match is a
*torn tail*: opening the journal truncates it away (crash-during-append
is expected, not fatal) without ever unpickling unverified bytes.

Transactions follow the intent -> seal -> apply protocol:

====== ================================================================
record meaning
====== ================================================================
intent ``begin(kind, **data)`` — what is about to happen, with enough
       data to redo it (a ``release`` intent carries the full effect
       ledger).
seal   the durable decision point. A sealed transaction *will* happen:
       recovery rolls it forward. An unsealed one never happened:
       recovery rolls it back (abort record).
applied the apply phase finished; recovery skips the transaction.
abort  the transaction was rolled back (recovery, or a voluntary
       abandon before seal).
release one source effect reached the inner device: ``(device, eid,
       pos_start, pos_end)``. The per-device maximum ``pos_end`` is the
       durable *release frontier* — the exactly-once dedup line.
read   fresh bytes consumed from a real source (``note_read``); the
       gate's replay buffer is rebuilt from these, so destructive
       scripted input is consumed exactly once across crash/re-run.
====== ================================================================

Snapshots & compaction: ``snapshot()`` appends one ``SNAP_MAGIC``-marked
CRC frame checkpointing the whole ledger (applied frontier, release
positions, reads, live intents); reopening loads the latest snapshot and
replays only the suffix, so replay length is bounded by
records-since-snapshot. ``compact()`` atomically rewrites the file to
``magic + snapshot`` (temp file + rename + parent-dir fsync). A torn or
corrupt snapshot is *quarantined* — reported as a
:class:`QuarantineEntry` and copied to the storage's ``.quarantine``
sidecar — and recovery degrades to full replay of the surviving
records rather than losing data or crashing.

Positions, not effect ids, carry the exactly-once guarantee: a re-run
after recovery restarts its eid counters, but deterministic re-execution
regenerates the same output stream, so byte positions line up and the
frontier deduplicates them.

Fault injection (``JOURNAL_SITE``, keyed by transaction seq — one
decision per transaction, first hit wins):

- ``TORN_RECORD``: half the intent frame reaches storage, then the
  process dies (:class:`~repro.errors.JournalCrash`);
- ``CRASH_BEFORE_SEAL`` / ``CRASH_AFTER_SEAL``: armed at ``begin``,
  fired by ``seal`` around the seal append;
- ``PARTIAL_RELEASE``: armed at ``begin``, consumed by the
  :class:`~repro.journal.gate.SourceGate` release loop via
  :meth:`CommitJournal.take_armed`;
- ``DOUBLE_RECOVERY`` is decided at the reserved key
  :data:`~repro.faults.plan.RECOVERY_KEY` by :func:`repro.journal.recovery.recover`.

The ``snapshot`` site is keyed by snapshot index: ``TORN_SNAPSHOT``
(half the snapshot frame reaches storage, then the process dies) and
``COMPACTION_CRASH`` (the snapshot is durable, but the process dies
before the compaction rewrite).
"""

from __future__ import annotations

import json
import os
import pickle
import struct
import warnings
import zlib
from dataclasses import dataclass
from typing import Any

from repro.errors import JournalCrash, JournalError
from repro.faults.plan import JOURNAL_SITE, SNAPSHOT_SITE, FaultKind

MAGIC = b"MWJRNL1\n"
#: Marker preceding a snapshot frame. A snapshot interprets as a regular
#: frame header of ~1.3 GB, so at a record boundary the marker is
#: unambiguous — which is what lets the scanner *step over* a corrupt
#: snapshot (its frame declares its length) instead of truncating the
#: good records behind it.
SNAP_MAGIC = b"MWSNAP1\n"
_FRAME = struct.Struct("<II")


@dataclass(frozen=True)
class QuarantineEntry:
    """One quarantined stretch of journal bytes, structurally reported.

    ``site`` is where the damage was found (``"snapshot"`` for a
    torn/corrupt snapshot record, ``"tail"`` for a torn record tail);
    ``offset``/``length`` locate the bytes in the pre-repair stream, and
    the CRC pair records what the frame promised vs what the bytes
    hashed to (None when the frame was too torn to carry a checksum).
    """

    site: str
    offset: int
    length: int
    reason: str
    crc_expected: int | None = None
    crc_got: int | None = None

    def as_dict(self) -> dict:
        return {
            "site": self.site, "offset": self.offset, "length": self.length,
            "reason": self.reason, "crc_expected": self.crc_expected,
            "crc_got": self.crc_got,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineEntry":
        """Rebuild an entry from an :meth:`as_dict` image (sidecar line).

        Tolerates the extra keys a sidecar line carries (``blob_len``,
        ``blob_hex``) but insists on the structural fields — a line
        missing them is malformed and raises ``KeyError``/``TypeError``
        for :func:`read_quarantine` to skip.
        """
        return cls(
            site=data["site"],
            offset=int(data["offset"]),
            length=int(data["length"]),
            reason=data["reason"],
            crc_expected=data.get("crc_expected"),
            crc_got=data.get("crc_got"),
        )

#: Fault kinds armed at ``begin`` and fired later in the transaction.
_ARMED_KINDS = (
    FaultKind.CRASH_BEFORE_SEAL,
    FaultKind.CRASH_AFTER_SEAL,
    FaultKind.PARTIAL_RELEASE,
)


class MemoryJournalStorage:
    """Journal bytes in memory — the fuzz harness's simulated disk.

    The instance outlives the process-under-test: a crash discards the
    :class:`CommitJournal` object but keeps this storage, exactly like a
    real disk surviving a process death. Quarantined byte stretches are
    kept in :attr:`quarantine_log` (the in-memory ``.quarantine``
    sidecar) so tests can assert on the structured report.
    """

    def __init__(self, data: bytes = b"") -> None:
        self._buf = bytearray(data)
        self.quarantine_log: list[dict] = []

    def load(self) -> bytes:
        return bytes(self._buf)

    def append(self, blob: bytes) -> None:
        self._buf.extend(blob)

    def truncate(self, size: int) -> None:
        del self._buf[size:]

    def replace(self, data: bytes) -> None:
        """Atomically swap the whole journal image (compaction)."""
        self._buf = bytearray(data)

    def quarantine(self, blob: bytes, entry: dict) -> None:
        self.quarantine_log.append({**entry, "blob": bytes(blob)})

    def __len__(self) -> int:
        return len(self._buf)


class FileJournalStorage:
    """Journal bytes in a real file, fsynced per append.

    Durability notes:

    - The parent directory is fsynced after the file is first created
      and after every :meth:`replace` rename: fsyncing a file makes its
      *bytes* durable, but a directory entry that was never synced can
      vanish wholesale on power loss, taking the freshly created or
      renamed name with it.
    - Appends go through ordinary ``open(..., "ab")`` (``O_APPEND``).
      The kernel guarantees each write lands at the current end of file
      — no interleaving, no overwrites — but a power cut mid-write can
      still leave a *torn final record*: a prefix of the frame. That is
      expected and safe, not a durability bug: the CRC framing detects
      the torn tail and :class:`CommitJournal` quarantines + truncates
      it on open. ``O_APPEND`` rules out corruption of *earlier*
      records, not partial *final* ones.
    - :meth:`replace` (compaction) writes a temp file, fsyncs it, then
      ``os.replace``\\ s over the journal and fsyncs the directory — a
      crash at any point leaves either the old image or the new one,
      never a mix.
    """

    def __init__(self, path: str) -> None:
        self.path = path

    @property
    def quarantine_path(self) -> str:
        return self.path + ".quarantine"

    def _fsync_dir(self) -> None:
        parent = os.path.dirname(os.path.abspath(self.path))
        try:
            fd = os.open(parent, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def load(self) -> bytes:
        try:
            with open(self.path, "rb") as fh:
                return fh.read()
        except FileNotFoundError:
            return b""

    def append(self, blob: bytes) -> None:
        created = not os.path.exists(self.path)
        with open(self.path, "ab") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        if created:
            self._fsync_dir()

    def truncate(self, size: int) -> None:
        if os.path.exists(self.path):
            os.truncate(self.path, size)

    def replace(self, data: bytes) -> None:
        tmp = self.path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)
        self._fsync_dir()

    def quarantine(self, blob: bytes, entry: dict) -> None:
        """Append one JSONL report to the ``.quarantine`` sidecar.

        The damaged bytes ride along hex-encoded (capped at 4 KiB) so a
        post-mortem can inspect exactly what was dropped.
        """
        entry = dict(entry)
        entry["blob_len"] = len(blob)
        entry["blob_hex"] = blob[:4096].hex()
        with open(self.quarantine_path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(entry) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        self._fsync_dir()

    def read_quarantine(self) -> list[tuple[QuarantineEntry, bytes]]:
        """Parse this journal's ``.quarantine`` sidecar (see
        :func:`read_quarantine`); empty list when none exists."""
        return read_quarantine(self.quarantine_path)

    def __len__(self) -> int:
        try:
            return os.path.getsize(self.path)
        except OSError:
            return 0


def read_quarantine(path: str) -> list[tuple[QuarantineEntry, bytes]]:
    """Parse a ``.quarantine`` sidecar into structured entries.

    Returns ``(entry, blob)`` pairs — ``blob`` is the quarantined bytes
    as written (hex-decoded, capped at 4 KiB by the writer; ``b""`` when
    the line carried none). The sidecar is itself append-only and
    unsynced against crashes at the *line* level, so damage is expected:
    a malformed or truncated line (bad JSON, missing structural fields,
    odd-length hex) is **skipped with a warning**, never an exception —
    a restore must not die on the report of an earlier corruption.
    """
    out: list[tuple[QuarantineEntry, bytes]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
    except (OSError, UnicodeDecodeError):
        return out
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
            if not isinstance(data, dict):
                raise TypeError(f"sidecar line is {type(data).__name__}")
            entry = QuarantineEntry.from_dict(data)
            blob = bytes.fromhex(data.get("blob_hex", "") or "")
        except (ValueError, TypeError, KeyError) as exc:
            warnings.warn(
                f"skipping malformed quarantine line {lineno} of {path}: "
                f"{type(exc).__name__}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            continue
        out.append((entry, blob))
    return out


class CommitJournal:
    """The append-only intent log, with torn-tail repair on open.

    Parameters
    ----------
    storage:
        A :class:`MemoryJournalStorage` / :class:`FileJournalStorage`
        (anything with ``load``/``append``/``truncate``). Defaults to a
        fresh in-memory store.
    fault_plan:
        Optional :class:`~repro.faults.plan.FaultPlan`; enables the
        ``journal`` fault site (see the module docstring).
    obs:
        Optional :class:`~repro.obs.Observability`. Each transaction
        becomes one span on the ``journal`` track (opened at intent,
        settled ``committed`` at applied / ``aborted`` at abort), and
        every protocol step increments
        ``mw_journal_txns_total{kind,phase}``. Journal spans use the
        tracer's wall clock.
    """

    def __init__(self, storage=None, fault_plan=None, obs=None) -> None:
        self.storage = storage if storage is not None else MemoryJournalStorage()
        self.fault_plan = fault_plan
        self.obs = obs
        self._txn_spans: dict[int, int] = {}
        self._txn_c = None
        self._snap_c = self._compact_c = self._quar_c = None
        if obs is not None:
            self._txn_c = obs.registry.counter(
                "mw_journal_txns_total", "Journal protocol steps",
                labelnames=("kind", "phase"),
            )
            self._snap_c = obs.registry.counter(
                "mw_journal_snapshots_total", "Snapshot records written",
            )
            self._compact_c = obs.registry.counter(
                "mw_journal_compactions_total", "WAL compactions completed",
            )
            self._quar_c = obs.registry.counter(
                "mw_journal_quarantines_total",
                "Journal byte stretches quarantined on open",
                labelnames=("site",),
            )
            obs.tracer.set_track_name("journal", "commit journal")
            if fault_plan is not None:
                obs.watch_fault_plan(fault_plan)
        self._records: list[dict] = []
        self._intents: dict[int, dict] = {}
        self._sealed: set[int] = set()
        self._applied: dict[int, dict] = {}
        self._aborted: set[int] = set()
        self._frontiers: dict[str, int] = {}
        self._reads: dict[str, bytearray] = {}
        self._armed: dict[int, FaultKind] = {}
        self._snap_released: dict[int, set[int]] = {}
        self._next_seq = 1
        self._snap_index = 0
        self._snap_mark = 0
        self._last_snapshot_frame: bytes | None = None
        self.repaired_bytes = 0
        self.restored_from_snapshot = False
        #: set after a torn write: the owning process is dead, and any
        #: further append would be silently truncated away on reopen
        #: (the scanner stops at the torn frame) — so refuse them.
        self.poisoned = False
        self.snapshots_loaded = 0
        self.quarantines: list[QuarantineEntry] = []
        self._open()

    # -- opening / torn-tail repair ----------------------------------------
    def _open(self) -> None:
        raw = self.storage.load()
        if not raw:
            self.storage.append(MAGIC)
            return
        if not raw.startswith(MAGIC):
            if len(raw) < len(MAGIC) and MAGIC.startswith(raw):
                # crash during the very first append: torn magic
                self.repaired_bytes = len(raw)
                self.storage.truncate(0)
                self.storage.append(MAGIC)
                return
            raise JournalError("not a commit journal (bad magic)")
        offset = len(MAGIC)
        end = len(raw)
        tail_detail: tuple[str, int | None, int | None] | None = None
        while offset < end:
            if raw.startswith(SNAP_MAGIC, offset):
                advance = self._scan_snapshot(raw, offset)
                if advance is None:
                    # torn snapshot at the tail: already quarantined by
                    # _scan_snapshot, just truncate it away below.
                    tail_detail = None
                    break
                offset += advance
                continue
            if offset + _FRAME.size > end:
                tail_detail = ("torn frame header", None, None)
                break
            body_len, crc = _FRAME.unpack_from(raw, offset)
            body = raw[offset + _FRAME.size : offset + _FRAME.size + body_len]
            if len(body) < body_len:
                tail_detail = ("torn record body", crc, None)
                break
            if zlib.crc32(body) != crc:
                # CRC checked before unpickle — unverified bytes are
                # never deserialised.
                tail_detail = ("record CRC mismatch", crc, zlib.crc32(body))
                break
            try:
                record = pickle.loads(body)
            except Exception:  # pragma: no cover - CRC passed, unreadable
                tail_detail = ("record unpicklable", crc, crc)
                break
            self._index(record)
            self._records.append(record)
            offset += _FRAME.size + body_len
        if offset < end:
            tail = raw[offset:end]
            self.repaired_bytes = len(tail)
            if tail_detail is not None:
                reason, crc_expected, crc_got = tail_detail
                self._quarantine(
                    QuarantineEntry(
                        site="tail", offset=offset, length=len(tail),
                        reason=reason, crc_expected=crc_expected,
                        crc_got=crc_got,
                    ),
                    tail,
                )
            self.storage.truncate(offset)

    def _scan_snapshot(self, raw: bytes, offset: int) -> int | None:
        """Parse one snapshot frame at ``offset``.

        Returns the bytes consumed, or None when the snapshot is torn at
        the tail (the caller truncates the stream there). A snapshot
        that is *complete but corrupt* (CRC mismatch / unpicklable) is
        quarantined and stepped over — its frame header declares its
        length — so every record behind it still replays: corruption
        degrades to full-replay recovery, never to data loss. (If the
        length field itself was damaged, the step lands mid-stream and
        the next frame fails its CRC, truncating from there — still no
        unverified bytes are ever deserialised.)
        """
        start = offset
        hdr = offset + len(SNAP_MAGIC)
        end = len(raw)
        if hdr + _FRAME.size > end:
            self._quarantine(
                QuarantineEntry(
                    site="snapshot", offset=start, length=end - start,
                    reason="torn snapshot frame header",
                ),
                raw[start:end],
            )
            return None
        body_len, crc = _FRAME.unpack_from(raw, hdr)
        body = raw[hdr + _FRAME.size : hdr + _FRAME.size + body_len]
        if len(body) < body_len:
            self._quarantine(
                QuarantineEntry(
                    site="snapshot", offset=start, length=end - start,
                    reason="torn snapshot body", crc_expected=crc,
                ),
                raw[start:end],
            )
            return None
        total = len(SNAP_MAGIC) + _FRAME.size + body_len
        if zlib.crc32(body) != crc:
            self._quarantine(
                QuarantineEntry(
                    site="snapshot", offset=start, length=total,
                    reason="snapshot CRC mismatch", crc_expected=crc,
                    crc_got=zlib.crc32(body),
                ),
                raw[start : start + total],
            )
            return total
        try:
            state = pickle.loads(body)
        except Exception:  # pragma: no cover - CRC passed, unreadable
            self._quarantine(
                QuarantineEntry(
                    site="snapshot", offset=start, length=total,
                    reason="snapshot unpicklable", crc_expected=crc,
                    crc_got=crc,
                ),
                raw[start : start + total],
            )
            return total
        self._load_snapshot(state)
        return total

    def _load_snapshot(self, state: dict) -> None:
        """Adopt a snapshot's ledger, discarding the records before it.

        The snapshot captured exactly the index state the preceding
        records would have rebuilt, so replacing is equivalence, not
        loss; replay length from here on is bounded by the records
        *after* the snapshot.
        """
        self._intents = dict(state["intents"])
        self._sealed = set(state["sealed"])
        self._applied = dict(state["applied"])
        self._aborted = set(state["aborted"])
        self._frontiers = dict(state["frontiers"])
        self._reads = {d: bytearray(b) for d, b in state["reads"].items()}
        self._snap_released = {
            seq: set(eids) for seq, eids in state.get("released", {}).items()
        }
        self._next_seq = max(self._next_seq, int(state["next_seq"]))
        self._snap_index = max(self._snap_index, int(state["snap_index"]))
        self._records = []
        self._snap_mark = 0
        self.restored_from_snapshot = True
        self.snapshots_loaded += 1

    def _quarantine(self, entry: QuarantineEntry, blob: bytes) -> None:
        self.quarantines.append(entry)
        sidecar = getattr(self.storage, "quarantine", None)
        if sidecar is not None:
            sidecar(blob, entry.as_dict())
        if self._quar_c is not None:
            self._quar_c.inc(site=entry.site)

    def _index(self, record: dict) -> None:
        kind = record["t"]
        if kind == "intent":
            seq = record["seq"]
            self._intents[seq] = record
            self._next_seq = max(self._next_seq, seq + 1)
        elif kind == "seal":
            self._sealed.add(record["seq"])
        elif kind == "applied":
            self._applied[record["seq"]] = record.get("data", {})
        elif kind == "abort":
            self._aborted.add(record["seq"])
        elif kind == "release":
            device = record["device"]
            if record["pos_end"] > self._frontiers.get(device, 0):
                self._frontiers[device] = record["pos_end"]
        elif kind == "read":
            self._reads.setdefault(record["device"], bytearray()).extend(
                record["data"]
            )

    # -- appending ---------------------------------------------------------
    @staticmethod
    def _frame(record: dict) -> bytes:
        try:
            body = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise JournalError(
                f"unpicklable journal record {record.get('t')!r}: {exc}"
            ) from exc
        return _FRAME.pack(len(body), zlib.crc32(body)) + body

    def _check_poisoned(self) -> None:
        if self.poisoned:
            raise JournalCrash(
                "journal poisoned by a torn write; the owning process is "
                "dead — reopen from storage"
            )

    def _append(self, record: dict) -> None:
        self._check_poisoned()
        self.storage.append(self._frame(record))
        self._index(record)
        self._records.append(record)

    # -- the transaction protocol ------------------------------------------
    def begin(self, kind: str, **data: Any) -> int:
        """Write an intent record; returns the transaction seq.

        The intent must carry everything needed to *redo* the apply phase
        (recovery has only the journal and the devices). May raise
        :class:`~repro.errors.JournalCrash` (injected torn record) or arm
        a later-stage fault for this seq.
        """
        self._check_poisoned()
        seq = self._next_seq
        self._next_seq += 1
        record = {"t": "intent", "seq": seq, "kind": kind, "data": data}
        fault = None
        if self.fault_plan is not None:
            fault = self.fault_plan.decide(JOURNAL_SITE, seq).kind
        if fault is FaultKind.TORN_RECORD:
            blob = self._frame(record)
            self.storage.append(blob[: max(1, len(blob) // 2)])
            self.poisoned = True
            self.fault_plan.note_injection(
                JOURNAL_SITE, fault, detail=f"torn intent (txn {seq})",
                track="journal", txn=seq, txn_kind=kind,
            )
            raise JournalCrash(
                f"injected torn intent record (txn {seq}, kind {kind!r})",
                kind=fault, seq=seq,
            )
        self._append(record)
        if fault in _ARMED_KINDS:
            self._armed[seq] = fault
        if self.obs is not None:
            self._txn_c.inc(kind=kind, phase="intent")
            sid = self.obs.tracer.begin(
                f"txn:{kind}", cat="journal", track="journal",
                seq=seq, txn_kind=kind,
            )
            if sid >= 0:
                self._txn_spans[seq] = sid
        return seq

    def seal(self, seq: int) -> None:
        """Write the seal record — the durable commit point of ``seq``."""
        self._check_open(seq, "seal")
        if self._armed.get(seq) is FaultKind.CRASH_BEFORE_SEAL:
            self._armed.pop(seq)
            self._note_crash(seq, FaultKind.CRASH_BEFORE_SEAL)
            raise JournalCrash(
                f"injected crash before seal (txn {seq})",
                kind=FaultKind.CRASH_BEFORE_SEAL, seq=seq,
            )
        self._append({"t": "seal", "seq": seq})
        if self.obs is not None:
            self._txn_c.inc(kind=self._txn_kind(seq), phase="seal")
        if self._armed.get(seq) is FaultKind.CRASH_AFTER_SEAL:
            self._armed.pop(seq)
            self._note_crash(seq, FaultKind.CRASH_AFTER_SEAL)
            raise JournalCrash(
                f"injected crash after seal, before apply (txn {seq})",
                kind=FaultKind.CRASH_AFTER_SEAL, seq=seq,
            )

    def mark_applied(self, seq: int, **data: Any) -> None:
        """Record that ``seq``'s apply phase completed. Idempotent."""
        if seq in self._applied:
            return
        if seq not in self._sealed:
            raise JournalError(f"cannot apply unsealed txn {seq}")
        try:
            self._append({"t": "applied", "seq": seq, "data": data})
        except JournalError:
            # unpicklable apply data: record completion without it
            self._append({"t": "applied", "seq": seq, "data": {}})
        if self.obs is not None:
            self._txn_c.inc(kind=self._txn_kind(seq), phase="applied")
            self.obs.tracer.end(
                self._txn_spans.pop(seq, -1), disposition="committed"
            )

    def abort(self, seq: int, reason: str = "") -> None:
        """Roll ``seq`` back. Idempotent; a sealed txn cannot be aborted."""
        if seq in self._aborted:
            return
        if seq in self._sealed:
            raise JournalError(f"cannot abort sealed txn {seq}")
        if seq not in self._intents:
            raise JournalError(f"cannot abort unknown txn {seq}")
        self._append({"t": "abort", "seq": seq, "reason": reason})
        if self.obs is not None:
            self._txn_c.inc(kind=self._txn_kind(seq), phase="abort")
            self.obs.tracer.end(
                self._txn_spans.pop(seq, -1),
                disposition="aborted", reason=reason,
            )

    def _txn_kind(self, seq: int) -> str:
        intent = self._intents.get(seq)
        return intent["kind"] if intent else "?"

    def _note_crash(self, seq: int, fault: FaultKind) -> None:
        if self.fault_plan is not None:
            self.fault_plan.note_injection(
                JOURNAL_SITE, fault, detail=f"txn {seq}",
                track="journal", txn=seq, txn_kind=self._txn_kind(seq),
            )

    def _check_open(self, seq: int, verb: str) -> None:
        if seq not in self._intents:
            raise JournalError(f"cannot {verb} unknown txn {seq}")
        if seq in self._sealed:
            raise JournalError(f"cannot {verb} already-sealed txn {seq}")
        if seq in self._aborted:
            raise JournalError(f"cannot {verb} aborted txn {seq}")

    # -- source effects ----------------------------------------------------
    def release(
        self, seq: int | None, device: str, eid: int, pos_start: int, pos_end: int
    ) -> None:
        """One source effect reached the inner device (advance frontier).

        ``seq`` is the owning release transaction, or None for a direct
        (non-speculative) write that needs no txn of its own.
        """
        self._append({
            "t": "release", "seq": seq, "device": device,
            "eid": eid, "pos_start": pos_start, "pos_end": pos_end,
        })

    def note_read(self, device: str, data: bytes) -> None:
        """Fresh bytes were consumed from a real source: make them durable."""
        if data:
            self._append({"t": "read", "device": device, "data": bytes(data)})

    def release_frontier(self, device: str) -> int:
        """Max released stream position for ``device`` (the dedup line)."""
        return self._frontiers.get(device, 0)

    def reads_for(self, device: str) -> bytes:
        """Every byte ever consumed from ``device``, in consumption order."""
        return bytes(self._reads.get(device, b""))

    # -- fault arming ------------------------------------------------------
    def take_armed(self, seq: int) -> FaultKind | None:
        """Pop the armed later-stage fault for ``seq`` (gate release loop)."""
        return self._armed.pop(seq, None)

    # -- snapshots & compaction --------------------------------------------
    def _snapshot_state(self) -> dict:
        released: dict[int, set[int]] = {
            seq: set(eids) for seq, eids in self._snap_released.items()
            if seq not in self._applied
        }
        for rec in self._records:
            if (
                rec["t"] == "release"
                and rec["seq"] is not None
                and rec["seq"] not in self._applied
            ):
                released.setdefault(rec["seq"], set()).add(rec["eid"])
        return {
            "snap_index": self._snap_index,
            "next_seq": self._next_seq,
            "frontiers": dict(self._frontiers),
            "reads": {d: bytes(b) for d, b in self._reads.items()},
            # aborted txns keep their seq (status stays answerable) but
            # drop their intent payload — recovery never redoes them.
            "intents": {
                seq: rec for seq, rec in self._intents.items()
                if seq not in self._aborted
            },
            "sealed": sorted(self._sealed),
            "applied": dict(self._applied),
            "aborted": sorted(self._aborted),
            # eids already released under still-open release txns, so a
            # post-compaction recovery redo still dedups them.
            "released": {seq: sorted(eids) for seq, eids in released.items()},
        }

    def snapshot(self) -> int:
        """Checkpoint the whole ledger as one CRC-framed snapshot record.

        The snapshot carries the applied frontier, release positions,
        journalled reads, and every live intent — everything ``_open``
        would have rebuilt by replaying the records before it — so a
        reopen loads the snapshot and replays only the suffix. Returns
        the snapshot index. May raise :class:`~repro.errors.JournalCrash`
        (injected ``TORN_SNAPSHOT``: half the frame reaches storage; the
        next open quarantines the torn snapshot and falls back to full
        replay).
        """
        self._check_poisoned()
        self._snap_index += 1
        state = self._snapshot_state()
        body = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
        frame = SNAP_MAGIC + _FRAME.pack(len(body), zlib.crc32(body)) + body
        fault = None
        if self.fault_plan is not None:
            fault = self.fault_plan.decide(SNAPSHOT_SITE, self._snap_index).kind
        if fault is FaultKind.TORN_SNAPSHOT:
            cut = len(SNAP_MAGIC) + max(1, (len(frame) - len(SNAP_MAGIC)) // 2)
            self.storage.append(frame[:cut])
            self.poisoned = True
            self.fault_plan.note_injection(
                SNAPSHOT_SITE, fault,
                detail=f"torn snapshot {self._snap_index}", track="journal",
                snapshot=self._snap_index,
            )
            raise JournalCrash(
                f"injected torn snapshot (snapshot {self._snap_index})",
                kind=fault,
            )
        self.storage.append(frame)
        self._last_snapshot_frame = frame
        self._snap_mark = len(self._records)
        if self._snap_c is not None:
            self._snap_c.inc()
        if self.obs is not None:
            self.obs.tracer.instant(
                "journal.snapshot", cat="journal", track="journal",
                snapshot=self._snap_index, bytes=len(frame),
            )
        return self._snap_index

    def compact(self) -> dict:
        """Truncate the WAL to ``magic + fresh snapshot``.

        Takes a snapshot (durably appended first — a crash between the
        append and the rewrite loses nothing, the next open just loads
        the snapshot from the old image), then atomically replaces the
        whole journal with ``MAGIC + snapshot``. The exactly-once ledger
        (frontiers, applied values, reads, open-txn released eids) rides
        the snapshot, so recovery semantics are unchanged; only replay
        length shrinks. Returns compaction stats. May raise
        :class:`~repro.errors.JournalCrash` (``TORN_SNAPSHOT`` from the
        embedded snapshot, or ``COMPACTION_CRASH`` after the snapshot is
        durable but before the rewrite).
        """
        replace = getattr(self.storage, "replace", None)
        if replace is None:
            raise JournalError(
                "journal storage does not support compaction (no replace())"
            )
        before = len(self.storage)
        dropped = len(self._records)
        snap_index = self.snapshot()
        if self.fault_plan is not None:
            fault = self.fault_plan.decide(SNAPSHOT_SITE, snap_index).kind
            if fault is FaultKind.COMPACTION_CRASH:
                self.fault_plan.note_injection(
                    SNAPSHOT_SITE, fault,
                    detail=f"crash mid-compaction (snapshot {snap_index})",
                    track="journal", snapshot=snap_index,
                )
                raise JournalCrash(
                    f"injected crash mid-compaction (snapshot {snap_index})",
                    kind=fault,
                )
        replace(MAGIC + self._last_snapshot_frame)
        self._records = []
        self._snap_mark = 0
        if self._compact_c is not None:
            self._compact_c.inc()
        stats = {
            "snap_index": snap_index,
            "before_bytes": before,
            "after_bytes": len(self.storage),
            "records_dropped": dropped,
        }
        if self.obs is not None:
            self.obs.tracer.instant(
                "journal.compact", cat="journal", track="journal", **stats
            )
        return stats

    def records_since_snapshot(self) -> int:
        """Records appended after the latest snapshot — the replay bound."""
        return len(self._records) - self._snap_mark

    # -- introspection -----------------------------------------------------
    def records(self) -> list[dict]:
        return list(self._records)

    def intent(self, seq: int) -> dict:
        try:
            return self._intents[seq]
        except KeyError:
            raise JournalError(f"no txn {seq}") from None

    def status(self, seq: int) -> str:
        """``open`` / ``sealed`` / ``applied`` / ``aborted``."""
        if seq in self._applied:
            return "applied"
        if seq in self._aborted:
            return "aborted"
        if seq in self._sealed:
            return "sealed"
        if seq in self._intents:
            return "open"
        raise JournalError(f"no txn {seq}")

    def unsealed_txns(self) -> list[int]:
        """Intents with neither seal nor abort — recovery rolls these back."""
        return sorted(
            seq for seq in self._intents
            if seq not in self._sealed and seq not in self._aborted
        )

    def sealed_unapplied(self) -> list[int]:
        """Sealed intents not yet applied — recovery rolls these forward."""
        return sorted(seq for seq in self._sealed if seq not in self._applied)

    def released_eids(self, seq: int) -> set[int]:
        """Effect ids already released under transaction ``seq``.

        Unions the post-snapshot release records with the eids the
        latest snapshot carried for still-open txns, so compaction never
        forgets a partial release.
        """
        eids = set(self._snap_released.get(seq, ()))
        eids.update(
            r["eid"] for r in self._records
            if r["t"] == "release" and r["seq"] == seq
        )
        return eids

    def _matches(self, seq: int, kind: str, match: dict) -> bool:
        intent = self._intents[seq]
        if intent["kind"] != kind:
            return False
        data = intent["data"]
        return all(data.get(k) == v for k, v in match.items())

    def find_sealed(self, kind: str, **match: Any) -> dict | None:
        """Latest sealed intent of ``kind`` whose data matches; or None."""
        for seq in sorted(self._sealed, reverse=True):
            if self._matches(seq, kind, match):
                return self._intents[seq]
        return None

    def find_applied(self, kind: str, **match: Any) -> tuple[dict, dict] | None:
        """Latest applied ``(intent, applied_data)`` of ``kind``; or None."""
        for seq in sorted(self._applied, reverse=True):
            if self._matches(seq, kind, match):
                return self._intents[seq], self._applied[seq]
        return None

    def applied_intents(self, kind: str) -> list[tuple[dict, dict]]:
        """Every applied txn of ``kind`` as ``(intent, applied_data)``,
        ascending seq.

        Unlike scanning :meth:`records`, this survives compaction —
        applied intents ride the snapshot — so cross-journal audits and
        restart replay must use it.
        """
        return [
            (self._intents[seq], self._applied[seq])
            for seq in sorted(self._applied)
            if seq in self._intents and self._intents[seq]["kind"] == kind
        ]

    def sealed_unapplied_intents(self, kind: str) -> list[dict]:
        """Sealed-but-unapplied intents of ``kind``, ascending seq.

        These are the txns a cold restart must finish: for ``admit``
        txns, re-admit the request under its original seq.
        """
        return [
            self._intents[seq]
            for seq in self.sealed_unapplied()
            if seq in self._intents and self._intents[seq]["kind"] == kind
        ]


# -- backend helpers -------------------------------------------------------
def record_block_win(journal: CommitJournal, block_id: int, attempt: int, winner) -> int:
    """Journal a real-backend block win as one intent/seal/applied txn.

    Called by the fork/thread/sequential backends at the moment a winner
    is accepted; the applied record carries the winner's value (when
    picklable) so a supervisor restarted over the same journal can
    replay the outcome instead of re-running the block.
    """
    seq = journal.begin(
        "block", block=block_id, attempt=attempt,
        winner_index=winner.index, winner_name=winner.name,
    )
    journal.seal(seq)
    journal.mark_applied(seq, value=winner.value)
    return seq


def find_block_win(journal: CommitJournal, block_id: int) -> dict | None:
    """The replayable win for ``block_id``, or None.

    Returns ``{"winner_index", "winner_name", "value"}`` only when the
    applied record carries the value (an unpicklable value is recorded
    without it, and such a block must simply re-run).
    """
    hit = journal.find_applied("block", block=block_id)
    if hit is None:
        return None
    intent, applied = hit
    if "value" not in applied:
        return None
    return {
        "winner_index": intent["data"]["winner_index"],
        "winner_name": intent["data"]["winner_name"],
        "value": applied["value"],
    }
