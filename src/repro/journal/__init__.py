"""Crash-consistent commit journal + exactly-once source gate.

The paper's soundness story hinges on two moments the kernel alone does
not protect: the atomic "child becomes parent" replacement at commit,
and the rule that speculative worlds never touch non-retryable *sources*
directly. This package makes both survivable:

- :class:`CommitJournal` — a CRC-framed write-ahead intent log (the
  MWCKPT2 framing style of :mod:`repro.runtime.checkpoint`, applied to a
  record stream). Every commit, elimination, predicate split and source
  release flows through it as an ``intent -> seal -> apply`` transaction;
  the seal record is the durable decision point.
- :class:`SourceGate` — a sink-style façade over a source device.
  Speculative worlds accumulate source effects in a per-world effect
  ledger; at commit the ledger is released to the inner device
  exactly-once under journal sequence numbers, deduplicated by a durable
  *stream-position frontier* (Jefferson-style positional buffering, made
  crash-proof).
- :func:`recover` — the idempotent recovery pass: rolls sealed intents
  forward (redoing un-released source effects through the gate) and
  rolls torn/unsealed ones back. Running it twice is a no-op, which the
  ``DOUBLE_RECOVERY`` fault site exercises.

Fault injection: :class:`~repro.faults.plan.FaultPlan` gains a
``journal`` site (torn record, crash-before-seal, crash-after-seal,
partial device release, double recovery), keyed by transaction sequence
number, so the whole protocol runs under the same deterministic fault
plane as the rest of the robustness suite. An injected crash surfaces as
:class:`~repro.errors.JournalCrash`; only the journal bytes and the
inner devices' real effects survive it.
"""

from repro.journal.gate import SourceGate
from repro.journal.recovery import RecoveryReport, recover
from repro.journal.wal import (
    CommitJournal,
    FileJournalStorage,
    MemoryJournalStorage,
    QuarantineEntry,
    find_block_win,
    read_quarantine,
    record_block_win,
)

__all__ = [
    "CommitJournal",
    "FileJournalStorage",
    "MemoryJournalStorage",
    "QuarantineEntry",
    "RecoveryReport",
    "SourceGate",
    "find_block_win",
    "read_quarantine",
    "record_block_win",
    "recover",
]
