"""The idempotent recovery pass.

After a crash, the survivors are the journal bytes and the inner
devices' real effects. Recovery restores the invariant "every sealed
transaction happened, every unsealed one did not":

1. the journal's own *open* already repaired any torn tail (truncating
   the half-written record a torn-intent crash left behind);
2. **roll back**: every intent with neither seal nor abort is aborted —
   the decision never became durable, so it never happened. A re-run
   will make it again (or not) deterministically;
3. **roll forward**: every sealed-but-unapplied transaction is
   completed. For ``release`` transactions the intent carries the full
   effect ledger, so the remaining entries are redone through the gate
   (the frontier skips the ones the dead incarnation already released);
   every other kind's apply phase lives in volatile kernel state that a
   deterministic re-run rebuilds, so the durable part of rolling forward
   is just the ``applied`` marker.

Every step is idempotent — abort and ``mark_applied`` are no-ops on
repeat, and redo dedups by frontier — so running recovery twice changes
nothing. The ``DOUBLE_RECOVERY`` fault kind (decided at the reserved
key :data:`~repro.faults.plan.RECOVERY_KEY`, not per-transaction)
exercises exactly that: when it fires, the pass runs twice and the
report's counters must not change on the second lap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.plan import JOURNAL_SITE, RECOVERY_KEY, FaultKind
from repro.journal.wal import CommitJournal, QuarantineEntry


@dataclass
class RecoveryReport:
    """What one :func:`recover` call did (summed over its passes)."""

    rolled_forward: list[int] = field(default_factory=list)
    rolled_back: list[int] = field(default_factory=list)
    skipped: list[int] = field(default_factory=list)
    deferred: list[int] = field(default_factory=list)
    quarantined: list[QuarantineEntry] = field(default_factory=list)
    redone_entries: int = 0
    repaired_bytes: int = 0
    passes: int = 1
    double_recovery: bool = False

    @property
    def clean(self) -> bool:
        """True when there was nothing to repair, roll back or redo."""
        return not (
            self.rolled_forward or self.rolled_back
            or self.redone_entries or self.repaired_bytes
            or self.quarantined
        )


def recover(
    journal: CommitJournal, gates=(), fault_plan=None,
    defer_kinds: tuple[str, ...] = ("admit",),
) -> RecoveryReport:
    """Roll the journal's transactions to a consistent state. Idempotent.

    Parameters
    ----------
    journal:
        A freshly (re)opened :class:`~repro.journal.wal.CommitJournal`
        (opening already repaired any torn tail).
    gates:
        The :class:`~repro.journal.gate.SourceGate` instances rebuilt
        over this journal, by which un-released source effects of sealed
        ``release`` transactions are redone. A release transaction whose
        gate is absent is left sealed for a later recovery and counted
        in ``report.skipped``.
    fault_plan:
        Overrides the journal's plan for the ``DOUBLE_RECOVERY``
        decision (the only fault this pass itself is subject to — it is
        a repeat, not a crash).
    defer_kinds:
        Sealed-but-unapplied kinds to leave sealed (reported in
        ``report.deferred``) instead of blindly marking applied: an
        ``admit`` txn's apply phase is *serving the request*, which only
        the restart path (``SpeculationService.restore`` /
        ``ClusterRouter.restore``) can redo — marking it applied here
        would silently drop the admitted request.

    The report also carries ``journal.quarantines`` — one structured
    :class:`~repro.journal.wal.QuarantineEntry` (site, offset, length,
    CRC expected/got) per byte stretch the open quarantined.
    """
    plan = fault_plan if fault_plan is not None else journal.fault_plan
    double = False
    if plan is not None:
        double = (
            plan.decide(JOURNAL_SITE, RECOVERY_KEY).kind
            is FaultKind.DOUBLE_RECOVERY
        )
        if double:
            plan.note_injection(
                JOURNAL_SITE, FaultKind.DOUBLE_RECOVERY,
                detail="recovery pass will run twice", track="journal",
            )
    report = RecoveryReport(
        repaired_bytes=journal.repaired_bytes,
        passes=2 if double else 1,
        double_recovery=double,
        quarantined=list(journal.quarantines),
    )
    gate_map = {gate.name: gate for gate in gates}
    obs = journal.obs
    if obs is not None:
        with obs.tracer.span("recovery", cat="journal", track="journal") as h:
            for _ in range(report.passes):
                _one_pass(journal, gate_map, report, defer_kinds)
            h.settle(
                "committed",
                rolled_forward=len(report.rolled_forward),
                rolled_back=len(report.rolled_back),
                skipped=len(report.skipped),
                deferred=len(report.deferred),
                quarantined=len(report.quarantined),
                redone_entries=report.redone_entries,
                repaired_bytes=report.repaired_bytes,
                passes=report.passes,
                clean=report.clean,
            )
        c = obs.registry.counter(
            "mw_recoveries_total", "Recovery passes run", labelnames=("clean",)
        )
        c.inc(clean=str(report.clean).lower())
    else:
        for _ in range(report.passes):
            _one_pass(journal, gate_map, report, defer_kinds)
    return report


def _one_pass(
    journal: CommitJournal, gates: dict, report: RecoveryReport,
    defer_kinds: tuple[str, ...],
) -> None:
    for seq in journal.unsealed_txns():
        journal.abort(seq, reason="recovery rollback")
        report.rolled_back.append(seq)
    for seq in journal.sealed_unapplied():
        intent = journal.intent(seq)
        if intent["kind"] in defer_kinds:
            if seq not in report.deferred:
                report.deferred.append(seq)
            continue
        if intent["kind"] == "release":
            gate = gates.get(intent["data"]["device"])
            if gate is None:
                report.skipped.append(seq)
                continue
            report.redone_entries += gate.redo_release(
                seq, intent["data"]["entries"]
            )
        journal.mark_applied(seq, recovered=True)
        report.rolled_forward.append(seq)
