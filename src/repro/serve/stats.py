"""Per-alternative win-rate and latency statistics.

The adaptive policy's raw material: for every alternative name the
service has ever run, how often does it win, and how long does it take?
Both are tracked as exponentially-weighted moving averages so the
policy adapts when a workload shifts (an alternative that used to win
can fall out of favour within ``~1/alpha`` observations).

With an :class:`~repro.obs.Observability` attached, every observation
also lands in the metrics registry —
``mw_serve_alt_attempts_total{alt}``, ``mw_serve_alt_wins_total{alt}``
and ``mw_serve_alt_latency_seconds{alt}`` (histogram) — so the numbers
the policy is acting on are the same numbers an operator sees in a
scrape, and :meth:`AlternativeStats.from_registry` can warm-start a
fresh service from a previous run's snapshot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass


@dataclass
class AltRecord:
    """One alternative's running statistics."""

    attempts: int = 0
    wins: int = 0
    win_ewma: float = 0.0
    latency_ewma_s: float = 0.0

    @property
    def win_rate(self) -> float:
        """Lifetime win fraction (EWMA is used for ranking instead)."""
        return self.wins / self.attempts if self.attempts else 0.0


class AlternativeStats:
    """Thread-safe EWMA statistics keyed by alternative name.

    ``alpha`` weights the newest observation; ``prior_win`` is the
    optimistic prior for never-seen alternatives (they must be tried
    before they can be ranked — a pessimistic prior would lock in the
    incumbent forever).
    """

    def __init__(self, alpha: float = 0.2, prior_win: float = 0.5, obs=None) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.prior_win = prior_win
        self._lock = threading.Lock()
        self._records: dict[str, AltRecord] = {}
        self._attempts_c = self._wins_c = self._latency_h = None
        if obs is not None:
            self.bind_obs(obs)

    def bind_obs(self, obs) -> None:
        if self._attempts_c is not None:
            return
        self._attempts_c = obs.registry.counter(
            "mw_serve_alt_attempts_total", "Alternative executions",
            labelnames=("alt",),
        )
        self._wins_c = obs.registry.counter(
            "mw_serve_alt_wins_total", "Alternative wins", labelnames=("alt",),
        )
        self._latency_h = obs.registry.histogram(
            "mw_serve_alt_latency_seconds", "Per-alternative latency",
            labelnames=("alt",),
        )

    # -- recording ---------------------------------------------------------
    def observe(self, name: str, won: bool, latency_s: float) -> None:
        """Record one finished execution of alternative ``name``."""
        with self._lock:
            rec = self._records.get(name)
            if rec is None:
                rec = self._records[name] = AltRecord(
                    win_ewma=self.prior_win, latency_ewma_s=max(latency_s, 0.0)
                )
            rec.attempts += 1
            rec.wins += int(won)
            rec.win_ewma += self.alpha * ((1.0 if won else 0.0) - rec.win_ewma)
            if latency_s >= 0.0:
                rec.latency_ewma_s += self.alpha * (latency_s - rec.latency_ewma_s)
        if self._attempts_c is not None:
            self._attempts_c.inc(alt=name)
            if won:
                self._wins_c.inc(alt=name)
            if latency_s >= 0.0:
                self._latency_h.observe(latency_s, alt=name)

    def observe_outcome(
        self,
        outcome,
        names: list[str] | None = None,
        launched: list[str] | None = None,
    ) -> None:
        """Feed a whole :class:`~repro.core.outcome.BlockOutcome`.

        ``names`` maps result indexes back to the caller's alternative
        names when the outcome only ran a subset (the policy's K < N).
        ``launched`` lists every alternative that was actually spawned:
        worlds abandoned by asynchronous elimination never report back
        as losers, so any launched-but-unreported name is charged a
        loss here — otherwise a perpetual loser keeps its optimistic
        unseen prior and outranks the alternative that beats it.
        """
        def name_of(result) -> str:
            if names is not None and 0 <= result.index < len(names):
                return names[result.index]
            return result.name

        seen = set()
        if outcome.winner is not None:
            winner_name = name_of(outcome.winner)
            seen.add(winner_name)
            self.observe(winner_name, True, outcome.winner.elapsed_s)
        for loser in outcome.losers:
            loser_name = name_of(loser)
            seen.add(loser_name)
            self.observe(loser_name, False, loser.elapsed_s)
        # an abandoned world ran at least as long as the winner took
        floor = outcome.winner.elapsed_s if outcome.winner is not None else -1.0
        for name in launched or ():
            if name not in seen:
                self.observe(name, False, floor)

    # -- reading -----------------------------------------------------------
    def record(self, name: str) -> AltRecord | None:
        with self._lock:
            return self._records.get(name)

    def win_ewma(self, name: str) -> float:
        rec = self.record(name)
        return rec.win_ewma if rec is not None else self.prior_win

    def latency_ewma(self, name: str) -> float:
        rec = self.record(name)
        return rec.latency_ewma_s if rec is not None else 0.0

    def score(self, name: str, latency_floor_s: float = 1e-6) -> float:
        """Expected usefulness per second: win EWMA over latency EWMA.

        Unseen alternatives score ``prior_win / latency_floor_s`` — high
        enough to get tried, which is deliberate (explore first, then
        exploit).
        """
        rec = self.record(name)
        if rec is None:
            return self.prior_win / latency_floor_s
        return rec.win_ewma / max(rec.latency_ewma_s, latency_floor_s)

    def known(self) -> list[str]:
        with self._lock:
            return sorted(self._records)

    def snapshot(self) -> dict[str, dict]:
        with self._lock:
            return {
                name: {
                    "attempts": r.attempts,
                    "wins": r.wins,
                    "win_ewma": r.win_ewma,
                    "latency_ewma_s": r.latency_ewma_s,
                }
                for name, r in self._records.items()
            }

    @classmethod
    def from_registry(cls, registry, alpha: float = 0.2, prior_win: float = 0.5) -> "AlternativeStats":
        """Warm-start from a registry that carries ``mw_serve_alt_*``.

        Win EWMAs are seeded from lifetime ratios and latency EWMAs
        from histogram means — coarse, but enough that a restarted
        service does not rediscover its ranking from scratch.
        """
        from repro.obs.metrics import MetricError

        stats = cls(alpha=alpha, prior_win=prior_win)
        try:
            attempts = registry.get("mw_serve_alt_attempts_total")
            wins = registry.get("mw_serve_alt_wins_total")
            latency = registry.get("mw_serve_alt_latency_seconds")
        except MetricError:
            return stats
        for sample in attempts.samples():
            name = sample["labels"].get("alt", "")
            n = int(sample["value"])
            if not name or n <= 0:
                continue
            w = int(wins.value(alt=name))
            lat_n = latency.count(alt=name)
            lat_mean = latency.sum(alt=name) / lat_n if lat_n else 0.0
            stats._records[name] = AltRecord(
                attempts=n, wins=w, win_ewma=w / n, latency_ewma_s=lat_mean,
            )
        return stats
