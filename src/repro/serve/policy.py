"""The adaptive speculation policy: how many worlds, which, and when.

The paper's Figs. 3–4 plot performance improvement π against the
overhead ratio R_o and spare-capacity ρ: speculation pays while worlds
are cheap and processors idle, and *costs* once either stops being
true. A static service would have to pick one point on that curve;
:class:`AdaptiveSpeculationPolicy` walks it at runtime, per request:

- **K (how many)** — start from the slots the budget actually granted,
  then shrink with measured pool load: at ``saturation`` the policy
  stops speculating entirely (K=1). Win-rate statistics shrink K
  further — once one alternative wins ``confident_win`` of the time,
  running its siblings is pure waste (ρ has left the profitable
  region, so stop paying R_o).
- **which** — alternatives ranked by expected usefulness per second
  (win EWMA / latency EWMA, optimistic prior for the unseen), so the
  K worlds that do run are the ones most likely to commit quickly.
- **when (stagger)** — ranked world *i* starts ``i × stagger`` late,
  where the unit stagger is the favourite's expected latency scaled by
  load: an idle service launches everything at once (minimum response
  time), a loaded one launches spares only after the favourite has had
  its chance (minimum wasted work) — §4.1's stagger frontier driven by
  live statistics.
- **backend** — saturated K=1 requests degrade to the ``sequential``
  backend: no worlds, no spawn cost, exactly the paper's degenerate
  standby-spares execution.
- **wide-K (per request class)** — the inverse degradation: a request
  class whose worlds are I/O-bound (``class_max_k``) may speculate
  *past* its budget grant on the near-zero-spawn-cost asyncio backend.
  The paper's profitability frontier R_o → 0 as spawn cost vanishes,
  so for these classes K is bounded by usefulness, not slots; the
  decision carries ``wide=True`` so the service knows the extra worlds
  are unbudgeted freebies rather than a policy outvoting the budget.

The policy is deliberately stateless between calls — all adaptation
lives in the shared :class:`~repro.serve.stats.AlternativeStats`, which
both the decision and the observation side update.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServeError
from repro.serve.stats import AlternativeStats


@dataclass
class SpeculationDecision:
    """One request's execution shape, as decided by the policy.

    ``order`` holds indexes into the caller's alternative list, ranked
    best-first and truncated to K; ``staggers`` are the matching start
    delays (``staggers[0]`` is always 0). ``backend`` may downgrade the
    service default under saturation (or upgrade it to ``async`` in
    wide-K mode). ``wide`` marks a K that deliberately exceeds the
    budget grant — the extra worlds are unbudgeted cheap tasks, so the
    service must neither clamp them to the grant nor preemption-gate
    them.
    """

    order: list[int]
    staggers: list[float]
    backend: str | None = None
    reason: str = "adaptive"
    wide: bool = False

    @property
    def k(self) -> int:
        return len(self.order)


@dataclass
class FixedSpeculationPolicy:
    """The naive baseline: always spawn every alternative at once.

    What every ``run_alternatives`` caller does today — and the control
    arm the serve benchmark compares the adaptive policy against.
    """

    backend: str | None = None

    def decide(self, names, granted: int, load: float = 0.0) -> SpeculationDecision:
        order = list(range(len(names)))
        return SpeculationDecision(
            order=order, staggers=[0.0] * len(order),
            backend=self.backend, reason="fixed",
        )

    def observe(self, outcome, names=None, launched=None) -> None:  # noqa: ARG002 - baseline learns nothing
        return None


@dataclass
class AdaptiveSpeculationPolicy:
    """Choose K ≤ N alternatives and a stagger schedule from live stats.

    Parameters
    ----------
    stats:
        The shared statistics store (created on demand).
    saturation:
        Pool-load fraction at and above which the policy stops
        speculating (K=1, sequential backend).
    confident_win:
        Win EWMA above which the favourite runs alone even on an idle
        pool (its siblings would almost surely be wasted work).
    stagger_scale:
        Multiplies the load-scaled stagger unit; 0 disables staggering.
    min_stagger_s / max_stagger_s:
        Clamp on the unit stagger, so cold stats cannot produce zero or
        absurd schedules.
    max_k:
        Global clamp on K regardless of grant size; None leaves the
        grant as the only global bound.
    class_max_k:
        Per-request-class K cap, overriding ``max_k`` for requests
        carrying that class. A cap *above* the grant is the wide-K
        opt-in: the class's worlds are cheap (I/O-bound coroutines), so
        K may exceed the granted slots — the decision comes back
        ``wide=True`` on the ``wide_backend``. A cap below the grant is
        just a tighter clamp (e.g. CPU-bound classes that should never
        fan out). Classes absent from the map use ``max_k``.
    wide_backend:
        Backend a wide decision runs on (default ``async`` — the only
        substrate whose spawn cost justifies unbudgeted worlds).
    """

    stats: AlternativeStats = field(default_factory=AlternativeStats)
    saturation: float = 0.9
    confident_win: float = 0.9
    stagger_scale: float = 1.0
    min_stagger_s: float = 0.001
    max_stagger_s: float = 0.25
    sequential_when_saturated: bool = True
    max_k: int | None = None
    class_max_k: dict[str, int] = field(default_factory=dict)
    wide_backend: str = "async"

    def __post_init__(self) -> None:
        if not 0.0 < self.saturation <= 1.0:
            raise ServeError(f"saturation must be in (0, 1], got {self.saturation}")
        if not 0.0 <= self.confident_win <= 1.0:
            raise ServeError(
                f"confident_win must be in [0, 1], got {self.confident_win}"
            )
        if self.max_k is not None and self.max_k < 1:
            raise ServeError(f"max_k must be >= 1, got {self.max_k}")
        for cls, cap in self.class_max_k.items():
            if cap < 1:
                raise ServeError(
                    f"class_max_k[{cls!r}] must be >= 1, got {cap}"
                )

    # -- the decision ------------------------------------------------------
    def decide(
        self,
        names,
        granted: int,
        load: float = 0.0,
        request_class: str | None = None,
    ) -> SpeculationDecision:
        """Shape one request: ``names`` are the alternatives' names (in
        caller order), ``granted`` the slots the budget allotted,
        ``load`` the pool's post-grant utilisation in ``[0, 1]``, and
        ``request_class`` the tenant-declared workload class consulted
        against ``class_max_k``.
        """
        n = len(names)
        if n == 0:
            raise ServeError("cannot decide over zero alternatives")
        ranked = sorted(range(n), key=lambda i: -self.stats.score(names[i]))
        class_cap = (
            self.class_max_k.get(request_class)
            if request_class is not None
            else None
        )
        cap = granted
        if class_cap is not None:
            cap = class_cap  # the class knows its worlds' cost better
        elif self.max_k is not None:
            cap = min(cap, self.max_k)
        k = max(1, min(n, cap))
        wide = k > max(1, granted)
        reason = "wide" if wide else "adaptive"
        if load >= self.saturation and k > 1:
            # a saturated machine has no spare cycles for *any* kind of
            # speculation, cheap worlds included
            k, reason, wide = 1, "saturated", False
        favourite = names[ranked[0]]
        fav_rec = self.stats.record(favourite)
        if (
            k > 1
            and fav_rec is not None
            and fav_rec.attempts >= 3
            and fav_rec.win_ewma >= self.confident_win
        ):
            k, reason, wide = 1, "confident", False
        order = ranked[:k]
        staggers = [i * self._stagger_unit(favourite, load) for i in range(k)]
        backend = None
        if k == 1 and reason == "saturated" and self.sequential_when_saturated:
            backend = "sequential"
        elif wide:
            backend = self.wide_backend
        return SpeculationDecision(
            order=order, staggers=staggers, backend=backend, reason=reason,
            wide=wide,
        )

    def _stagger_unit(self, favourite: str, load: float) -> float:
        if self.stagger_scale <= 0.0:
            return 0.0
        expected = self.stats.latency_ewma(favourite)
        unit = self.stagger_scale * load * expected
        if unit <= 0.0:
            return 0.0 if load <= 0.0 else self.min_stagger_s
        return min(max(unit, self.min_stagger_s), self.max_stagger_s)

    # -- the feedback loop -------------------------------------------------
    def observe(self, outcome, names=None, launched=None) -> None:
        """Feed a finished block back into the statistics."""
        self.stats.observe_outcome(outcome, names, launched=launched)
