"""Admission control: bounded queues, backpressure, fair dispatch.

The queue between ``submit()`` and the worker pool is where the service
refuses work it cannot serve well — the alternative is serving all of
it badly. Three mechanisms:

- **backpressure** — per-tenant and global depth bounds. A submit past
  either bound raises :class:`~repro.errors.AdmissionRejected` with a
  ``retry_after_s`` hint instead of growing an unbounded backlog;
- **deadline-aware shedding** — a request carries an optional absolute
  deadline. Dispatch discards requests whose deadline has already
  passed (running them would waste slots on an answer nobody is
  waiting for); the shed is reported through the request's ticket, so
  callers see ``shed`` rather than a silent timeout;
- **deficit round-robin** — dispatch cycles tenants, each accumulating
  ``quantum`` credit per visit and paying a request's ``cost`` to
  dequeue it. Tenants submitting many cheap requests and tenants
  submitting few expensive ones get the same long-run share, and a
  burst from one tenant cannot delay the others by more than one
  quantum per cycle (Shreedhar & Varghese's O(1) fairness, applied to
  speculation requests instead of packets).

The queue is thread-safe and wakeup-driven; :meth:`AdmissionQueue.take`
blocks workers until a request (or shutdown) is available.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.errors import AdmissionRejected, ServeError


class _SeqCounter:
    """The process-wide request seq source, bumpable for cold restart.

    A restarted incarnation must never reuse a seq the dead one already
    journalled (seq is the journal block id — reuse would alias two
    requests onto one exactly-once ledger line), so restore paths call
    :meth:`ensure_at_least` with ``max journalled seq + 1`` before
    admitting anything new.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._it = itertools.count(1)

    def next(self) -> int:
        with self._lock:
            return next(self._it)

    def ensure_at_least(self, floor: int) -> None:
        """Bump the counter so the next draw is ``>= floor``."""
        with self._lock:
            current = next(self._it)
            self._it = itertools.count(max(current, floor))


_seq = _SeqCounter()


def next_seq() -> int:
    """Draw the next service-unique request sequence number.

    One process-wide counter feeds every :class:`ServeRequest`, so seqs
    are unique *across* services too — which is what lets a cluster
    router pre-assign a request's seq (and hence its journal block id)
    before placing it on any particular shard.
    """
    return _seq.next()


def ensure_seq_at_least(floor: int) -> None:
    """Guarantee future :func:`next_seq` draws are ``>= floor``.

    Called by the restore paths after scanning journals, so a restarted
    process never hands out a seq its dead predecessor already used.
    """
    _seq.ensure_at_least(floor)


@dataclass
class ServeRequest:
    """One tenant's speculation request, as queued.

    ``alternatives`` are whatever :func:`repro.core.worlds.run_alternatives`
    accepts. ``deadline_s`` is *absolute* (``time.monotonic`` scale);
    ``cost`` is the request's DRR weight (a request expected to hold
    many slots for a long time should pay more than a quick K=1 probe).
    ``seq`` is the service-unique id — also the journal ``block_id``, so
    exactly-once commit is per-request.
    """

    tenant: str
    alternatives: Sequence[Any]
    initial: dict | None = None
    priority: int = 0
    deadline_s: float | None = None
    timeout: float | None = None
    cost: float = 1.0
    seq: int = field(default_factory=next_seq)
    submitted_at: float = field(default_factory=time.monotonic)
    shadow: bool = False
    #: opaque caller payload; must be picklable when journalled admission
    #: is on (it rides the ``admit`` intent so a cold restart can
    #: re-admit the request).
    spec: Any = None
    #: tenant-declared workload class (e.g. ``"io"``, ``"cpu"``);
    #: consulted by class-aware speculation policies
    #: (:attr:`~repro.serve.policy.AdaptiveSpeculationPolicy.class_max_k`)
    #: to widen or tighten K per class. Empty string = unclassified.
    request_class: str = ""

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_s is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_s


class AdmissionQueue:
    """Bounded, deadline-aware, deficit-round-robin admission queue.

    Parameters
    ----------
    depth:
        Global bound on queued requests (backpressure past it).
    tenant_depth:
        Per-tenant bound; ``None`` disables the per-tenant check.
    quantum:
        DRR credit a tenant earns per dispatch cycle. With unit request
        costs, ``quantum=1.0`` dispatches one request per tenant per
        cycle.
    obs:
        Optional :class:`~repro.obs.Observability`; keeps
        ``mw_serve_queue_depth`` (gauge), ``mw_serve_admitted_total`` /
        ``mw_serve_rejected_total{tenant}`` and
        ``mw_serve_shed_total{reason}`` live.
    """

    def __init__(
        self,
        depth: int = 64,
        tenant_depth: int | None = 16,
        quantum: float = 1.0,
        obs=None,
    ) -> None:
        if depth < 1:
            raise ServeError(f"queue depth must be positive, got {depth}")
        if tenant_depth is not None and tenant_depth < 1:
            raise ServeError(f"tenant_depth must be positive, got {tenant_depth}")
        if quantum <= 0:
            raise ServeError(f"quantum must be positive, got {quantum}")
        self.depth = depth
        self.tenant_depth = tenant_depth
        self.quantum = quantum
        self._cond = threading.Condition()
        #: per-tenant FIFO lanes, in round-robin visit order
        self._lanes: "OrderedDict[str, deque[ServeRequest]]" = OrderedDict()
        self._deficit: dict[str, float] = {}
        self._size = 0
        self._closed = False
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self._depth_g = self._admit_c = self._reject_c = self._shed_c = None
        if obs is not None:
            self.bind_obs(obs)

    def bind_obs(self, obs) -> None:
        if self._depth_g is not None:
            return
        self._depth_g = obs.registry.gauge(
            "mw_serve_queue_depth", "Requests waiting for admission dispatch"
        )
        self._admit_c = obs.registry.counter(
            "mw_serve_admitted_total", "Requests admitted to the queue",
            labelnames=("tenant",),
        )
        self._reject_c = obs.registry.counter(
            "mw_serve_rejected_total", "Requests refused at submit (backpressure)",
            labelnames=("tenant",),
        )
        self._shed_c = obs.registry.counter(
            "mw_serve_shed_total", "Requests shed before execution",
            labelnames=("reason",),
        )

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def tenant_backlog(self, tenant: str) -> int:
        lane = self._lanes.get(tenant)
        return len(lane) if lane is not None else 0

    # -- submit side -------------------------------------------------------
    def offer(self, request: ServeRequest) -> None:
        """Admit ``request`` or raise :class:`AdmissionRejected`."""
        with self._cond:
            if self._closed:
                raise AdmissionRejected(
                    "admission queue is closed", tenant=request.tenant
                )
            if self._size >= self.depth:
                self.rejected += 1
                if self._reject_c is not None:
                    self._reject_c.inc(tenant=request.tenant)
                raise AdmissionRejected(
                    f"queue full ({self._size}/{self.depth} requests)",
                    tenant=request.tenant,
                    retry_after_s=self._retry_hint(),
                )
            lane = self._lanes.get(request.tenant)
            if (
                self.tenant_depth is not None
                and lane is not None
                and len(lane) >= self.tenant_depth
            ):
                self.rejected += 1
                if self._reject_c is not None:
                    self._reject_c.inc(tenant=request.tenant)
                raise AdmissionRejected(
                    f"tenant {request.tenant!r} backlog full "
                    f"({len(lane)}/{self.tenant_depth} requests)",
                    tenant=request.tenant,
                    retry_after_s=self._retry_hint(),
                )
            if lane is None:
                lane = deque()
                self._lanes[request.tenant] = lane
                self._deficit.setdefault(request.tenant, 0.0)
            lane.append(request)
            self._size += 1
            self.admitted += 1
            if self._admit_c is not None:
                self._admit_c.inc(tenant=request.tenant)
            if self._depth_g is not None:
                self._depth_g.set(float(self._size))
            self._cond.notify()

    def _retry_hint(self) -> float:
        # crude but honest: a full queue drains one quantum per tenant
        # per cycle; hint one cycle's worth of waiting per queued request
        # ahead, floored so clients do not spin.
        return max(0.005, 0.001 * self._size)

    # -- dispatch side -----------------------------------------------------
    def take(self, timeout: float | None = None) -> tuple[ServeRequest | None, list[ServeRequest]]:
        """Dequeue the next request by deficit round-robin.

        Returns ``(request, shed)`` where ``shed`` lists requests whose
        deadline expired while queued (already counted and removed —
        the caller fails their tickets). ``request`` is ``None`` on
        timeout or when the queue is closed and drained.
        """
        shed: list[ServeRequest] = []
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                request = self._pop_drr(shed)
                if request is not None or self._closed:
                    if self._depth_g is not None:
                        self._depth_g.set(float(self._size))
                    return request, shed
                if self._size > 0 and not shed:
                    # every head costs more than one quantum: keep
                    # scanning — deficits grow each pass, so this
                    # terminates within max(cost)/quantum cycles
                    continue
                if shed:
                    # deadline sheds are progress: report them before
                    # blocking so tickets fail promptly
                    if self._depth_g is not None:
                        self._depth_g.set(float(self._size))
                    return None, shed
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return None, shed

    def _pop_drr(self, shed: list[ServeRequest]) -> ServeRequest | None:
        """One DRR scan: drop expired heads, pay costs from deficits."""
        if self._size == 0:
            return None
        now = time.monotonic()
        # visit each lane at most once per scan
        for _ in range(len(self._lanes)):
            tenant, lane = next(iter(self._lanes.items()))
            self._lanes.move_to_end(tenant)
            # shed expired requests regardless of deficit — they cost
            # nothing to discard and paying for them would be unfair
            while lane and lane[0].expired(now):
                request = lane.popleft()
                self._size -= 1
                self.shed += 1
                if self._shed_c is not None:
                    self._shed_c.inc(reason="deadline")
                shed.append(request)
            if not lane:
                del self._lanes[tenant]
                self._deficit.pop(tenant, None)
                continue
            self._deficit[tenant] = self._deficit.get(tenant, 0.0) + self.quantum
            if self._deficit[tenant] >= lane[0].cost:
                request = lane.popleft()
                self._deficit[tenant] -= request.cost
                self._size -= 1
                if not lane:
                    del self._lanes[tenant]
                    self._deficit.pop(tenant, None)
                return request
        return None

    def steal(self, max_n: int) -> list[ServeRequest]:
        """Remove up to ``max_n`` queued requests for another dispatcher.

        The cluster router's work-stealing hook: an idle shard relieves
        a backlogged one. Requests are taken from the *tail* of the
        longest lanes (newest first), so the owning shard keeps FIFO
        order for the work it retains, and the victims are the requests
        that would have waited longest anyway. Shadow (fault-injected
        burst) requests are never stolen — a retry storm should keep
        hammering the shard it hit.
        """
        out: list[ServeRequest] = []
        with self._cond:
            while len(out) < max_n and self._size > 0:
                request = None
                for tenant in sorted(
                    self._lanes, key=lambda t: len(self._lanes[t]), reverse=True
                ):
                    lane = self._lanes[tenant]
                    for i in range(len(lane) - 1, -1, -1):
                        if not lane[i].shadow:
                            request = lane[i]
                            del lane[i]
                            break
                    if request is None:
                        continue
                    self._size -= 1
                    if not lane:
                        del self._lanes[tenant]
                        self._deficit.pop(tenant, None)
                    break
                if request is None:
                    break  # nothing stealable (only shadows queued)
                out.append(request)
            if self._depth_g is not None:
                self._depth_g.set(float(self._size))
        return out

    def shed_request(self, request: ServeRequest, reason: str) -> None:
        """Count a shed decided outside the queue (e.g. at dispatch)."""
        with self._cond:
            self.shed += 1
            if self._shed_c is not None:
                self._shed_c.inc(reason=reason)

    def close(self) -> None:
        """Stop accepting work and wake every blocked ``take``."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self) -> list[ServeRequest]:
        """Remove and return everything still queued (post-close cleanup)."""
        with self._cond:
            out: list[ServeRequest] = []
            for lane in self._lanes.values():
                out.extend(lane)
            self._lanes.clear()
            self._deficit.clear()
            self._size = 0
            if self._depth_g is not None:
                self._depth_g.set(0.0)
            return out
