"""The world-budget governor: a global slot pool with per-tenant quotas.

Speculation is only profitable while spare capacity exists (paper §2,
Figs. 3–4): every world beyond the first buys latency with wasted work,
and once concurrent requests contend for the same processors the waste
stops paying. :class:`WorldBudget` is the arbiter of that tradeoff at
service scale. It holds a fixed pool of *world slots* — one slot is the
right to run one speculative world — and grants them as
:class:`Reservation` objects:

- **quotas** — each tenant may hold at most ``quota(tenant)`` slots at
  once, so one greedy tenant cannot starve the rest of the pool;
- **elastic grants** — a reservation asks for ``want`` slots but only
  *needs* ``min_slots`` (normally 1: the non-speculative world). The
  governor grants as much of ``want`` as fits; everything above
  ``min_slots`` is *speculative* and reclaimable;
- **preemption** — when a higher-priority request cannot get even its
  ``min_slots``, the governor claws back speculative slots from the
  lowest-priority holders (never their minimum — committed work is
  never cancelled, exactly the paper's rule that only not-yet-committed
  worlds are disposable). Victims learn through their ``on_preempt``
  callback and are expected to stop launching the worlds they lost.

All accounting is thread-safe; :meth:`WorldBudget.reserve_blocking`
parks a worker until capacity frees up (or a deadline passes), which is
what turns the pool into backpressure upstream.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from repro.errors import QuotaExceeded, ServeError


class Reservation:
    """A tenant's grant of world slots (``min_slots`` firm, rest speculative).

    ``granted`` is the current holding — it shrinks when speculative
    slots are preempted or partially released; ``preempted`` counts the
    slots lost to preemption. Release is idempotent.
    """

    __slots__ = (
        "tenant", "priority", "min_slots", "granted", "preempted",
        "on_preempt", "_budget", "_released",
    )

    def __init__(
        self,
        budget: "WorldBudget",
        tenant: str,
        granted: int,
        min_slots: int,
        priority: int,
        on_preempt: Callable[[int], None] | None,
    ) -> None:
        self._budget = budget
        self.tenant = tenant
        self.granted = granted
        self.min_slots = min_slots
        self.priority = priority
        self.on_preempt = on_preempt
        self.preempted = 0
        self._released = False

    @property
    def speculative(self) -> int:
        """Slots above the firm minimum — the preemptible share."""
        return max(0, self.granted - self.min_slots)

    def release(self, n: int | None = None) -> None:
        """Return ``n`` slots (default: all remaining) to the pool."""
        self._budget._release(self, n)

    def __enter__(self) -> "Reservation":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Reservation(tenant={self.tenant!r}, granted={self.granted}, "
            f"min={self.min_slots}, prio={self.priority})"
        )


class WorldBudget:
    """A fixed pool of world slots with per-tenant quotas and preemption.

    Parameters
    ----------
    slots:
        Total concurrent worlds the machine affords (the paper's spare
        processors ρ, made explicit).
    default_quota:
        Per-tenant concurrent-slot cap; ``None`` means a tenant may use
        the whole pool (fairness then rests on the admission queue).
    obs:
        Optional :class:`~repro.obs.Observability`. The governor keeps
        ``mw_serve_slots_in_use`` (gauge), ``mw_serve_slots_hwm``
        (high-watermark gauge — the acceptance check that the budget was
        never exceeded) and ``mw_serve_preemptions_total{tenant}``
        (slots clawed back, labelled by victim) live.
    """

    def __init__(self, slots: int, default_quota: int | None = None, obs=None) -> None:
        if slots < 1:
            raise ServeError(f"budget needs at least one slot, got {slots}")
        if default_quota is not None and default_quota < 1:
            raise ServeError(f"default_quota must be positive, got {default_quota}")
        self.slots = slots
        self.default_quota = default_quota
        self._cond = threading.Condition()
        self._in_use = 0
        self._quotas: dict[str, int] = {}
        self._tenant_use: dict[str, int] = {}
        self._holders: list[Reservation] = []
        self.high_watermark = 0
        self.preempted_slots = 0
        self._obs = None
        self._in_use_g = self._hwm_g = self._preempt_c = None
        if obs is not None:
            self.bind_obs(obs)

    def bind_obs(self, obs) -> None:
        """Attach telemetry (idempotent; also called by the service)."""
        if self._obs is obs:
            return
        self._obs = obs
        self._in_use_g = obs.registry.gauge(
            "mw_serve_slots_in_use", "World slots currently granted"
        )
        self._hwm_g = obs.registry.gauge(
            "mw_serve_slots_hwm", "High watermark of granted world slots"
        )
        self._preempt_c = obs.registry.counter(
            "mw_serve_preemptions_total",
            "Speculative slots preempted, by victim tenant",
            labelnames=("tenant",),
        )
        self._in_use_g.set(float(self._in_use))
        self._hwm_g.set(float(self.high_watermark))

    # -- introspection -----------------------------------------------------
    def quota(self, tenant: str) -> int:
        explicit = self._quotas.get(tenant, self.default_quota)
        return self.slots if explicit is None else explicit

    def set_quota(self, tenant: str, max_slots: int) -> None:
        if max_slots < 1:
            raise ServeError(f"quota must be positive, got {max_slots}")
        with self._cond:
            self._quotas[tenant] = max_slots
            self._cond.notify_all()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def free(self) -> int:
        return self.slots - self._in_use

    def tenant_in_use(self, tenant: str) -> int:
        return self._tenant_use.get(tenant, 0)

    @property
    def load(self) -> float:
        """Fraction of the pool currently granted, in ``[0, 1]``."""
        return self._in_use / self.slots

    def snapshot(self) -> dict:
        with self._cond:
            return {
                "slots": self.slots,
                "in_use": self._in_use,
                "high_watermark": self.high_watermark,
                "preempted_slots": self.preempted_slots,
                "tenants": dict(self._tenant_use),
            }

    # -- accounting (all under self._cond) ---------------------------------
    def _take(self, tenant: str, n: int) -> None:
        self._in_use += n
        if self._in_use > self.slots:  # invariant, not a runtime state
            raise ServeError(
                f"budget overcommitted: {self._in_use} > {self.slots} slots"
            )
        self._tenant_use[tenant] = self._tenant_use.get(tenant, 0) + n
        if self._in_use > self.high_watermark:
            self.high_watermark = self._in_use
            if self._hwm_g is not None:
                self._hwm_g.set(float(self.high_watermark))
        if self._in_use_g is not None:
            self._in_use_g.set(float(self._in_use))

    def _give_back(self, tenant: str, n: int) -> None:
        self._in_use -= n
        remaining = self._tenant_use.get(tenant, 0) - n
        if remaining > 0:
            self._tenant_use[tenant] = remaining
        else:
            self._tenant_use.pop(tenant, None)
        if self._in_use_g is not None:
            self._in_use_g.set(float(self._in_use))

    def _preempt_for(
        self, needed: int, priority: int
    ) -> list[tuple[Reservation, int]]:
        """Claw back up to ``needed`` speculative slots from lower priority.

        Victims are taken lowest-priority-first; within a priority, the
        holder with the most speculative slots pays first (it is wasting
        the most). Returns ``(victim, slots_taken)`` pairs; accounting is
        already updated, callbacks are the caller's job (outside the
        lock).
        """
        victims: list[tuple[Reservation, int]] = []
        candidates = sorted(
            (r for r in self._holders if r.priority < priority and r.speculative > 0),
            key=lambda r: (r.priority, -r.speculative),
        )
        for holder in candidates:
            if needed <= 0:
                break
            take = min(holder.speculative, needed)
            holder.granted -= take
            holder.preempted += take
            self._give_back(holder.tenant, take)
            self.preempted_slots += take
            if self._preempt_c is not None:
                self._preempt_c.inc(float(take), tenant=holder.tenant)
            victims.append((holder, take))
            needed -= take
        return victims

    def _try_reserve(
        self,
        tenant: str,
        want: int,
        min_slots: int,
        priority: int,
        on_preempt: Callable[[int], None] | None,
        allow_preempt: bool,
    ) -> tuple[Reservation | None, list[tuple[Reservation, int]]]:
        quota = self.quota(tenant)
        if min_slots > quota:
            raise QuotaExceeded(
                f"tenant {tenant!r} needs {min_slots} slots but its quota is {quota}"
            )
        headroom = min(self.free, quota - self.tenant_in_use(tenant))
        grant = min(want, headroom)
        victims: list[tuple[Reservation, int]] = []
        if grant < min_slots:
            if not allow_preempt:
                return None, []
            reclaimable = sum(
                r.speculative for r in self._holders if r.priority < priority
            )
            shortfall = min_slots - max(grant, 0)
            if self.free + reclaimable < min_slots or (
                quota - self.tenant_in_use(tenant) < min_slots
            ):
                return None, []
            victims = self._preempt_for(shortfall, priority)
            grant = min_slots
        res = Reservation(self, tenant, grant, min_slots, priority, on_preempt)
        self._take(tenant, grant)
        self._holders.append(res)
        return res, victims

    @staticmethod
    def _notify_victims(victims: list[tuple[Reservation, int]]) -> None:
        for victim, taken in victims:
            if victim.on_preempt is not None:
                victim.on_preempt(taken)

    # -- the public grant API ----------------------------------------------
    def reserve(
        self,
        tenant: str,
        want: int,
        min_slots: int = 1,
        priority: int = 0,
        on_preempt: Callable[[int], None] | None = None,
        preempt: bool = True,
    ) -> Reservation | None:
        """Grant up to ``want`` slots now, or return ``None``.

        The grant is at least ``min_slots`` (preempting lower-priority
        speculative slots if necessary and allowed) or nothing at all —
        a request is never left holding fewer worlds than it needs to
        run sequentially.
        """
        if want < 1 or min_slots < 1 or min_slots > want:
            raise ServeError(
                f"need 1 <= min_slots <= want, got min_slots={min_slots} want={want}"
            )
        with self._cond:
            res, victims = self._try_reserve(
                tenant, want, min_slots, priority, on_preempt, preempt
            )
        self._notify_victims(victims)
        return res

    def reserve_blocking(
        self,
        tenant: str,
        want: int,
        min_slots: int = 1,
        priority: int = 0,
        on_preempt: Callable[[int], None] | None = None,
        preempt: bool = True,
        timeout: float | None = None,
    ) -> Reservation | None:
        """Like :meth:`reserve`, but wait up to ``timeout`` for capacity."""
        if want < 1 or min_slots < 1 or min_slots > want:
            raise ServeError(
                f"need 1 <= min_slots <= want, got min_slots={min_slots} want={want}"
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                res, victims = self._try_reserve(
                    tenant, want, min_slots, priority, on_preempt, preempt
                )
                if res is not None:
                    break
                if deadline is None:
                    self._cond.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._cond.wait(remaining):
                        return None
        self._notify_victims(victims)
        return res

    def _release(self, res: Reservation, n: int | None = None) -> None:
        with self._cond:
            if res._released:
                return
            give = res.granted if n is None else min(n, res.granted)
            if give <= 0:
                return
            res.granted -= give
            self._give_back(res.tenant, give)
            if res.granted <= 0:
                res._released = True
                try:
                    self._holders.remove(res)
                except ValueError:  # pragma: no cover - defensive
                    pass
            self._cond.notify_all()
