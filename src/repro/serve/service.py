"""The multi-tenant speculation service.

:class:`SpeculationService` is the traffic-facing layer the rest of the
library has been building toward: callers :meth:`~SpeculationService.submit`
alternative blocks and get a :class:`ServeTicket` back; a worker pool
drives the blocks through the existing machinery, with every layer of
the stack doing its job:

- the :class:`~repro.serve.admission.AdmissionQueue` bounds the backlog
  (backpressure), sheds expired requests, and round-robins tenants;
- the :class:`~repro.serve.budget.WorldBudget` caps concurrent worlds
  machine-wide and per tenant, preempting speculative worlds when a
  higher-priority request needs its first slot;
- the speculation policy (adaptive by default) picks K ≤ N
  alternatives, a stagger schedule, and possibly a degraded backend;
- a per-request :class:`~repro.faults.supervisor.Supervisor` runs the
  block with retry spares and the fork→thread→sequential fallback
  chain, so a worker surviving its request is the common case even
  under fault injection;
- with a :class:`~repro.journal.CommitJournal`, each request's win is a
  durable ``block`` transaction keyed by the request ``seq`` — a
  service restarted over the same journal *replays* already-applied
  requests instead of re-running them (exactly-once per request);
- with an :class:`~repro.obs.Observability`, every request is a span
  (``cat="serve"``, one track per tenant) and the ``mw_serve_*``
  family tracks slots, queue depth, sheds, latency and K choices.

Fault injection (``serve`` site, keyed ``(crc32(tenant), seq)``):
``REQUEST_BURST`` turns one submit into ``burst_n`` copies — a client
retry storm pressing on admission bounds; ``SLOW_TENANT`` charges the
request ``slow_tenant_s`` extra worker seconds — a pathological tenant
hogging its share.
"""

from __future__ import annotations

import dataclasses
import inspect
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any, Sequence

from repro.core.outcome import BlockOutcome
from repro.core.worlds import _normalize
from repro.errors import (
    AdmissionRejected,
    JournalCrash,
    ServeError,
    ServiceStopped,
    WorldsError,
)
from repro.faults.plan import SERVE_SITE, FaultKind
from repro.faults.supervisor import Supervisor
from repro.journal.recovery import RecoveryReport, recover
from repro.serve.admission import AdmissionQueue, ServeRequest, ensure_seq_at_least
from repro.serve.budget import WorldBudget
from repro.serve.policy import AdaptiveSpeculationPolicy, SpeculationDecision
from repro.serve.stats import AlternativeStats

#: Latency buckets suited to request serving (5 ms .. 10 s).
LATENCY_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


@dataclass
class ServeResult:
    """What became of one submitted request.

    ``status`` is one of ``committed`` (a winner was accepted),
    ``failed`` (the block ran but no alternative won), ``shed`` (the
    service discarded the request before/instead of running it) or
    ``cancelled`` (service shutdown). ``outcome`` is the underlying
    :class:`~repro.core.outcome.BlockOutcome` when the block ran.
    """

    status: str
    tenant: str
    seq: int
    outcome: BlockOutcome | None = None
    reason: str = ""
    k: int = 0
    policy_reason: str = ""
    backend: str = ""
    queue_wait_s: float = 0.0
    latency_s: float = 0.0
    preempted_slots: int = 0
    replayed: bool = False
    #: Backpressure hint on ``cancelled``/``shed`` results: when > 0,
    #: the request was refused for a transient reason (e.g. service
    #: shutdown) and a router may re-route or retry after this many
    #: seconds instead of failing the caller.
    retry_after_s: float = 0.0

    @property
    def committed(self) -> bool:
        return self.status == "committed"

    @property
    def value(self) -> Any:
        return self.outcome.value if self.outcome is not None else None


@dataclass
class RestartReport:
    """What :meth:`SpeculationService.restore` rebuilt from disk."""

    recovery: RecoveryReport
    #: request seqs whose effects were already applied before the crash
    #: (their committed values are replayable via the journal).
    already_applied: list[int] = field(default_factory=list)
    #: sealed-but-unapplied requests re-admitted under their original seq.
    re_admitted: list[int] = field(default_factory=list)
    #: sealed requests that could not be rebuilt (no ``spec`` /
    #: no builder); their admit txns are settled ``unrecoverable``.
    dropped: list[int] = field(default_factory=list)
    #: the restored incarnation's first safe request seq.
    seq_floor: int = 1
    #: tickets for the re-admitted requests, by request seq.
    tickets: dict[int, "ServeTicket"] = field(default_factory=dict)


class ServeTicket:
    """A caller's handle on a submitted request (a small future)."""

    def __init__(self, tenant: str, seq: int) -> None:
        self.tenant = tenant
        self.seq = seq
        self._done = threading.Event()
        self._result: ServeResult | None = None

    def _resolve(self, result: ServeResult) -> None:
        self._result = result
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> ServeResult:
        """Block until the service resolves this request."""
        if not self._done.wait(timeout):
            raise ServeError(
                f"request {self.seq} (tenant {self.tenant!r}) not done "
                f"within {timeout}s"
            )
        assert self._result is not None
        return self._result


class SpeculationService:
    """Serve speculative alternative blocks to many tenants at once.

    Parameters
    ----------
    budget:
        A :class:`WorldBudget`, or an int (total slots) to build one.
    queue:
        An :class:`AdmissionQueue`; defaults to one with bounds scaled
        to the budget (depth ``16×slots``).
    policy:
        Any object with ``decide(names, granted, load)`` and
        ``observe(outcome, names, launched=None)``; defaults to an
        :class:`AdaptiveSpeculationPolicy` over fresh stats.
    workers:
        Dispatch threads. Each drives one request at a time; the worlds
        within a request are the backend's business, not the worker's.
    backend:
        Default backend for admitted blocks (the policy may override,
        and the per-request supervisor may degrade it further).
    grant_timeout_s:
        How long a deadline-less request may wait for budget slots
        before it is shed for capacity (deadlined requests wait until
        their deadline instead).
    require_full_grant:
        When True, a request waits for one slot per alternative instead
        of running with whatever is free — the honest accounting for a
        policy that always spawns everything (the naive baseline). The
        default elastic grant is what makes adaptive serving pay.
    supervisor_retries / supervisor_backoff_s:
        Per-request :class:`Supervisor` knobs.
    fault_plan / journal / obs:
        The robustness planes, threaded through every layer. ``journal``
        also accepts a plain filesystem path (a ``str``), opened as a
        :class:`~repro.journal.FileJournalStorage`-backed journal — the
        form a shard-host child process is configured with.
    journal_admission:
        When True (and a journal is present), every non-shadow submit is
        journalled as a sealed ``admit`` transaction carrying the
        request's ``spec``, and its resolution marks the txn applied
        with the final status. This is what makes a request *durable
        once acked*: a full-process crash leaves the sealed admit on
        disk, and :meth:`restore` re-admits it under its original seq
        (the supervisor then replays any already-applied block win
        instead of re-running). Off by default — a purely in-memory
        service has no restart story to pay for.
    on_resolve:
        Shard-aware hook: called as ``on_resolve(request, result)``
        after a (non-shadow) request's ticket resolves. A cluster
        router uses it to settle its own per-request record — and to
        re-route ``cancelled`` results carrying a ``retry_after_s``
        hint instead of failing the caller. Exceptions are swallowed;
        the hook must not block.
    """

    def __init__(
        self,
        budget: WorldBudget | int,
        queue: AdmissionQueue | None = None,
        policy=None,
        workers: int = 4,
        backend: str = "thread",
        grant_timeout_s: float = 5.0,
        require_full_grant: bool = False,
        supervisor_retries: int = 1,
        supervisor_backoff_s: float = 0.005,
        fault_plan=None,
        journal=None,
        obs=None,
        on_resolve=None,
        journal_admission: bool = False,
    ) -> None:
        if workers < 1:
            raise ServeError(f"need at least one worker, got {workers}")
        self.budget = WorldBudget(budget) if isinstance(budget, int) else budget
        self.queue = queue if queue is not None else AdmissionQueue(
            depth=16 * self.budget.slots
        )
        if policy is None:
            policy = AdaptiveSpeculationPolicy(stats=AlternativeStats(obs=obs))
        self.policy = policy
        # class-aware policies take a request_class kwarg; older/custom
        # ones may not — detect once so dispatch stays compatible
        try:
            params = inspect.signature(policy.decide).parameters
            self._policy_takes_class = "request_class" in params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD for p in params.values()
            )
        except (TypeError, ValueError):  # pragma: no cover - exotic callables
            self._policy_takes_class = False
        self.workers = workers
        self.backend = backend
        self.grant_timeout_s = grant_timeout_s
        self.require_full_grant = require_full_grant
        self.supervisor_retries = supervisor_retries
        self.supervisor_backoff_s = supervisor_backoff_s
        self.fault_plan = fault_plan
        if isinstance(journal, str):
            # a filesystem path: the config form a shard-host child
            # process receives, where the journal must outlive the pid
            from repro.journal import CommitJournal, FileJournalStorage

            journal = CommitJournal(storage=FileJournalStorage(journal))
        self.journal = journal
        self.obs = obs
        self.on_resolve = on_resolve
        self.journal_admission = journal_admission and journal is not None
        self._threads: list[threading.Thread] = []
        self._tickets: dict[int, ServeTicket] = {}
        self._tickets_lock = threading.Lock()
        #: request seq -> journal admit txn seq (journalled admission)
        self._admit_txns: dict[int, int] = {}
        self._admit_lock = threading.Lock()
        self._running = False
        self._crashed = False
        self._requests_c = self._latency_h = self._wait_h = self._k_h = None
        if obs is not None:
            self.budget.bind_obs(obs)
            self.queue.bind_obs(obs)
            if fault_plan is not None:
                obs.watch_fault_plan(fault_plan)
            stats = getattr(policy, "stats", None)
            if stats is not None:
                stats.bind_obs(obs)
            self._requests_c = obs.registry.counter(
                "mw_serve_requests_total", "Requests by final status",
                labelnames=("tenant", "status"),
            )
            self._latency_h = obs.registry.histogram(
                "mw_serve_request_latency_seconds",
                "Submit-to-resolution latency of committed requests",
                buckets=LATENCY_BUCKETS,
            )
            self._wait_h = obs.registry.histogram(
                "mw_serve_queue_wait_seconds",
                "Admission-to-dispatch wait", buckets=LATENCY_BUCKETS,
            )
            self._k_h = obs.registry.histogram(
                "mw_serve_k_chosen", "Worlds actually speculated per request",
                buckets=(1, 2, 3, 4, 6, 8, 12, 16),
            )

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "SpeculationService":
        if self._running:
            return self
        self._running = True
        for i in range(self.workers):
            t = threading.Thread(
                target=self._worker_loop, name=f"serve-worker-{i}", daemon=True
            )
            t.start()
            self._threads.append(t)
        return self

    def stop(self, timeout: float | None = 10.0, drain: bool = True) -> None:
        """Stop accepting work, drain the queue, join the workers.

        With ``drain=True`` (the default) workers finish the whole
        backlog before exiting; with ``drain=False`` only in-flight
        requests finish and the backlog is shed immediately — the fast
        decommission a cluster router wants, since shed work re-routes
        to surviving shards rather than waiting out this one's queue.

        Requests still queued at shutdown are shed with the distinct
        ``mw_serve_shed_total{reason="shutdown"}`` label and resolve as
        ``cancelled`` carrying a ``retry_after_s`` hint — shutdown is a
        *transient* refusal (the work was never attempted), so a cluster
        router re-routes these to a surviving shard instead of failing
        the caller.
        """
        if not self._running:
            return
        self._running = False
        drained: list = [] if drain else self.queue.drain()
        self.queue.close()
        for t in self._threads:
            t.join(timeout)
        self._threads.clear()
        drained += self.queue.drain()
        # one worker-pass worth of waiting per drained request: the same
        # crude-but-honest estimate the admission queue hints under
        # backpressure
        retry_hint = max(0.005, 0.001 * len(drained))
        for request in drained:
            self.queue.shed_request(request, reason="shutdown")
            self._resolve(
                request,
                ServeResult(
                    status="cancelled", tenant=request.tenant, seq=request.seq,
                    reason="service stopped", retry_after_s=retry_hint,
                ),
            )

    def crash(self) -> None:
        """Kill the service the way a dead shard dies: nothing graceful.

        The cluster failover simulation primitive. Ticket resolution and
        the ``on_resolve`` hook are suppressed from this point on — a
        crashed process reports nothing — the queue closes without the
        shutdown shed/cancel courtesy, and workers are joined so that
        in-flight requests settle their journal transactions (the
        journal is the only thing a crash leaves behind; whatever it
        recorded as applied is durable, everything else is lost). A
        router then replays/re-lands from the journal. Also models
        *fencing*: a shard whose lease expired must stop committing,
        which is exactly what suppressing resolution after the flag
        achieves.
        """
        if self._crashed:
            return
        self._crashed = True
        self._running = False
        self.queue.close()
        for t in self._threads:
            t.join(10.0)
        self._threads.clear()
        self.queue.drain()

    def steal_requests(self, max_n: int) -> list[ServeRequest]:
        """Give up to ``max_n`` queued requests to another dispatcher.

        The cluster work-stealing hook: the stolen requests' tickets are
        detached (this service will never resolve them — the stealing
        router re-places them under the same ``seq``, which keeps the
        journal block id and hence exactly-once intact).

        The admit ledger line stays **sealed** here: the hand-off is
        not durable until the thief journals its own admit, and marking
        it now would leave the request with no durable record anywhere
        if the thief's admit write tears. The router calls
        :meth:`confirm_stolen` once the thief's admit is sealed; until
        then a crash leaves (at worst) two sealed admits, which restore
        deduplicates as superseded.
        """
        stolen = self.queue.steal(max_n)
        with self._tickets_lock:
            for request in stolen:
                self._tickets.pop(request.seq, None)
        return stolen

    def confirm_stolen(self, request: ServeRequest) -> None:
        """Close the admit ledger line of a durably stolen request.

        Called by the router *after* the thief sealed its own admit: a
        restart here must not re-run the stolen request.
        """
        self._settle_admit(request, "stolen")

    @classmethod
    def restore(
        cls,
        journal,
        budget: WorldBudget | int,
        build_alternatives=None,
        gates=(),
        **kwargs: Any,
    ) -> tuple["SpeculationService", RestartReport]:
        """Cold-restart a service from its journal after a process death.

        The journal is the only survivor of a full-process crash; this
        rebuilds everything else around it:

        1. run :func:`~repro.journal.recovery.recover` with ``admit``
           and ``block`` txns *deferred* (their apply phase is serving,
           which only this path can redo);
        2. build a fresh service (budget/queue/policy from ``kwargs``,
           ``journal_admission`` forced on) over the same journal;
        3. bump the process-wide seq counter past every journalled
           request seq, so the new incarnation never reuses one;
        4. re-admit every sealed-but-unapplied ``admit`` under its
           original seq, rebuilding alternatives via
           ``build_alternatives(spec)``. A re-admitted request whose
           block win already applied is *replayed* by the per-request
           supervisor (same winner, byte-identical value), not re-run —
           idempotent replay of applied commits falls out of the
           existing block dedup.

        Requests whose ``spec`` is missing (or with no builder) cannot
        be rebuilt; their admit txns are settled ``unrecoverable`` and
        listed in ``report.dropped`` rather than retried forever.

        Returns ``(service, report)``; the service is already started
        and the report carries tickets for the re-admitted requests.
        """
        recovery = recover(
            journal, gates=gates,
            fault_plan=kwargs.get("fault_plan"),
            defer_kinds=("admit", "block"),
        )
        kwargs.setdefault("journal_admission", True)
        svc = cls(budget, journal=journal, **kwargs)

        floor = 1
        for intent, _ in journal.applied_intents("admit"):
            floor = max(floor, intent["data"]["request"] + 1)
        for intent, _ in journal.applied_intents("block"):
            floor = max(floor, intent["data"]["block"] + 1)
        sealed = journal.sealed_unapplied_intents("admit")
        for intent in sealed:
            floor = max(floor, intent["data"]["request"] + 1)
        ensure_seq_at_least(floor)

        report = RestartReport(
            recovery=recovery,
            already_applied=sorted(
                intent["data"]["request"]
                for intent, _ in journal.applied_intents("admit")
            ),
            seq_floor=floor,
        )
        svc.start()
        for intent in sealed:
            data = intent["data"]
            rseq = data["request"]
            svc._admit_txns[rseq] = intent["seq"]
            spec = data.get("spec")
            if build_alternatives is None or spec is None:
                journal.mark_applied(intent["seq"], status="unrecoverable")
                svc._admit_txns.pop(rseq, None)
                report.dropped.append(rseq)
                continue
            report.tickets[rseq] = svc.submit(
                data.get("tenant", "?"),
                build_alternatives(spec),
                priority=data.get("priority", 0),
                cost=data.get("cost", 1.0),
                timeout=data.get("timeout"),
                seq=rseq,
                spec=spec,
                request_class=data.get("request_class", ""),
            )
            report.re_admitted.append(rseq)
        obs = kwargs.get("obs")
        if obs is not None:
            obs.registry.counter(
                "mw_restores_total", "Cold restarts completed from a journal",
                labelnames=("layer",),
            ).inc(layer="service")
            obs.tracer.instant(
                "service.restore", cat="serve", track="journal",
                re_admitted=len(report.re_admitted),
                already_applied=len(report.already_applied),
                dropped=len(report.dropped), seq_floor=floor,
            )
        return svc, report

    def __enter__(self) -> "SpeculationService":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- submit ------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        alternatives: Sequence[Any],
        initial: dict | None = None,
        priority: int = 0,
        deadline_s: float | None = None,
        timeout: float | None = None,
        cost: float = 1.0,
        seq: int | None = None,
        deadline_at: float | None = None,
        spec: Any = None,
        request_class: str = "",
    ) -> ServeTicket:
        """Queue one alternative block for ``tenant``; returns a ticket.

        ``deadline_s`` is *relative* (seconds from now): a request still
        queued — or still waiting for budget — past it is shed, and its
        ticket resolves with ``status="shed"``. ``timeout`` bounds the
        block's execution once started. Raises
        :class:`~repro.errors.AdmissionRejected` under backpressure and
        :class:`~repro.errors.ServiceStopped` when not running.

        ``seq`` and ``deadline_at`` are the cluster router's re-routing
        hooks: a re-landed request keeps its original service-unique
        sequence number (which is also the journal block id, so a
        duplicate placement dedupes against an already-applied commit)
        and its original *absolute* deadline rather than getting a fresh
        one. ``deadline_at`` overrides ``deadline_s`` when both are
        given.

        ``spec`` is an opaque picklable description of the request that
        rides the journalled ``admit`` intent (see ``journal_admission``)
        so a cold restart can rebuild the alternatives and re-admit.

        ``request_class`` is the tenant-declared workload class (e.g.
        ``"io"``, ``"cpu"``); a class-aware policy consults it to widen
        or tighten K (see
        :attr:`~repro.serve.policy.AdaptiveSpeculationPolicy.class_max_k`).
        """
        if not self._running:
            raise ServiceStopped("service is not running (call start())")
        alts = _normalize(alternatives)  # validate before queueing
        now = time.monotonic()
        if deadline_at is None and deadline_s is not None:
            deadline_at = now + deadline_s
        extra = {} if seq is None else {"seq": seq}
        request = ServeRequest(
            tenant=tenant,
            alternatives=alts,
            initial=initial,
            priority=priority,
            deadline_s=deadline_at,
            timeout=timeout,
            cost=cost,
            spec=spec,
            request_class=request_class,
            **extra,
        )
        ticket = ServeTicket(tenant, request.seq)
        with self._tickets_lock:
            self._tickets[request.seq] = ticket
        try:
            self.queue.offer(request)
        except AdmissionRejected:
            with self._tickets_lock:
                self._tickets.pop(request.seq, None)
            self._count_status(tenant, "rejected")
            raise
        # a re-landed request (explicit seq) may already own a sealed
        # admit txn from a dead incarnation — reuse it, never duplicate
        self._journal_admit(request, maybe_existing=seq is not None)
        self._maybe_burst(request)
        return ticket

    def _journal_admit(self, request: ServeRequest, maybe_existing: bool) -> None:
        """Seal an ``admit`` txn for ``request`` (journalled admission).

        The sealed intent is the durable ack: from this point a crash
        cannot lose the request — :meth:`restore` re-admits it. May
        raise :class:`~repro.errors.JournalCrash` (injected journal
        faults), exactly like any other journal write.
        """
        if not self.journal_admission or request.shadow:
            return
        with self._admit_lock:
            if request.seq in self._admit_txns:
                return
            if maybe_existing:
                existing = self.journal.find_sealed("admit", request=request.seq)
                if existing is not None:
                    self._admit_txns[request.seq] = existing["seq"]
                    return
            txn = self.journal.begin(
                "admit", request=request.seq, tenant=request.tenant,
                priority=request.priority, cost=request.cost,
                timeout=request.timeout, spec=request.spec,
                request_class=request.request_class,
            )
            self.journal.seal(txn)
            self._admit_txns[request.seq] = txn

    def _settle_admit(self, request: ServeRequest, status: str) -> None:
        """Mark the request's admit txn applied with its final status."""
        if not self.journal_admission or request.shadow:
            return
        with self._admit_lock:
            txn = self._admit_txns.pop(request.seq, None)
            if txn is None:
                rec = self.journal.find_sealed("admit", request=request.seq)
                if rec is None:
                    return
                txn = rec["seq"]
            try:
                if self.journal.status(txn) == "sealed":
                    self.journal.mark_applied(txn, status=status)
            except JournalCrash:
                # a dead (poisoned) journal cannot settle; the sealed
                # admit is exactly what restore() replays after the
                # crash, so losing the settle loses nothing
                pass

    def _maybe_burst(self, request: ServeRequest) -> None:
        """REQUEST_BURST: re-submit the request as a storm of shadows."""
        plan = self.fault_plan
        if plan is None:
            return
        key = (zlib.crc32(request.tenant.encode()), request.seq)
        fault = plan.decide(SERVE_SITE, *key)
        if fault.kind is not FaultKind.REQUEST_BURST:
            return
        copies = max(0, int(fault.param) - 1)
        plan.note_injection(
            SERVE_SITE, fault.kind,
            detail=f"{copies} shadow resubmits of request {request.seq}",
            tenant=request.tenant, seq=request.seq,
        )
        for _ in range(copies):
            shadow = ServeRequest(
                tenant=request.tenant,
                alternatives=request.alternatives,
                initial=request.initial,
                priority=request.priority,
                deadline_s=request.deadline_s,
                timeout=request.timeout,
                cost=request.cost,
                shadow=True,
            )
            try:
                self.queue.offer(shadow)
            except AdmissionRejected:
                break  # the storm hit the backpressure wall — working as intended

    # -- workers -----------------------------------------------------------
    def _resolve(self, request: ServeRequest, result: ServeResult) -> None:
        if request.shadow:
            return
        if self._crashed:
            return  # a crashed shard reports nothing; the journal speaks
        # settle the admit ledger before acking: an acked result is
        # always at least as durable as what the journal says
        self._settle_admit(request, result.status)
        with self._tickets_lock:
            ticket = self._tickets.pop(request.seq, None)
        if ticket is not None:
            ticket._resolve(result)
        if self.on_resolve is not None:
            try:
                self.on_resolve(request, result)
            except Exception:  # noqa: BLE001 - the hook must not kill a worker
                pass

    def _count_status(self, tenant: str, status: str) -> None:
        if self._requests_c is not None:
            self._requests_c.inc(tenant=tenant, status=status)

    def _worker_loop(self) -> None:
        while True:
            request, shed = self.queue.take(timeout=0.05)
            for expired in shed:
                self._resolve(
                    expired,
                    ServeResult(
                        status="shed", tenant=expired.tenant, seq=expired.seq,
                        reason="deadline expired in queue",
                    ),
                )
                self._count_status(expired.tenant, "shed")
            if request is None:
                if not self._running:
                    return
                continue
            try:
                self._serve_one(request)
            except Exception as exc:  # noqa: BLE001 - a worker never dies
                self._resolve(
                    request,
                    ServeResult(
                        status="failed", tenant=request.tenant, seq=request.seq,
                        reason=f"internal error: {exc!r}",
                    ),
                )
                self._count_status(request.tenant, "error")

    def _serve_one(self, request: ServeRequest) -> None:
        dispatched = time.monotonic()
        queue_wait = dispatched - request.submitted_at
        if self._wait_h is not None:
            self._wait_h.observe(queue_wait)
        tenant = request.tenant
        alts = list(request.alternatives)
        names = [a.name for a in alts]

        # ---- budget grant (bounded by the deadline) ----------------------
        preempt_flag = threading.Event()
        if request.deadline_s is not None:
            grant_timeout = request.deadline_s - time.monotonic()
        else:
            grant_timeout = self.grant_timeout_s
        reservation = None
        min_slots = len(alts) if self.require_full_grant else 1
        if grant_timeout > 0:
            reservation = self.budget.reserve_blocking(
                tenant, want=len(alts), min_slots=min_slots,
                priority=request.priority,
                on_preempt=lambda n: preempt_flag.set(),
                timeout=grant_timeout,
            )
        if reservation is None:
            reason = (
                "deadline expired waiting for budget"
                if request.deadline_s is not None
                else "no budget capacity"
            )
            shed_label = "deadline" if request.deadline_s is not None else "capacity"
            self.queue.shed_request(request, reason=shed_label)
            self._resolve(
                request,
                ServeResult(
                    status="shed", tenant=tenant, seq=request.seq,
                    reason=reason, queue_wait_s=queue_wait,
                ),
            )
            self._count_status(tenant, "shed")
            return

        span_id = -1
        if self.obs is not None:
            span_id = self.obs.tracer.begin(
                f"request:{request.seq}", cat="serve", track=f"tenant:{tenant}",
                tenant=tenant, seq=request.seq, priority=request.priority,
                shadow=request.shadow,
            )
        try:
            # ---- SLOW_TENANT fault: charge extra worker time --------------
            self._maybe_slow_tenant(request)

            # ---- policy: K, order, staggers, backend ----------------------
            # load as the policy sees it: the pool pressure from
            # *everyone else* — a request alone on an idle machine is
            # the paper's free-speculation regime even though its own
            # grant may fill the pool
            others_load = max(0, self.budget.in_use - reservation.granted) / self.budget.slots
            class_kwargs = (
                {"request_class": request.request_class}
                if self._policy_takes_class
                else {}
            )
            decision = self.policy.decide(
                names, granted=reservation.granted, load=others_load,
                **class_kwargs,
            )
            if decision.k > reservation.granted and not decision.wide:
                # a policy may not outvote the budget: clamp to the grant
                # (a wide decision is the sanctioned exception — its
                # extra worlds are unbudgeted cheap tasks by contract)
                decision = SpeculationDecision(
                    order=decision.order[: reservation.granted],
                    staggers=decision.staggers[: reservation.granted],
                    backend=decision.backend,
                    reason=decision.reason,
                )
            if self._k_h is not None:
                self._k_h.observe(float(decision.k))
            wave = self._build_wave(alts, decision, reservation)
            backend = decision.backend or self.backend

            # release slots the policy decided not to use (a wide K
            # exceeds the grant; nothing is unused then)
            unused = max(0, reservation.granted - decision.k)
            if unused > 0:
                reservation.release(unused)

            # ---- run under a per-request supervisor -----------------------
            supervisor = Supervisor(
                max_retries=self.supervisor_retries,
                backoff_s=self.supervisor_backoff_s,
                fault_plan=self.fault_plan,
                block_id=request.seq,
                journal=self.journal,
                obs=self.obs,
            )
            remaining = None
            if request.deadline_s is not None:
                remaining = max(0.001, request.deadline_s - time.monotonic())
            if request.timeout is not None:
                remaining = (
                    request.timeout if remaining is None
                    else min(remaining, request.timeout)
                )
            outcome = supervisor.run(
                wave, initial=request.initial, timeout=remaining, backend=backend,
            )
            self._remap_indexes(outcome, decision)
            replayed = bool(outcome.extras.get("journal_recovered"))
            if not replayed:
                launched = [names[i] for i in decision.order]
                self.policy.observe(outcome, names, launched=launched)

            latency = time.monotonic() - request.submitted_at
            status = "committed" if outcome.winner is not None else "failed"
            result = ServeResult(
                status=status, tenant=tenant, seq=request.seq, outcome=outcome,
                reason="" if status == "committed" else "no alternative won",
                k=decision.k, policy_reason=decision.reason,
                backend=outcome.extras.get("backend", backend),
                queue_wait_s=queue_wait, latency_s=latency,
                preempted_slots=reservation.preempted, replayed=replayed,
            )
            if span_id >= 0:
                self.obs.tracer.end(
                    span_id,
                    disposition="committed" if status == "committed" else "aborted",
                    k=decision.k, policy=decision.reason, backend=result.backend,
                    status=status,
                )
                span_id = -1
            if self._latency_h is not None and status == "committed":
                self._latency_h.observe(latency)
            self._count_status(tenant, status)
            self._resolve(request, result)
        finally:
            if span_id >= 0:  # an exception escaped: settle as aborted
                self.obs.tracer.end(span_id, disposition="aborted", error="internal")
            reservation.release()

    def _maybe_slow_tenant(self, request: ServeRequest) -> None:
        plan = self.fault_plan
        if plan is None:
            return
        key = (zlib.crc32(request.tenant.encode()), request.seq)
        fault = plan.decide(SERVE_SITE, *key)
        if fault.kind is not FaultKind.SLOW_TENANT:
            return
        plan.note_injection(
            SERVE_SITE, fault.kind,
            detail=f"request {request.seq} charged {fault.param:.3f}s",
            tenant=request.tenant, seq=request.seq,
        )
        time.sleep(fault.param)

    def _build_wave(
        self,
        alts: list,
        decision: SpeculationDecision,
        reservation,
    ) -> list:
        """The K chosen alternatives, staggered and preemption-gated.

        Rank 0 (the firm slot) runs unconditionally; ranks ≥ 1 check the
        reservation at start time and fail fast if their slot was
        preempted away while they waited out their stagger — the
        cheapest faithful reading of "stop launching the worlds you
        lost" that works inside an already-running block. Wide-K ranks
        beyond the original grant never held a slot, so there is nothing
        to preempt — they skip the gate.
        """
        wave = []
        for rank, idx in enumerate(decision.order):
            alt = alts[idx]
            stagger = decision.staggers[rank] if rank < len(decision.staggers) else 0.0
            fn = alt.fn
            if rank > 0 and not (decision.wide and rank >= reservation.granted):
                fn = _preemption_gate(fn, rank, reservation)
            wave.append(
                dataclasses.replace(
                    alt, fn=fn, start_delay=alt.start_delay + stagger
                )
            )
        return wave

    @staticmethod
    def _remap_indexes(outcome: BlockOutcome, decision: SpeculationDecision) -> None:
        """Map wave-position indexes back to the caller's alternative list."""
        mapping = {rank: idx for rank, idx in enumerate(decision.order)}
        if outcome.winner is not None:
            outcome.winner.index = mapping.get(outcome.winner.index, outcome.winner.index)
        for loser in outcome.losers:
            loser.index = mapping.get(loser.index, loser.index)


def _preemption_gate(fn, rank: int, reservation):
    """Wrap an alternative body to honour slot preemption at start time."""

    def gated(workspace):
        if rank >= reservation.granted:
            raise WorldsError(
                f"world rank {rank} preempted before start "
                f"({reservation.preempted} slots reclaimed)"
            )
        return fn(workspace)

    gated.__name__ = getattr(fn, "__name__", "alternative")
    return gated
