"""``repro.serve`` — the multi-tenant speculation service.

Everything below :func:`repro.core.worlds.run_alternatives` assumes the
caller owns the machine; this package is the layer that makes that
assumption safe to drop. A :class:`SpeculationService` accepts
alternative blocks from many tenants and decides, per request, *whether*
to speculate, *how many* worlds to open, and *when* — the paper's
π-vs-ρ tradeoff (§2, Figs. 3–4) enforced at serving time:

    from repro.serve import SpeculationService, WorldBudget

    budget = WorldBudget(slots=4)           # the machine's spare capacity
    with SpeculationService(budget) as svc:
        ticket = svc.submit("tenant-a", [fast, slow], deadline_s=1.0)
        result = ticket.result()
        assert result.committed

Components (each usable standalone):

- :class:`~repro.serve.budget.WorldBudget` — global world-slot pool,
  per-tenant quotas, priority preemption of speculative slots;
- :class:`~repro.serve.admission.AdmissionQueue` — bounded depth with
  backpressure, deadline shedding, deficit-round-robin fairness;
- :class:`~repro.serve.policy.AdaptiveSpeculationPolicy` — K ≤ N and
  stagger schedules from live win-rate/latency statistics
  (:class:`~repro.serve.stats.AlternativeStats`), degrading to K=1
  sequential execution under saturation;
- :class:`~repro.serve.service.SpeculationService` — the worker pool
  tying them to the supervisor, journal, fault and telemetry planes.
"""

from repro.errors import AdmissionRejected, QuotaExceeded, ServeError, ServiceStopped
from repro.serve.admission import (
    AdmissionQueue,
    ServeRequest,
    ensure_seq_at_least,
    next_seq,
)
from repro.serve.budget import Reservation, WorldBudget
from repro.serve.policy import (
    AdaptiveSpeculationPolicy,
    FixedSpeculationPolicy,
    SpeculationDecision,
)
from repro.serve.service import (
    RestartReport,
    ServeResult,
    ServeTicket,
    SpeculationService,
)
from repro.serve.stats import AlternativeStats, AltRecord

__all__ = [
    "AdmissionQueue",
    "AdmissionRejected",
    "AdaptiveSpeculationPolicy",
    "AltRecord",
    "AlternativeStats",
    "FixedSpeculationPolicy",
    "QuotaExceeded",
    "Reservation",
    "RestartReport",
    "ServeError",
    "ServeRequest",
    "ServeResult",
    "ServeTicket",
    "ServiceStopped",
    "SpeculationDecision",
    "SpeculationService",
    "WorldBudget",
    "ensure_seq_at_least",
    "next_seq",
]
