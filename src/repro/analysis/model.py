"""The paper's section 3.2-3.3 performance algebra.

Definitions, for one input x and alternatives C_1..C_N with runtimes
``tau_i = τ(C_i, x)``:

- ``τ(C_mean, x) = (Σ τ_i) / N`` — what Scheme B (random pick) pays in
  expectation,
- ``τ(C_best, x) = min τ_i`` — what Scheme C (parallel worlds) pays, plus
  overhead,
- ``PI = τ(C_mean) / (τ(C_best) + τ(overhead))``,
- with ``R_mu = τ(C_mean)/τ(C_best)`` and ``R_o = τ(overhead)/τ(C_best)``:

      PI = (1 / (1 + R_o)) · R_mu

Parallel execution wins iff ``PI > 1``, i.e. iff ``R_mu > 1 + R_o``.
With sufficient dispersion and small overhead N processors can show
*superlinear* speedup relative to the sequential expectation: ``PI > N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np


def _as_times(times: Iterable[float]) -> np.ndarray:
    arr = np.asarray(list(times), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one alternative runtime")
    if np.any(arr < 0):
        raise ValueError("runtimes must be non-negative")
    return arr


def c_mean(times: Iterable[float]) -> float:
    """τ(C_mean, x): the arithmetic mean of the alternatives' runtimes."""
    return float(np.mean(_as_times(times)))


def c_best(times: Iterable[float]) -> float:
    """τ(C_best, x): the fastest alternative's runtime."""
    return float(np.min(_as_times(times)))


def c_worst(times: Iterable[float]) -> float:
    """τ(C_worst, x): the slowest alternative's runtime."""
    return float(np.max(_as_times(times)))


def r_mu(times: Iterable[float]) -> float:
    """R_mu = τ(C_mean)/τ(C_best): the dispersion ratio."""
    best = c_best(times)
    if best == 0:
        return math.inf
    return c_mean(times) / best


def r_o(times: Iterable[float], overhead: float) -> float:
    """R_o = τ(overhead)/τ(C_best): the normalized overhead."""
    if overhead < 0:
        raise ValueError("overhead must be non-negative")
    best = c_best(times)
    if best == 0:
        return math.inf
    return overhead / best


def pi_from_ratios(r_mu_value: float, r_o_value: float) -> float:
    """PI = (1/(1+R_o)) · R_mu — the paper's re-expression."""
    if r_o_value < 0:
        raise ValueError("R_o must be non-negative")
    return r_mu_value / (1.0 + r_o_value)


def performance_improvement(times: Iterable[float], overhead: float = 0.0) -> float:
    """PI = τ(C_mean) / (τ(C_best) + τ(overhead)) for one input."""
    arr = _as_times(times)
    denom = float(np.min(arr)) + overhead
    if denom == 0:
        return math.inf
    return float(np.mean(arr)) / denom


def parallel_wins(times: Iterable[float], overhead: float = 0.0) -> bool:
    """True iff τ(C_best) + τ(overhead) < τ(C_mean) (PI > 1)."""
    return performance_improvement(times, overhead) > 1.0


def breakeven_r_mu(r_o_value: float) -> float:
    """The dispersion at which parallel execution breaks even: 1 + R_o."""
    return 1.0 + r_o_value


def breakeven_overhead(times: Iterable[float]) -> float:
    """The largest overhead for which parallel still wins on ``times``."""
    return c_mean(times) - c_best(times)


def superlinear_condition(times: Iterable[float], overhead: float = 0.0) -> bool:
    """True when N processors beat N-fold speedup of the expectation.

    Paper section 3.3: "with sufficient variance, and small enough
    overhead, N processors can exhibit superlinear speedup by parallel
    execution of N serial algorithms" — i.e. PI > N.
    """
    arr = _as_times(times)
    return performance_improvement(arr, overhead) > arr.size


def speedup_vs_parallelized(times: Iterable[float], overhead: float = 0.0) -> float:
    """PI normalized by processor count: >1 means superlinear."""
    arr = _as_times(times)
    return performance_improvement(arr, overhead) / arr.size


@dataclass(frozen=True)
class PerformanceModel:
    """A fitted (R_mu, R_o) pair with derived quantities.

    Convenience wrapper used by the figure benches: build one from a set
    of measured runtimes plus a measured overhead, then read off the
    analytic PI and the win/lose classification.
    """

    tau_mean: float
    tau_best: float
    tau_overhead: float

    @classmethod
    def from_times(cls, times: Sequence[float], overhead: float = 0.0) -> "PerformanceModel":
        return cls(c_mean(times), c_best(times), overhead)

    @property
    def r_mu(self) -> float:
        if self.tau_best == 0:
            return math.inf
        return self.tau_mean / self.tau_best

    @property
    def r_o(self) -> float:
        if self.tau_best == 0:
            return math.inf
        return self.tau_overhead / self.tau_best

    @property
    def pi(self) -> float:
        denom = self.tau_best + self.tau_overhead
        if denom == 0:
            return math.inf
        return self.tau_mean / denom

    @property
    def wins(self) -> bool:
        return self.pi > 1.0

    def scaled(self, factor: float) -> "PerformanceModel":
        """All times scaled by ``factor`` (PI is scale-invariant)."""
        return PerformanceModel(
            self.tau_mean * factor, self.tau_best * factor, self.tau_overhead * factor
        )


def figure3_curve(
    r_mu_values: Sequence[float], r_o_value: float = 0.5
) -> list[tuple[float, float]]:
    """(R_mu, PI) pairs for the paper's Figure 3 (R_o held at 0.5)."""
    return [(rm, pi_from_ratios(rm, r_o_value)) for rm in r_mu_values]


def figure4_curve(
    r_o_values: Sequence[float], r_mu_value: float = math.e
) -> list[tuple[float, float]]:
    """(R_o, PI) pairs for the paper's Figure 4 (R_mu held at e)."""
    return [(ro, pi_from_ratios(r_mu_value, ro)) for ro in r_o_values]
