"""Copy-granularity ablation: page-based vs value-based worlds.

Paper section 5 contrasts this design with Wilson's "Alternate
Universes": "Wilson's approach is value-based (and so might be
incorporated in a language in order to exploit fine-grained parallelism)
while our scheme is page-based and hence suitable for larger-grained
parallelism; 'Multiple Worlds' interaction with the memory management
portion of an operating system trades a higher startup cost against
cheaper referencing from that point on."

This module makes that trade quantitative. For a speculative execution
characterized by an access profile, each scheme's overhead is:

- **page-based**: a page-map copy at startup plus one page copy per
  *distinct page* written; reads and repeat writes are free (hardware
  does the checking).
- **value-based**: near-zero startup, one object copy per distinct
  object written — but *every* reference (read or write) pays a software
  indirection/check, because there is no MMU doing it for free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class AccessProfile:
    """How one speculative alternative touches state."""

    objects: int  # objects in the shared state
    object_bytes: int  # average object size
    objects_written: int  # distinct objects the alternative writes
    references: int  # total reads+writes it performs

    @property
    def state_bytes(self) -> int:
        return self.objects * self.object_bytes

    def pages(self, page_size: int) -> int:
        return max(1, math.ceil(self.state_bytes / page_size))

    def pages_written(self, page_size: int) -> int:
        """Distinct pages dirtied, assuming writes cluster by object."""
        written_bytes = self.objects_written * self.object_bytes
        dirty = math.ceil(written_bytes / page_size)
        # a page can't be dirtier than the space, nor cleaner than the
        # number of objects that each straddle at least one page
        if self.object_bytes >= page_size:
            dirty = max(dirty, self.objects_written)
        return min(self.pages(page_size), max(dirty, 1 if self.objects_written else 0))


@dataclass(frozen=True)
class GranularityCosts:
    """Cost constants of the two schemes (seconds)."""

    # page-based (MMU-assisted)
    page_size: int = 2048
    pte_copy_s: float = 1.3e-4  # per page-table entry at startup
    page_copy_s: float = 3.1e-3  # per COW page copy (3B2-ish)
    # value-based (software)
    ref_check_s: float = 2.0e-6  # per reference, software indirection
    object_copy_s_per_byte: float = 1.5e-6  # copying one object
    object_copy_fixed_s: float = 5.0e-6


def page_based_overhead(profile: AccessProfile, costs: GranularityCosts = GranularityCosts()) -> float:
    """Startup page-map copy + one page copy per dirty page."""
    pages = profile.pages(costs.page_size)
    dirty = profile.pages_written(costs.page_size)
    return pages * costs.pte_copy_s + dirty * costs.page_copy_s


def value_based_overhead(profile: AccessProfile, costs: GranularityCosts = GranularityCosts()) -> float:
    """Per-reference software checks + per-object copies."""
    copies = profile.objects_written * (
        costs.object_copy_fixed_s + profile.object_bytes * costs.object_copy_s_per_byte
    )
    return profile.references * costs.ref_check_s + copies


def preferred_scheme(profile: AccessProfile, costs: GranularityCosts = GranularityCosts()) -> str:
    """Which granularity wins for this access profile."""
    return (
        "page"
        if page_based_overhead(profile, costs) <= value_based_overhead(profile, costs)
        else "value"
    )


def crossover_references(profile: AccessProfile, costs: GranularityCosts = GranularityCosts()) -> float:
    """Reference count at which page-based becomes the better scheme.

    Below it, the page scheme's fixed startup dominates and value-based
    wins (fine-grained work); above it, the per-reference software tax
    dominates and page-based wins (the paper's larger-grained domain).
    Returns ``inf`` when page-based never catches up (copy costs exceed
    any reference savings) and 0 when it always wins.
    """
    page = page_based_overhead(profile, costs)
    value_fixed = value_based_overhead(
        AccessProfile(profile.objects, profile.object_bytes,
                      profile.objects_written, references=0),
        costs,
    )
    if page <= value_fixed:
        return 0.0
    gap = page - value_fixed
    if costs.ref_check_s == 0:
        return math.inf
    return gap / costs.ref_check_s
