"""Performance analysis: the paper's section 3 algebra and calibration.

- :mod:`repro.analysis.model` — PI, R_mu, R_o relationships (sections
  3.2-3.3), including the superlinear-speedup condition.
- :mod:`repro.analysis.domain` — whole-input-domain analysis (the paper's
  extension of the single-input analysis).
- :mod:`repro.analysis.overhead` — overhead decomposition (section 3.1).
- :mod:`repro.analysis.calibration` — machine profiles with the paper's
  section 3.4 measured constants (AT&T 3B2/310, HP 9000/350, rfork link).
"""

from repro.analysis.model import (
    PerformanceModel,
    performance_improvement,
    pi_from_ratios,
    r_mu,
    r_o,
    speedup_vs_parallelized,
    superlinear_condition,
)
from repro.analysis.calibration import (
    MachineProfile,
    ATT_3B2_310,
    HP_9000_350,
    MODERN_SIM,
    RFORK_LINK,
)
from repro.analysis.domain import DomainAnalysis, DomainPoint
from repro.analysis.overhead import OverheadBreakdown
from repro.analysis.experiment import ExperimentRunner, RunSummary, speedup
from repro.analysis.granularity import (
    AccessProfile,
    GranularityCosts,
    page_based_overhead,
    preferred_scheme,
    value_based_overhead,
)

__all__ = [
    "PerformanceModel",
    "performance_improvement",
    "pi_from_ratios",
    "r_mu",
    "r_o",
    "speedup_vs_parallelized",
    "superlinear_condition",
    "MachineProfile",
    "ATT_3B2_310",
    "HP_9000_350",
    "MODERN_SIM",
    "RFORK_LINK",
    "DomainAnalysis",
    "DomainPoint",
    "OverheadBreakdown",
    "ExperimentRunner",
    "RunSummary",
    "speedup",
    "AccessProfile",
    "GranularityCosts",
    "page_based_overhead",
    "value_based_overhead",
    "preferred_scheme",
]
