"""Repeat-run experiment harness for block executions.

Wall-clock backends (fork/thread) are noisy; comparing policies or
backends honestly needs repeated runs and summary statistics. An
:class:`ExperimentRunner` executes one block specification K times per
configuration and reports mean / std / min / max response times plus win
counts per alternative — the shape the paper's Table I aggregates.
"""

from __future__ import annotations

import math
import statistics
from collections import Counter
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Sequence

from repro.errors import WorldsError

if TYPE_CHECKING:  # avoid the analysis <-> core import cycle at runtime
    from repro.core.outcome import BlockOutcome


@dataclass
class RunSummary:
    """Aggregate of K runs of one configuration."""

    label: str
    runs: int
    mean_s: float
    std_s: float
    min_s: float
    max_s: float
    failures: int
    timeouts: int
    winners: dict[str, int] = field(default_factory=dict)

    @property
    def dominant_winner(self) -> str | None:
        if not self.winners:
            return None
        return max(self.winners, key=self.winners.__getitem__)

    def as_row(self) -> tuple:
        return (
            self.label,
            self.runs,
            self.mean_s,
            self.std_s,
            self.min_s,
            self.max_s,
            self.failures,
            self.dominant_winner or "-",
        )


class ExperimentRunner:
    """Run one block specification repeatedly across configurations.

    ``make_alternatives`` builds a fresh alternatives list per run (so
    stateful closures — fault injectors, RNGs — reset deliberately, not
    accidentally); ``make_initial`` likewise builds the initial state.
    """

    def __init__(
        self,
        make_alternatives: Callable[[], Sequence[Any]],
        make_initial: Callable[[], dict] | None = None,
        repeats: int = 5,
    ) -> None:
        if repeats < 1:
            raise WorldsError("repeats must be at least 1")
        self.make_alternatives = make_alternatives
        self.make_initial = make_initial or dict
        self.repeats = repeats

    def run_once(self, **config: Any) -> "BlockOutcome":
        from repro.core.worlds import run_alternatives

        return run_alternatives(
            list(self.make_alternatives()),
            initial=self.make_initial(),
            **config,
        )

    def summarize(self, label: str, **config: Any) -> RunSummary:
        """K runs of one configuration, aggregated."""
        times: list[float] = []
        failures = timeouts = 0
        winners: Counter[str] = Counter()
        for _ in range(self.repeats):
            outcome = self.run_once(**config)
            times.append(outcome.elapsed_s)
            if outcome.timed_out:
                timeouts += 1
            if outcome.failed:
                failures += 1
            else:
                winners[outcome.winner.name] += 1
        return RunSummary(
            label=label,
            runs=self.repeats,
            mean_s=statistics.fmean(times),
            std_s=statistics.stdev(times) if len(times) > 1 else 0.0,
            min_s=min(times),
            max_s=max(times),
            failures=failures,
            timeouts=timeouts,
            winners=dict(winners),
        )

    def compare(self, configurations: dict[str, dict[str, Any]]) -> list[RunSummary]:
        """Summaries for several labelled configurations."""
        return [
            self.summarize(label, **config)
            for label, config in configurations.items()
        ]


def speedup(baseline: RunSummary, candidate: RunSummary) -> float:
    """Mean-response speedup of ``candidate`` over ``baseline``."""
    if candidate.mean_s == 0:
        return math.inf
    return baseline.mean_s / candidate.mean_s
