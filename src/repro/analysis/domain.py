"""Whole-input-domain analysis (paper section 3.3, last paragraph).

The single-input PI extends to a domain of inputs: "the different
algorithms should perform well at different and unpredictable points in
the input; the best case is where at each input where one or more
algorithms perform badly, they have at least [one] counterpart which
performs well."

:class:`DomainAnalysis` takes a runtimes matrix (inputs × algorithms) and
reports, over the whole domain:

- expected cost of Scheme B (random pick) = mean over everything,
- expected cost of the best *fixed* choice (the strongest Scheme A can do),
- expected cost of Scheme C (parallel worlds) = E[min] + overhead,
- domain PI, win fraction, and a complementarity score.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.model import performance_improvement


@dataclass(frozen=True)
class DomainPoint:
    """Per-input summary: the PI story at one point of the domain."""

    index: int
    times: tuple[float, ...]
    pi: float
    winner: int  # argmin alternative

    @property
    def wins(self) -> bool:
        return self.pi > 1.0


class DomainAnalysis:
    """Aggregate Scheme A/B/C economics over an input domain.

    Parameters
    ----------
    times:
        Matrix of runtimes, shape (n_inputs, n_algorithms).
    overhead:
        Per-input worlds overhead (scalar or per-input array).
    """

    def __init__(self, times: Sequence[Sequence[float]], overhead: float | Sequence[float] = 0.0) -> None:
        self.times = np.asarray(times, dtype=float)
        if self.times.ndim != 2 or self.times.size == 0:
            raise ValueError("times must be a non-empty (inputs × algorithms) matrix")
        if np.any(self.times < 0):
            raise ValueError("runtimes must be non-negative")
        self.overhead = np.broadcast_to(
            np.asarray(overhead, dtype=float), (self.times.shape[0],)
        ).copy()
        if np.any(self.overhead < 0):
            raise ValueError("overhead must be non-negative")

    @property
    def n_inputs(self) -> int:
        return self.times.shape[0]

    @property
    def n_algorithms(self) -> int:
        return self.times.shape[1]

    # -- per-scheme expected costs ------------------------------------------
    def scheme_b_expected(self) -> float:
        """E[τ] under a uniformly random pick per input (Scheme B)."""
        return float(self.times.mean())

    def best_fixed_algorithm(self) -> int:
        """The single algorithm with the lowest domain-wide mean (Scheme A)."""
        return int(self.times.mean(axis=0).argmin())

    def scheme_a_expected(self) -> float:
        """E[τ] when always running the best fixed algorithm."""
        return float(self.times.mean(axis=0).min())

    def scheme_c_expected(self) -> float:
        """E[τ] under parallel worlds: E[min + overhead]."""
        return float((self.times.min(axis=1) + self.overhead).mean())

    # -- domain-level indices ---------------------------------------------------
    def domain_pi(self) -> float:
        """Domain PI: Scheme B expectation over Scheme C expectation."""
        return self.scheme_b_expected() / self.scheme_c_expected()

    def pi_vs_best_fixed(self) -> float:
        """Parallel worlds against the strongest sequential policy."""
        return self.scheme_a_expected() / self.scheme_c_expected()

    def win_fraction(self) -> float:
        """Fraction of inputs where PI > 1 (parallel beats random pick)."""
        return float(np.mean([p.wins for p in self.points()]))

    def complementarity(self) -> float:
        """How well algorithms cover each other's weak inputs, in [0, 1].

        For each input: 1 - min/max over alternatives (0 when all equal).
        High mean means wherever one algorithm is slow, another is fast —
        the paper's "best case".
        """
        mins = self.times.min(axis=1)
        maxs = self.times.max(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratios = np.where(maxs > 0, 1.0 - mins / maxs, 0.0)
        return float(ratios.mean())

    def winner_histogram(self) -> np.ndarray:
        """How often each algorithm is fastest (counts per algorithm).

        A spread-out histogram is the unpredictability the paper wants; a
        point mass means a fixed choice (Scheme A) already suffices.
        """
        winners = self.times.argmin(axis=1)
        return np.bincount(winners, minlength=self.n_algorithms)

    def points(self) -> list[DomainPoint]:
        out = []
        for i in range(self.n_inputs):
            row = self.times[i]
            out.append(
                DomainPoint(
                    index=i,
                    times=tuple(row.tolist()),
                    pi=performance_improvement(row, float(self.overhead[i])),
                    winner=int(row.argmin()),
                )
            )
        return out

    def summary(self) -> dict[str, float]:
        return {
            "scheme_a_expected": self.scheme_a_expected(),
            "scheme_b_expected": self.scheme_b_expected(),
            "scheme_c_expected": self.scheme_c_expected(),
            "domain_pi": self.domain_pi(),
            "pi_vs_best_fixed": self.pi_vs_best_fixed(),
            "win_fraction": self.win_fraction(),
            "complementarity": self.complementarity(),
        }
