"""Overhead decomposition (paper sections 3.1 and 3.3).

τ(overhead) consists of:

1. **setup** — creating the "Multiple Worlds", one per alternative
   (fork/page-map copies, memory copying for remote children);
2. **runtime** — copying state that is updated (COW faults) while the
   alternatives execute;
3. **completion** — committing the winner's state changes and deleting its
   slower siblings.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class OverheadBreakdown:
    """Seconds of overhead attributed to each of the paper's three buckets."""

    setup_s: float = 0.0
    runtime_s: float = 0.0
    completion_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.setup_s + self.runtime_s + self.completion_s

    def __add__(self, other: "OverheadBreakdown") -> "OverheadBreakdown":
        return OverheadBreakdown(
            self.setup_s + other.setup_s,
            self.runtime_s + other.runtime_s,
            self.completion_s + other.completion_s,
        )

    def dominated_by(self) -> str:
        """Which bucket dominates (the paper observed copying dominates)."""
        buckets = {
            "setup": self.setup_s,
            "runtime": self.runtime_s,
            "completion": self.completion_s,
        }
        return max(buckets, key=buckets.__getitem__)

    def as_dict(self) -> dict[str, float]:
        return {
            "setup_s": self.setup_s,
            "runtime_s": self.runtime_s,
            "completion_s": self.completion_s,
            "total_s": self.total_s,
        }
