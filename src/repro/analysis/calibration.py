"""Machine profiles: cost constants for the simulation kernel.

Section 3.4 of the paper reports concrete overhead measurements on two
workstations; those constants calibrate our simulated machines so the
microbenchmarks regenerate the paper's numbers by construction:

====================  ==============  ===============
quantity              AT&T 3B2/310    HP 9000/350
====================  ==============  ===============
fork, 320K space      ~31 ms          ~12 ms
page copy service     326 × 2K /s     1034 × 4K /s
page size             2 KiB           4 KiB
====================  ==============  ===============

Sibling elimination of 16 subprocesses: ~40 ms waiting for termination
(synchronous), ~20 ms asynchronous — i.e. 2.5 ms vs 1.25 ms per child.

Remote fork: an rfork() of a 70K process takes slightly under a second of
checkpoint work, and network delays pushed the observed average execution
time to about 1.3 s.

The split of the measured fork time into a fixed part and a per-page-table
-entry part is not reported by the paper; we attribute 30% to fixed process
setup and spread the rest over the 320K address space's page-table entries.
This choice only redistributes the same total and is documented in
DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class MachineProfile:
    """Virtual-time cost constants for one simulated machine.

    All times in seconds; the kernel charges these for each operation a
    simulated process performs.
    """

    name: str
    page_size: int
    cpus: int = 1
    # process management
    fork_fixed_s: float = 0.001
    pte_copy_s: float = 1e-6  # per page-table entry copied on fork
    kill_sync_s: float = 0.0025  # per eliminated child, waiting for it
    kill_async_s: float = 0.00125  # per eliminated child, fire-and-forget
    context_switch_s: float = 1e-4
    quantum_s: float = 0.010  # timeslice for CPU sharing
    # memory
    page_copy_s: float = 0.001  # per COW page copy
    # IPC
    msg_fixed_s: float = 5e-4
    msg_per_byte_s: float = 2e-8
    # devices
    device_latency_s: float = 1e-3

    def fork_cost(self, pages: int) -> float:
        """Virtual time for alt_spawn to create one child over ``pages``."""
        return self.fork_fixed_s + self.pte_copy_s * pages

    def copy_cost(self, pages: int) -> float:
        """Virtual time to copy ``pages`` whole pages (COW faults)."""
        return self.page_copy_s * pages

    def message_cost(self, nbytes: int) -> float:
        return self.msg_fixed_s + self.msg_per_byte_s * nbytes

    def elimination_cost(self, children: int, synchronous: bool) -> float:
        per = self.kill_sync_s if synchronous else self.kill_async_s
        return per * children

    def with_cpus(self, cpus: int) -> "MachineProfile":
        return replace(self, cpus=cpus)

    def scaled(self, factor: float) -> "MachineProfile":
        """All time constants multiplied by ``factor`` (what-if analysis)."""
        return replace(
            self,
            fork_fixed_s=self.fork_fixed_s * factor,
            pte_copy_s=self.pte_copy_s * factor,
            kill_sync_s=self.kill_sync_s * factor,
            kill_async_s=self.kill_async_s * factor,
            context_switch_s=self.context_switch_s * factor,
            page_copy_s=self.page_copy_s * factor,
            msg_fixed_s=self.msg_fixed_s * factor,
            msg_per_byte_s=self.msg_per_byte_s * factor,
            device_latency_s=self.device_latency_s * factor,
        )


def _calibrated(name: str, page_size: int, fork_total_s: float,
                ref_space_bytes: int, copy_pages_per_s: float) -> MachineProfile:
    ref_pages = ref_space_bytes // page_size
    fixed = 0.30 * fork_total_s
    per_pte = (fork_total_s - fixed) / ref_pages
    return MachineProfile(
        name=name,
        page_size=page_size,
        fork_fixed_s=fixed,
        pte_copy_s=per_pte,
        page_copy_s=1.0 / copy_pages_per_s,
    )


#: AT&T 3B2/310 — fork of a 320K space ≈ 31 ms; 326 2K-pages/s copy rate.
ATT_3B2_310 = _calibrated("AT&T 3B2/310", 2048, 0.031, 320 * 1024, 326.0)

#: HP 9000/350 — fork of a 320K space ≈ 12 ms; 1034 4K-pages/s copy rate.
HP_9000_350 = _calibrated("HP 9000/350", 4096, 0.012, 320 * 1024, 1034.0)

#: A fast modern-ish machine for examples (1 µs-scale management costs).
MODERN_SIM = MachineProfile(
    name="modern-sim",
    page_size=4096,
    fork_fixed_s=5e-5,
    pte_copy_s=2e-8,
    kill_sync_s=2e-5,
    kill_async_s=1e-5,
    context_switch_s=2e-6,
    quantum_s=0.004,
    page_copy_s=2e-6,
    msg_fixed_s=1e-5,
    msg_per_byte_s=1e-10,
    device_latency_s=5e-5,
)


@dataclass(frozen=True)
class NetworkProfile:
    """Latency/bandwidth model of one link for the distributed case."""

    name: str
    latency_s: float
    bandwidth_bytes_s: float

    def transfer_time(self, nbytes: int) -> float:
        return self.latency_s + nbytes / self.bandwidth_bytes_s


#: Link calibrated so a 70K checkpoint ships in ~0.4 s on top of ~0.9 s of
#: checkpoint work, matching the paper's ~1.3 s observed rfork average.
RFORK_LINK = NetworkProfile(
    name="rfork-lan-1989", latency_s=0.050, bandwidth_bytes_s=200 * 1024
)
