"""Multiple Worlds: speculative parallel execution of alternatives.

A library-scale reproduction of Smith & Maguire, *Exploring "Multiple
Worlds" in Parallel* (ICPP 1989; Columbia TR CUCS-436-89).

Quick start::

    from repro import Alternative, run_alternatives

    def fast(ws):  ws["x"] = 1; return "fast"
    def slow(ws):  ws["x"] = 2; return "slow"

    outcome = run_alternatives(
        [Alternative(fast, sim_cost=1.0), Alternative(slow, sim_cost=5.0)],
        initial={"x": 0},
        backend="sim",          # or "fork" for real processes
    )
    assert outcome.value == "fast"
    assert outcome.extras["state"]["x"] == 1

Packages:

- :mod:`repro.core` — alternatives, guards, predicates, schemes, the
  ``run_alternatives`` entry point.
- :mod:`repro.kernel` — the deterministic simulation kernel (virtual
  time, COW worlds, predicated messages, world splitting).
- :mod:`repro.memory` — pages, COW page tables, heaps, the single-level
  store.
- :mod:`repro.ipc` / :mod:`repro.devices` — predicated messaging and the
  sink/source device model.
- :mod:`repro.runtime` — the real ``os.fork`` backend and
  checkpoint/restart.
- :mod:`repro.distrib` — simulated links, remote fork, migration.
- :mod:`repro.analysis` — the paper's PI/R_mu/R_o performance algebra and
  machine calibrations.
- :mod:`repro.apps` — recovery blocks, OR-parallel Prolog, polyalgorithms
  and the Jenkins-Traub parallel rootfinder.
- :mod:`repro.faults` — deterministic fault injection (``FaultPlan``) and
  supervised execution (``Supervisor``: retry spares, watchdog
  escalation, backend degradation).
- :mod:`repro.journal` — the crash-consistent commit journal
  (``CommitJournal``), exactly-once source gate (``SourceGate``) and
  idempotent recovery (``recover``).
"""

from repro.core import (
    AltBlock,
    Alternative,
    AlternativeResult,
    BlockOutcome,
    EliminationPolicy,
    FAILURE,
    Guard,
    PredicateSet,
    first_of,
    run_alternatives,
    run_alternatives_sim,
)
from repro.kernel import Kernel
from repro.faults import FaultKind, FaultPlan, Supervisor, run_supervised
from repro.journal import CommitJournal, SourceGate, recover
from repro.analysis import (
    ATT_3B2_310,
    HP_9000_350,
    MODERN_SIM,
    MachineProfile,
    PerformanceModel,
    performance_improvement,
)

__version__ = "0.1.0"

__all__ = [
    "Alternative",
    "AltBlock",
    "AlternativeResult",
    "BlockOutcome",
    "EliminationPolicy",
    "FAILURE",
    "Guard",
    "PredicateSet",
    "Kernel",
    "run_alternatives",
    "run_alternatives_sim",
    "run_supervised",
    "first_of",
    "FaultKind",
    "FaultPlan",
    "Supervisor",
    "CommitJournal",
    "SourceGate",
    "recover",
    "MachineProfile",
    "PerformanceModel",
    "performance_improvement",
    "ATT_3B2_310",
    "HP_9000_350",
    "MODERN_SIM",
    "__version__",
]
