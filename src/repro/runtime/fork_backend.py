"""Multiple Worlds on real processes: ``os.fork`` + pipes + signals.

Each alternative runs in a forked child against a workspace dict the child
inherits through the host kernel's genuine copy-on-write. The first child
whose guard accepts its result wins the rendezvous: the parent absorbs the
child's workspace (shipped back through a pipe), and the slower siblings
are eliminated — synchronously (kill + wait before returning) or
asynchronously (kill now, reap later), reproducing the paper's section
2.2.1 policy choice with real signals.

The protocol is deliberately simple and robust:

- each child gets its own pipe; it writes one length-prefixed pickle
  ``("ok", value, workspace)`` or ``("fail", reason)`` and ``_exit``\\ s;
- the parent multiplexes across pipes with :mod:`selectors` (epoll/kqueue
  where available, so blocks with hundreds of alternatives don't hit
  ``select``'s ``FD_SETSIZE`` wall), retrying on ``EINTR``, until a
  success, every child has failed, or the block times out;
- a child that dies without reporting (crash, OOM-kill) counts as failed,
  and a truncated report is diagnosed as such;
- with a :class:`~repro.core.policy.WatchdogPolicy`, a child that blows
  its per-alternative soft deadline is escalated SIGTERM → grace →
  SIGKILL instead of hanging the block until the global timeout;
- kill signals are *verified*: a child that survives its first SIGKILL
  (or whose signal the fault plane deliberately "loses") is re-signalled
  until reaped, so no zombie outlives the block.

Deterministic fault injection (:class:`~repro.faults.plan.FaultPlan`) is
threaded through every stage: child crash/hang/slow-start/corrupt-report
faults fire inside :func:`_child_main`, spawn failures surface as
:class:`~repro.errors.SpawnError` (so a supervisor can degrade backends),
and kill-signal loss exercises the verified-reap path.
"""

from __future__ import annotations

import errno
import os
import pickle
import selectors
import signal
import struct
import time
from typing import Any, Sequence

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative, GuardPlacement
from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.core.policy import EliminationPolicy, WatchdogPolicy
from repro.core.worlds import _normalize
from repro.errors import SpawnError, WorldsError
from repro.faults.plan import CHILD_SITE, KILL_SITE, SPAWN_SITE, FaultDecision, FaultKind

_HEADER = struct.Struct("<Q")

#: Bounded patience for verified reaping before we give up on a zombie.
_REAP_TIMEOUT_S = 2.0
_REAP_POLL_S = 0.005


def _picklable(value: Any) -> bool:
    try:
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False


def _encode_report(payload: tuple) -> bytes:
    """Pickle a report; sanitize the workspace if it won't serialize.

    Workspaces may contain unpicklable helpers (lambdas, open handles)
    that the child inherited through fork. Those entries cannot travel
    back through the pipe; they are dropped and listed under the
    ``_unpicklable`` key rather than failing the whole alternative.
    """
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        pass
    if payload[0] == "ok":
        _, value, workspace = payload
        if not _picklable(value):
            return pickle.dumps(
                ("fail", f"result of type {type(value).__name__} is not picklable"),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        dropped = sorted(k for k, v in workspace.items() if not _picklable(v))
        safe = {k: v for k, v in workspace.items() if k not in dropped}
        safe["_unpicklable"] = dropped
        return pickle.dumps(("ok", value, safe), protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.dumps(
        ("fail", "unserializable failure report"), protocol=pickle.HIGHEST_PROTOCOL
    )


def _write_report(fd: int, payload: tuple) -> None:
    blob = _encode_report(payload)
    os.write(fd, _HEADER.pack(len(blob)))
    # large payloads may need several writes
    view = memoryview(blob)
    while view:
        written = os.write(fd, view)
        view = view[written:]


class _ChildReader:
    """Incremental reader of one child's length-prefixed report."""

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self.buffer = bytearray()
        self.expected: int | None = None
        self.eof = False

    @property
    def truncated(self) -> bool:
        """EOF arrived mid-report (header or body incomplete)."""
        return self.eof and (self.expected is not None or bool(self.buffer))

    def pump(self) -> tuple | None:
        """Read available bytes; return the report once complete."""
        try:
            chunk = os.read(self.fd, 1 << 16)
        except OSError as exc:  # pragma: no cover - platform dependent
            if exc.errno == errno.EAGAIN:
                return None
            raise
        if not chunk:
            self.eof = True
            return None
        self.buffer.extend(chunk)
        if self.expected is None and len(self.buffer) >= _HEADER.size:
            (self.expected,) = _HEADER.unpack(bytes(self.buffer[: _HEADER.size]))
            del self.buffer[: _HEADER.size]
        if self.expected is not None and len(self.buffer) >= self.expected:
            try:
                return pickle.loads(bytes(self.buffer[: self.expected]))
            except Exception as exc:
                return ("fail", f"unpicklable report: {exc!r}")
        return None


def _child_main(
    alt: Alternative,
    workspace: dict,
    write_fd: int,
    fault: FaultDecision | None = None,
) -> None:
    """Runs in the forked child; never returns.

    ``fault`` is this child's verdict from the block's fault plan,
    computed (deterministically) before the fork. Faults fire at the
    stage they model: CRASH/HANG/SLOW_START before any work,
    GUARD_EXCEPTION in place of the entry guard, TRUNCATE/CORRUPT at
    report time — after the real result was computed, which is exactly
    when a real pipe write would break.
    """
    try:
        if alt.start_delay > 0:
            time.sleep(alt.start_delay)
        if fault is not None and fault.fires:
            if fault.kind is FaultKind.CRASH:
                os._exit(13)
            if fault.kind is FaultKind.HANG:
                time.sleep(fault.param)
                os._exit(11)
            if fault.kind is FaultKind.SLOW_START:
                time.sleep(fault.param)
            if fault.kind is FaultKind.GUARD_EXCEPTION:
                _write_report(
                    write_fd,
                    ("fail", f"guard {alt.guard.name!r} raised (injected exception)"),
                )
                os._exit(0)
        if not alt.guard.passes_entry(workspace):
            _write_report(write_fd, ("fail", f"guard {alt.guard.name!r} rejected entry"))
            os._exit(0)
        value = alt.fn(workspace)
        if not alt.guard.passes_result(workspace, value):
            _write_report(write_fd, ("fail", f"guard {alt.guard.name!r} rejected result"))
            os._exit(0)
        if fault is not None and fault.kind is FaultKind.TRUNCATE_REPORT:
            blob = _encode_report(("ok", value, workspace))
            os.write(write_fd, _HEADER.pack(len(blob)))
            os.write(write_fd, blob[: len(blob) // 2])
            os._exit(12)
        if fault is not None and fault.kind is FaultKind.CORRUPT_REPORT:
            blob = _encode_report(("ok", value, workspace))
            garbage = (b"\xde\xad\xbe\xef" * (len(blob) // 4 + 1))[: len(blob)]
            os.write(write_fd, _HEADER.pack(len(blob)))
            view = memoryview(garbage)
            while view:
                view = view[os.write(write_fd, view) :]
            os._exit(12)
        _write_report(write_fd, ("ok", value, workspace))
    except BaseException as exc:  # noqa: BLE001 - report anything
        try:
            _write_report(write_fd, ("fail", f"alternative raised {exc!r}"))
        except BaseException:
            pass
    finally:
        os._exit(0)


def _reap_verified(pids: Sequence[int], timeout_s: float = _REAP_TIMEOUT_S) -> list[int]:
    """Reap ``pids``, re-signalling survivors; return unreaped stragglers.

    SIGKILL is not optional, but a signal can be lost (the fault plane
    simulates exactly that, and a PID in an uninterruptible kernel sleep
    can genuinely linger), so death is verified with ``WNOHANG`` polls
    and the kill resent until the child is actually gone.
    """
    remaining = set(pids)
    deadline = time.perf_counter() + timeout_s
    while remaining:
        for pid in list(remaining):
            try:
                done, _ = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                remaining.discard(pid)
                continue
            if done:
                remaining.discard(pid)
        if not remaining or time.perf_counter() >= deadline:
            break
        for pid in remaining:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        time.sleep(_REAP_POLL_S)
    return sorted(remaining)


def _terminate_children(
    procs: Sequence[tuple[int, int, str]],
    wait: bool,
    grace_s: float = 0.0,
    send=None,
) -> tuple[float, list[dict]]:
    """Eliminate ``procs`` (``(pid, index, name)``); return (elapsed, events).

    With ``grace_s == 0`` this is the classic straight-SIGKILL
    elimination. With a positive grace every child first receives
    SIGTERM and gets ``grace_s`` seconds to exit on its own terms before
    SIGKILL — the same escalation ladder the in-block watchdog uses.
    ``send`` lets the caller interpose signal delivery (fault injection);
    it returns False when the signal was "lost".
    """
    t0 = time.perf_counter()
    events: list[dict] = []
    if send is None:
        def send(pid, index, sig):  # noqa: ANN001 - local default
            try:
                os.kill(pid, sig)
            except ProcessLookupError:
                pass
            return True

    survivors = list(procs)
    if grace_s > 0 and survivors:
        for pid, index, name in survivors:
            delivered = send(pid, index, signal.SIGTERM)
            events.append(
                {"index": index, "name": name, "action": "sigterm" if delivered else "signal-lost",
                 "at_s": time.perf_counter() - t0, "grace_s": grace_s}
            )
        grace_deadline = time.perf_counter() + grace_s
        while survivors and time.perf_counter() < grace_deadline:
            still = []
            for pid, index, name in survivors:
                try:
                    done, _ = os.waitpid(pid, os.WNOHANG)
                except ChildProcessError:
                    done = pid
                if not done:
                    still.append((pid, index, name))
            survivors = still
            if survivors:
                time.sleep(_REAP_POLL_S)
    for pid, index, name in survivors:
        delivered = send(pid, index, signal.SIGKILL)
        events.append(
            {"index": index, "name": name, "action": "sigkill" if delivered else "signal-lost",
             "at_s": time.perf_counter() - t0, "grace_s": grace_s}
        )
    if wait:
        _reap_verified([pid for pid, _, _ in survivors])
    return time.perf_counter() - t0, events


def run_alternatives_fork(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    fault_plan=None,
    block_id: int = 0,
    attempt: int = 0,
    watchdog: WatchdogPolicy | None = None,
    elim_grace_s: float = 0.0,
    journal=None,
    obs=None,
) -> BlockOutcome:
    """Execute a block of alternatives as real forked processes.

    ``alternatives`` must be plain callables of a dict workspace (or
    :class:`Alternative` objects wrapping them); generator programs are a
    simulation-backend concept. Returns a
    :class:`~repro.core.outcome.BlockOutcome` whose times are wall clock.

    ``fault_plan``/``block_id``/``attempt`` drive deterministic fault
    injection (see :mod:`repro.faults.plan`); ``watchdog`` enables
    per-alternative SIGTERM→SIGKILL hang escalation; ``elim_grace_s``
    applies the same escalation to post-winner sibling elimination
    (0 keeps the paper's immediate destruction).

    Raises :class:`~repro.errors.SpawnError` when the worlds cannot be
    created at all (real fork failure or an injected ``EAGAIN``); any
    children already spawned are destroyed first.
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        raise WorldsError("fork backend requires a POSIX platform")
    alts = _normalize(alternatives)
    workspace: dict[str, Any] = dict(initial or {})

    # -- fault bookkeeping -------------------------------------------------
    injected: list[dict] = []
    lost_checked: set[int] = set()

    def _send_signal(pid: int, index: int, sig: int) -> bool:
        """Deliver a signal unless the plan loses this child's first one."""
        if fault_plan is not None and pid not in lost_checked:
            lost_checked.add(pid)
            if fault_plan.decide(KILL_SITE, block_id, index, attempt).fires:
                fault_plan.note_injection(
                    KILL_SITE, "kill-fail", block_id=block_id,
                    index=index, attempt=attempt, backend="fork",
                )
                return False
        try:
            os.kill(pid, sig)
        except ProcessLookupError:
            pass
        return True

    t_start = time.perf_counter()
    children: dict[int, tuple[int, Alternative, _ChildReader]] = {}  # pid -> (index, alt, reader)
    skipped: list[AlternativeResult] = []
    for index, alt in enumerate(alts):
        if alt.guard.placement & GuardPlacement.BEFORE_SPAWN and alt.guard.check is not None:
            try:
                ok = alt.guard.passes_entry(workspace)
            except Exception:
                ok = False
            if not ok:
                skipped.append(
                    AlternativeResult(
                        index=index, name=alt.name, guard_failed=True,
                        error="guard rejected before spawn",
                    )
                )
                continue
        child_fault = None
        if fault_plan is not None:
            if fault_plan.decide(SPAWN_SITE, block_id, index, attempt).fires:
                spawn_exc = BlockingIOError(errno.EAGAIN, "injected: resource temporarily unavailable")
                _abort_spawn(children)
                fault_plan.note_injection(
                    SPAWN_SITE, "spawn-fail", block_id=block_id,
                    index=index, attempt=attempt, backend="fork",
                )
                raise SpawnError(
                    f"spawning alternative {alt.name!r} failed: {spawn_exc}"
                ) from spawn_exc
            child_fault = fault_plan.decide(CHILD_SITE, block_id, index, attempt)
            if child_fault.fires:
                injected.append({"index": index, "name": alt.name, "kind": child_fault.kind.value})
                fault_plan.note_injection(
                    CHILD_SITE, child_fault.kind, block_id=block_id,
                    index=index, attempt=attempt, backend="fork",
                )
        try:
            read_fd, write_fd = os.pipe()
            pid = os.fork()
        except OSError as exc:  # pragma: no cover - needs real EAGAIN
            _abort_spawn(children)
            raise SpawnError(f"spawning alternative {alt.name!r} failed: {exc}") from exc
        if pid == 0:
            # child: alt_spawn returned our index (1-based in the paper)
            os.close(read_fd)
            for other_pid, (_, _, reader) in children.items():
                try:
                    os.close(reader.fd)
                except OSError:
                    pass
            _child_main(alt, workspace, write_fd, child_fault)
            os._exit(0)  # pragma: no cover - _child_main never returns
        os.close(write_fd)
        os.set_blocking(read_fd, False)
        children[pid] = (index, alt, _ChildReader(read_fd))
    t_spawned = time.perf_counter()

    winner: AlternativeResult | None = None
    winner_ws: dict | None = None
    losers: list[AlternativeResult] = list(skipped)
    timed_out = False
    deadline = None if timeout is None else t_start + timeout

    # -- watchdog state ----------------------------------------------------
    watchdog_events: list[dict] = []
    soft_deadlines: dict[int, float] = {}
    term_at: dict[int, float] = {}   # pid -> when SIGTERM went out
    killed: set[int] = set()         # pid -> SIGKILL sent, awaiting EOF
    if watchdog is not None:
        for pid, (index, alt, _) in children.items():
            soft_deadlines[pid] = t_spawned + watchdog.deadline_for(alt.start_delay)

    pending = dict(children)
    sel = selectors.DefaultSelector()
    for pid, (_, _, reader) in pending.items():
        sel.register(reader.fd, selectors.EVENT_READ, pid)

    def _retire(pid: int, reader: _ChildReader) -> None:
        """Stop listening to a settled child and reap it."""
        sel.unregister(reader.fd)
        os.close(reader.fd)
        del pending[pid]
        _reap_verified([pid])

    try:
        while pending and winner is None:
            now = time.perf_counter()
            if deadline is not None and now >= deadline:
                timed_out = True
                break
            # watchdog escalation pass: SIGTERM at the soft deadline,
            # SIGKILL once the grace period expires without an exit
            if watchdog is not None:
                for pid in list(pending):
                    if pid in killed:
                        continue
                    index, alt, _ = pending[pid]
                    if pid in term_at:
                        if now >= term_at[pid] + watchdog.term_grace_s:
                            delivered = _send_signal(pid, index, signal.SIGKILL)
                            killed.add(pid)
                            watchdog_events.append({
                                "index": index, "name": alt.name,
                                "action": "sigkill" if delivered else "signal-lost",
                                "at_s": now - t_start,
                                "grace_s": now - term_at[pid],
                            })
                    elif now >= soft_deadlines[pid]:
                        delivered = _send_signal(pid, index, signal.SIGTERM)
                        term_at[pid] = now
                        watchdog_events.append({
                            "index": index, "name": alt.name,
                            "action": "sigterm" if delivered else "signal-lost",
                            "at_s": now - t_start,
                            "grace_s": watchdog.term_grace_s,
                        })
            # earliest future obligation bounds the poll
            wakeups = []
            if deadline is not None:
                wakeups.append(deadline)
            if watchdog is not None:
                for pid in pending:
                    if pid in killed:
                        # SIGKILL'd children die on their own schedule; the
                        # verified reap below is the backstop, not the poll
                        wakeups.append(time.perf_counter() + 5 * _REAP_POLL_S)
                    elif pid in term_at:
                        wakeups.append(term_at[pid] + watchdog.term_grace_s)
                    else:
                        wakeups.append(soft_deadlines[pid])
            wait_s = None
            if wakeups:
                wait_s = max(0.0, min(wakeups) - time.perf_counter())
            try:
                events = sel.select(wait_s)
            except InterruptedError:  # EINTR: PEP 475 retries for us, but be explicit
                continue
            if not events:
                continue  # deadline / watchdog action re-checked at loop top
            now = time.perf_counter()
            for key, _mask in events:
                pid = key.data
                if pid not in pending:
                    continue
                index, alt, reader = pending[pid]
                report = reader.pump()
                if report is None:
                    if reader.eof:
                        if pid in term_at or pid in killed:
                            error = "killed by watchdog (soft deadline exceeded)"
                        elif reader.truncated:
                            error = "truncated report (child died mid-write)"
                        else:
                            error = "child died without reporting"
                        losers.append(
                            AlternativeResult(
                                index=index, name=alt.name, error=error,
                                elapsed_s=now - t_spawned,
                            )
                        )
                        _retire(pid, reader)
                    continue
                if report[0] == "ok":
                    value, child_ws = report[1], report[2]
                    accepted = True
                    if alt.guard.placement & GuardPlacement.AT_SYNC and alt.guard.accept is not None:
                        try:
                            accepted = bool(alt.guard.passes_result(child_ws, value))
                        except Exception:
                            accepted = False
                    if accepted:
                        winner = AlternativeResult(
                            index=index, name=alt.name, value=value,
                            succeeded=True, elapsed_s=now - t_spawned,
                        )
                        winner_ws = child_ws
                        if journal is not None:
                            from repro.journal import record_block_win

                            record_block_win(journal, block_id, attempt, winner)
                        _retire(pid, reader)
                        break
                    losers.append(
                        AlternativeResult(
                            index=index, name=alt.name, guard_failed=True,
                            error="guard rejected result at sync",
                            elapsed_s=now - t_spawned,
                        )
                    )
                else:
                    losers.append(
                        AlternativeResult(
                            index=index, name=alt.name, error=str(report[1]),
                            guard_failed="guard" in str(report[1]),
                            elapsed_s=now - t_spawned,
                        )
                    )
                _retire(pid, reader)
    finally:
        # eliminate whatever is still running
        leftover_pids = list(pending)
        elim_seconds = 0.0
        elim_events: list[dict] = []
        if leftover_pids:
            for _, _, reader in pending.values():
                try:
                    sel.unregister(reader.fd)
                except (KeyError, ValueError):
                    pass
                try:
                    os.close(reader.fd)
                except OSError:
                    pass
            synchronous = elimination is EliminationPolicy.SYNCHRONOUS
            elim_seconds, elim_events = _terminate_children(
                [(pid, pending[pid][0], pending[pid][1].name) for pid in leftover_pids],
                wait=synchronous,
                grace_s=elim_grace_s,
                send=_send_signal,
            )
        sel.close()

    t_resume = time.perf_counter()
    # a leftover child killed after a winner synchronized was *eliminated*;
    # only a block that expired with no winner timeout-kills its children
    leftover_error = "eliminated" if winner is not None else (
        "timeout-killed" if timed_out else "eliminated"
    )
    for pid in leftover_pids:
        losers.append(
            AlternativeResult(
                index=children[pid][0], name=children[pid][1].name,
                error=leftover_error,
                elapsed_s=t_resume - t_spawned,
            )
        )
    overhead = OverheadBreakdown(
        setup_s=t_spawned - t_start,
        completion_s=elim_seconds,
    )
    outcome = BlockOutcome(
        winner=winner,
        elapsed_s=t_resume - t_start,
        overhead=overhead,
        timed_out=timed_out and winner is None,
        losers=sorted(losers, key=lambda r: r.index),
    )
    if winner_ws is not None:
        outcome.extras["state"] = winner_ws
    outcome.extras["elimination_policy"] = elimination.value
    outcome.extras["eliminated"] = len(leftover_pids)
    if watchdog_events or elim_events:
        outcome.extras["watchdog"] = watchdog_events + elim_events
        outcome.extras["watchdog_grace_s"] = sum(
            e["grace_s"] for e in watchdog_events if e["action"] == "sigkill"
        )
    if injected:
        outcome.extras["injected_faults"] = injected
    if elimination is EliminationPolicy.ASYNCHRONOUS and leftover_pids:
        zombies = _reap_verified(leftover_pids)
        if zombies:  # pragma: no cover - requires a truly unkillable child
            outcome.extras["zombies"] = zombies
    if obs is not None:
        from repro.obs.integrate import record_block

        record_block(
            obs, backend="fork", block_id=block_id, attempt=attempt,
            t_start=t_start, outcome=outcome,
        )
    return outcome


def _abort_spawn(children: dict[int, tuple[int, Alternative, _ChildReader]]) -> None:
    """Destroy children already forked when later spawning fails."""
    for pid, (_, _, reader) in children.items():
        try:
            os.close(reader.fd)
        except OSError:
            pass
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    _reap_verified(list(children))
