"""Multiple Worlds on real processes: ``os.fork`` + pipes + SIGKILL.

Each alternative runs in a forked child against a workspace dict the child
inherits through the host kernel's genuine copy-on-write. The first child
whose guard accepts its result wins the rendezvous: the parent absorbs the
child's workspace (shipped back through a pipe), and the slower siblings
are eliminated — synchronously (kill + wait before returning) or
asynchronously (kill now, reap later), reproducing the paper's section
2.2.1 policy choice with real signals.

The protocol is deliberately simple and robust:

- each child gets its own pipe; it writes one length-prefixed pickle
  ``("ok", value, workspace)`` or ``("fail", reason)`` and ``_exit``\\ s;
- the parent ``select``\\ s across pipes until a success, every child has
  failed, or the block times out;
- a child that dies without reporting (crash, OOM-kill) counts as failed.
"""

from __future__ import annotations

import errno
import os
import pickle
import select
import signal
import struct
import time
from typing import Any, Sequence

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative, GuardPlacement
from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.core.policy import EliminationPolicy
from repro.core.worlds import _normalize
from repro.errors import WorldsError

_HEADER = struct.Struct("<Q")


def _picklable(value: Any) -> bool:
    try:
        pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        return True
    except Exception:
        return False


def _encode_report(payload: tuple) -> bytes:
    """Pickle a report; sanitize the workspace if it won't serialize.

    Workspaces may contain unpicklable helpers (lambdas, open handles)
    that the child inherited through fork. Those entries cannot travel
    back through the pipe; they are dropped and listed under the
    ``_unpicklable`` key rather than failing the whole alternative.
    """
    try:
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        pass
    if payload[0] == "ok":
        _, value, workspace = payload
        if not _picklable(value):
            return pickle.dumps(
                ("fail", f"result of type {type(value).__name__} is not picklable"),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        dropped = sorted(k for k, v in workspace.items() if not _picklable(v))
        safe = {k: v for k, v in workspace.items() if k not in dropped}
        safe["_unpicklable"] = dropped
        return pickle.dumps(("ok", value, safe), protocol=pickle.HIGHEST_PROTOCOL)
    return pickle.dumps(
        ("fail", "unserializable failure report"), protocol=pickle.HIGHEST_PROTOCOL
    )


def _write_report(fd: int, payload: tuple) -> None:
    blob = _encode_report(payload)
    os.write(fd, _HEADER.pack(len(blob)))
    # large payloads may need several writes
    view = memoryview(blob)
    while view:
        written = os.write(fd, view)
        view = view[written:]


class _ChildReader:
    """Incremental reader of one child's length-prefixed report."""

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self.buffer = bytearray()
        self.expected: int | None = None
        self.eof = False

    def pump(self) -> tuple | None:
        """Read available bytes; return the report once complete."""
        try:
            chunk = os.read(self.fd, 1 << 16)
        except OSError as exc:  # pragma: no cover - platform dependent
            if exc.errno == errno.EAGAIN:
                return None
            raise
        if not chunk:
            self.eof = True
            return None
        self.buffer.extend(chunk)
        if self.expected is None and len(self.buffer) >= _HEADER.size:
            (self.expected,) = _HEADER.unpack(bytes(self.buffer[: _HEADER.size]))
            del self.buffer[: _HEADER.size]
        if self.expected is not None and len(self.buffer) >= self.expected:
            try:
                return pickle.loads(bytes(self.buffer[: self.expected]))
            except Exception as exc:
                return ("fail", f"unpicklable report: {exc!r}")
        return None


def _child_main(alt: Alternative, workspace: dict, write_fd: int) -> None:
    """Runs in the forked child; never returns."""
    try:
        if alt.start_delay > 0:
            time.sleep(alt.start_delay)
        if not alt.guard.passes_entry(workspace):
            _write_report(write_fd, ("fail", f"guard {alt.guard.name!r} rejected entry"))
            os._exit(0)
        value = alt.fn(workspace)
        if not alt.guard.passes_result(workspace, value):
            _write_report(write_fd, ("fail", f"guard {alt.guard.name!r} rejected result"))
            os._exit(0)
        _write_report(write_fd, ("ok", value, workspace))
    except BaseException as exc:  # noqa: BLE001 - report anything
        try:
            _write_report(write_fd, ("fail", f"alternative raised {exc!r}"))
        except BaseException:
            pass
    finally:
        os._exit(0)


def _kill_children(pids: list[int], wait: bool) -> float:
    """SIGKILL ``pids``; optionally wait for them. Returns elapsed seconds."""
    t0 = time.perf_counter()
    for pid in pids:
        try:
            os.kill(pid, signal.SIGKILL)
        except ProcessLookupError:
            pass
    if wait:
        for pid in pids:
            try:
                os.waitpid(pid, 0)
            except ChildProcessError:
                pass
    return time.perf_counter() - t0


def _reap_async(pids: list[int]) -> None:
    """Best-effort zombie reaping after asynchronous elimination."""
    for pid in pids:
        try:
            os.waitpid(pid, 0)
        except ChildProcessError:
            pass


def run_alternatives_fork(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
) -> BlockOutcome:
    """Execute a block of alternatives as real forked processes.

    ``alternatives`` must be plain callables of a dict workspace (or
    :class:`Alternative` objects wrapping them); generator programs are a
    simulation-backend concept. Returns a
    :class:`~repro.core.outcome.BlockOutcome` whose times are wall clock.
    """
    if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
        raise WorldsError("fork backend requires a POSIX platform")
    alts = _normalize(alternatives)
    workspace: dict[str, Any] = dict(initial or {})

    t_start = time.perf_counter()
    children: dict[int, tuple[int, Alternative, _ChildReader]] = {}  # pid -> (index, alt, reader)
    skipped: list[AlternativeResult] = []
    for index, alt in enumerate(alts):
        if alt.guard.placement & GuardPlacement.BEFORE_SPAWN and alt.guard.check is not None:
            try:
                ok = alt.guard.passes_entry(workspace)
            except Exception:
                ok = False
            if not ok:
                skipped.append(
                    AlternativeResult(
                        index=index, name=alt.name, guard_failed=True,
                        error="guard rejected before spawn",
                    )
                )
                continue
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            # child: alt_spawn returned our index (1-based in the paper)
            os.close(read_fd)
            for other_pid, (_, _, reader) in children.items():
                try:
                    os.close(reader.fd)
                except OSError:
                    pass
            _child_main(alt, workspace, write_fd)
            os._exit(0)  # pragma: no cover - _child_main never returns
        os.close(write_fd)
        os.set_blocking(read_fd, False)
        children[pid] = (index, alt, _ChildReader(read_fd))
    t_spawned = time.perf_counter()

    winner: AlternativeResult | None = None
    winner_ws: dict | None = None
    losers: list[AlternativeResult] = list(skipped)
    timed_out = False
    deadline = None if timeout is None else t_start + timeout

    pending = dict(children)
    try:
        while pending and winner is None:
            wait_s = None
            if deadline is not None:
                wait_s = deadline - time.perf_counter()
                if wait_s <= 0:
                    timed_out = True
                    break
            fds = [reader.fd for _, _, reader in pending.values()]
            readable, _, _ = select.select(fds, [], [], wait_s)
            if not readable:
                timed_out = True
                break
            now = time.perf_counter()
            for fd in readable:
                pid = next(p for p, (_, _, r) in pending.items() if r.fd == fd)
                index, alt, reader = pending[pid]
                report = reader.pump()
                if report is None:
                    if reader.eof:
                        losers.append(
                            AlternativeResult(
                                index=index, name=alt.name,
                                error="child died without reporting",
                                elapsed_s=now - t_spawned,
                            )
                        )
                        os.close(reader.fd)
                        del pending[pid]
                        try:
                            os.waitpid(pid, 0)
                        except ChildProcessError:
                            pass
                    continue
                if report[0] == "ok":
                    value, child_ws = report[1], report[2]
                    accepted = True
                    if alt.guard.placement & GuardPlacement.AT_SYNC and alt.guard.accept is not None:
                        try:
                            accepted = bool(alt.guard.passes_result(child_ws, value))
                        except Exception:
                            accepted = False
                    if accepted:
                        winner = AlternativeResult(
                            index=index, name=alt.name, value=value,
                            succeeded=True, elapsed_s=now - t_spawned,
                        )
                        winner_ws = child_ws
                        os.close(reader.fd)
                        try:
                            os.waitpid(pid, 0)
                        except ChildProcessError:
                            pass
                        del pending[pid]
                        break
                    losers.append(
                        AlternativeResult(
                            index=index, name=alt.name, guard_failed=True,
                            error="guard rejected result at sync",
                            elapsed_s=now - t_spawned,
                        )
                    )
                else:
                    losers.append(
                        AlternativeResult(
                            index=index, name=alt.name, error=str(report[1]),
                            guard_failed="guard" in str(report[1]),
                            elapsed_s=now - t_spawned,
                        )
                    )
                os.close(reader.fd)
                del pending[pid]
                try:
                    os.waitpid(pid, 0)
                except ChildProcessError:
                    pass
    finally:
        # eliminate whatever is still running
        leftover_pids = list(pending)
        elim_seconds = 0.0
        if leftover_pids:
            for _, _, reader in pending.values():
                try:
                    os.close(reader.fd)
                except OSError:
                    pass
            synchronous = elimination is EliminationPolicy.SYNCHRONOUS
            elim_seconds = _kill_children(leftover_pids, wait=synchronous)

    t_resume = time.perf_counter()
    for pid in leftover_pids:
        losers.append(
            AlternativeResult(
                index=children[pid][0], name=children[pid][1].name,
                error="eliminated" if not timed_out else "timeout-killed",
            )
        )
    overhead = OverheadBreakdown(
        setup_s=t_spawned - t_start,
        completion_s=elim_seconds,
    )
    outcome = BlockOutcome(
        winner=winner,
        elapsed_s=t_resume - t_start,
        overhead=overhead,
        timed_out=timed_out and winner is None,
        losers=sorted(losers, key=lambda r: r.index),
    )
    if winner_ws is not None:
        outcome.extras["state"] = winner_ws
    outcome.extras["elimination_policy"] = elimination.value
    outcome.extras["eliminated"] = len(leftover_pids)
    if elimination is EliminationPolicy.ASYNCHRONOUS and leftover_pids:
        _reap_async(leftover_pids)
    return outcome
