"""Thread-based Multiple Worlds (an approximation, and a useful baseline).

Threads cannot be killed, so "elimination" here only means the block stops
listening: losers run to completion in daemon threads and their results
are discarded. Each alternative gets a deep copy of the workspace, so the
isolation semantics match the other backends; what differs is throughput
(losers keep burning CPU) and the GIL's serialization of pure-Python work.
The backend exists (a) for platforms without ``fork`` and (b) as the
"can't eliminate siblings" ablation point in the benchmarks.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from typing import Any, Sequence

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative, GuardPlacement
from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.core.worlds import _normalize


def _worker(index: int, alt: Alternative, workspace: dict, out: "queue.Queue") -> None:
    if alt.start_delay > 0:
        time.sleep(alt.start_delay)
    t0 = time.perf_counter()
    try:
        if not alt.guard.passes_entry(workspace):
            out.put((index, "fail", f"guard {alt.guard.name!r} rejected entry", None, t0))
            return
        value = alt.fn(workspace)
        if not alt.guard.passes_result(workspace, value):
            out.put((index, "fail", f"guard {alt.guard.name!r} rejected result", None, t0))
            return
        out.put((index, "ok", value, workspace, t0))
    except BaseException as exc:  # noqa: BLE001
        out.put((index, "fail", f"alternative raised {exc!r}", None, t0))


def run_alternatives_thread(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    **_ignored: Any,
) -> BlockOutcome:
    """Execute a block of plain-callable alternatives on threads."""
    alts = _normalize(alternatives)
    base = dict(initial or {})
    reports: "queue.Queue" = queue.Queue()

    t_start = time.perf_counter()
    started = 0
    skipped: list[AlternativeResult] = []
    for index, alt in enumerate(alts):
        if alt.guard.placement & GuardPlacement.BEFORE_SPAWN and alt.guard.check is not None:
            try:
                ok = alt.guard.passes_entry(base)
            except Exception:
                ok = False
            if not ok:
                skipped.append(
                    AlternativeResult(
                        index=index, name=alt.name, guard_failed=True,
                        error="guard rejected before spawn",
                    )
                )
                continue
        workspace = copy.deepcopy(base)
        thread = threading.Thread(
            target=_worker, args=(index, alt, workspace, reports), daemon=True
        )
        thread.start()
        started += 1
    t_spawned = time.perf_counter()

    winner: AlternativeResult | None = None
    winner_ws: dict | None = None
    losers: list[AlternativeResult] = list(skipped)
    timed_out = False
    deadline = None if timeout is None else t_start + timeout
    remaining = started
    while remaining > 0 and winner is None:
        wait_s = None
        if deadline is not None:
            wait_s = deadline - time.perf_counter()
            if wait_s <= 0:
                timed_out = True
                break
        try:
            index, status, payload, workspace, t0 = reports.get(timeout=wait_s)
        except queue.Empty:
            timed_out = True
            break
        remaining -= 1
        elapsed = time.perf_counter() - t0
        alt = alts[index]
        if status == "ok":
            winner = AlternativeResult(
                index=index, name=alt.name, value=payload,
                succeeded=True, elapsed_s=elapsed,
            )
            winner_ws = workspace
        else:
            losers.append(
                AlternativeResult(
                    index=index, name=alt.name, error=str(payload),
                    guard_failed="guard" in str(payload), elapsed_s=elapsed,
                )
            )

    outcome = BlockOutcome(
        winner=winner,
        elapsed_s=time.perf_counter() - t_start,
        overhead=OverheadBreakdown(setup_s=t_spawned - t_start),
        timed_out=timed_out and winner is None,
        losers=sorted(losers, key=lambda r: r.index),
    )
    if winner_ws is not None:
        outcome.extras["state"] = winner_ws
    outcome.extras["uncollected"] = remaining if winner else 0
    return outcome
