"""Thread-based Multiple Worlds (an approximation, and a useful baseline).

Threads cannot be killed, so elimination is *cooperative*: when a winner
commits, the block sets a shared :class:`CancelToken` (visible to every
alternative as ``workspace["_cancel"]``) and stops listening; a
well-behaved long-running alternative polls ``token.cancelled`` and
returns early, while an oblivious one runs to completion in a daemon
thread with its result discarded. The ``elimination`` policy maps onto
this the only way it can:

- ``ASYNCHRONOUS`` (default) — the paper's semantics, faithfully: the
  parent resumes immediately; losers die "at some unspecified later
  time" (here: whenever they next check the token, or at interpreter
  exit).
- ``SYNCHRONOUS`` — the parent joins the remaining threads before
  returning, so no loser is still executing when the block completes.
  Because cancellation is cooperative, this blocks for as long as the
  slowest non-cooperating loser keeps running — the honest price of
  synchronous elimination without kill.

Each alternative gets a deep copy of the workspace, so the isolation
semantics match the other backends; what differs is throughput (losers
keep burning CPU until they notice cancellation) and the GIL's
serialization of pure-Python work. The backend exists (a) for platforms
without ``fork``, (b) as the "can't eliminate siblings" ablation point
in the benchmarks, and (c) as the middle rung of the supervisor's
degradation chain.

Deterministic fault injection mirrors the fork backend where the faults
make sense in-process: CRASH and the report-corruption kinds surface as
raised exceptions, HANG parks the worker (daemon thread, so it cannot
wedge interpreter exit), SLOW_START sleeps, GUARD_EXCEPTION fails the
guard, and SPAWN_FAIL raises :class:`~repro.errors.SpawnError` so a
supervisor can degrade to sequential execution.
"""

from __future__ import annotations

import copy
import queue
import threading
import time
from typing import Any, Sequence

from repro.analysis.overhead import OverheadBreakdown
from repro.core.alternative import Alternative
from repro.core.backend import BlockRun
from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.core.policy import EliminationPolicy
from repro.errors import SpawnError
from repro.faults.plan import FaultDecision, FaultKind


class CancelToken:
    """Cooperative elimination signal, shared by a block's alternatives.

    Injected into every workspace as ``workspace["_cancel"]``; a
    long-running alternative that wants to honour elimination polls
    :attr:`cancelled` and returns early (its result is discarded
    anyway). The token is stripped from the winning workspace before it
    is surfaced in ``extras["state"]``.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CancelToken(cancelled={self.cancelled})"


def _worker(
    index: int,
    alt: Alternative,
    workspace: dict,
    out: "queue.Queue",
    fault: FaultDecision | None = None,
) -> None:
    if alt.start_delay > 0:
        time.sleep(alt.start_delay)
    t0 = time.perf_counter()
    try:
        if fault is not None and fault.fires:
            if fault.kind is FaultKind.HANG:
                time.sleep(fault.param)
                out.put((index, "fail", "injected hang elapsed", None, t0))
                return
            if fault.kind is FaultKind.SLOW_START:
                time.sleep(fault.param)
            elif fault.kind is FaultKind.GUARD_EXCEPTION:
                out.put(
                    (index, "fail", f"guard {alt.guard.name!r} raised (injected exception)", None, t0)
                )
                return
            elif fault.kind is not FaultKind.SLOW_START:
                # CRASH / TRUNCATE / CORRUPT: in-process, all mean the
                # worker dies before a usable report exists
                raise RuntimeError(f"injected {fault.kind.value}")
        if not alt.guard.passes_entry(workspace):
            out.put((index, "fail", f"guard {alt.guard.name!r} rejected entry", None, t0))
            return
        value = alt.fn(workspace)
        if not alt.guard.passes_result(workspace, value):
            out.put((index, "fail", f"guard {alt.guard.name!r} rejected result", None, t0))
            return
        out.put((index, "ok", value, workspace, t0))
    except BaseException as exc:  # noqa: BLE001
        out.put((index, "fail", f"alternative raised {exc!r}", None, t0))


def run_alternatives_thread(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
    fault_plan=None,
    block_id: int = 0,
    attempt: int = 0,
    journal=None,
    obs=None,
    **_ignored: Any,
) -> BlockOutcome:
    """Execute a block of plain-callable alternatives on threads.

    See the module docstring for the cooperative-cancellation semantics
    of ``elimination``. Raises :class:`~repro.errors.SpawnError` on an
    injected spawn failure (already-started siblings are cancelled and
    abandoned as daemons). Block bookkeeping — guard prechecks, fault
    decisions, winner journaling, loser labels, the telemetry record —
    is the shared :class:`~repro.core.backend.BlockRun` surface; only
    the thread mechanics live here.
    """
    run = BlockRun(
        "thread", alternatives, initial, fault_plan=fault_plan,
        block_id=block_id, attempt=attempt, journal=journal, obs=obs,
    )
    reports: "queue.Queue" = queue.Queue()
    token = CancelToken()

    threads: list[threading.Thread] = []
    for index, alt in enumerate(run.alts):
        if not run.precheck_guard(index, alt):
            continue
        run.spawn_fault(
            index, alt, on_abort=token.cancel,
            detail="injected thread-start failure",
        )
        fault = run.child_fault(index, alt)
        workspace = copy.deepcopy(run.base)
        workspace["_cancel"] = token
        try:
            thread = threading.Thread(
                target=_worker, args=(index, alt, workspace, reports, fault), daemon=True
            )
            thread.start()
        except RuntimeError as exc:  # pragma: no cover - needs thread exhaustion
            token.cancel()
            raise SpawnError(f"spawning alternative {alt.name!r} failed: {exc}") from exc
        threads.append(thread)
    started = len(threads)
    t_spawned = time.perf_counter()

    deadline = None if timeout is None else run.t_start + timeout
    remaining = started
    while remaining > 0 and run.winner is None:
        wait_s = None
        if deadline is not None:
            wait_s = deadline - time.perf_counter()
            if wait_s <= 0:
                run.timed_out = True
                break
        try:
            index, status, payload, workspace, t0 = reports.get(timeout=wait_s)
        except queue.Empty:
            run.timed_out = True
            break
        remaining -= 1
        elapsed = time.perf_counter() - t0
        if status == "ok":
            workspace.pop("_cancel", None)
            run.accept(index, payload, workspace, elapsed_s=elapsed)
        else:
            run.reject(index, str(payload), elapsed_s=elapsed)

    token.cancel()  # cooperative elimination: losers see this on next poll
    if elimination is EliminationPolicy.SYNCHRONOUS:
        # no loser may still be executing when the parent resumes; with
        # cooperative cancellation this means joining them out
        for thread in threads:
            join_s = None
            if deadline is not None:
                join_s = max(0.0, deadline + 5.0 - time.perf_counter())
            thread.join(timeout=join_s)
        remaining = sum(1 for t in threads if t.is_alive())

    return run.finish(
        overhead=OverheadBreakdown(setup_s=t_spawned - run.t_start),
        extras={
            "uncollected": remaining if run.winner else 0,
            "elimination_policy": elimination.value,
        },
    )
