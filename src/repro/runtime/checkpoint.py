"""Checkpoint/restart: the substrate of the paper's remote fork.

Smith & Ioannidis [19] implemented ``rfork()`` without kernel changes by
dumping the process into a file "in such a way that the file is
executable; a bootstrapping routine restores the registers and data
segments and returns control to the caller of the checkpoint routine when
this file is executed. A return value is used to distinguish between
return of control in the checkpoint and in the calling process."

The Python equivalent checkpoints a *task* — a top-level callable plus its
workspace state — into one self-contained byte image. Restarting the
image re-enters the callable with the saved state; the setjmp-style
return-value convention is preserved by :func:`checkpoint_here`.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
import zlib
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import CheckpointError

#: Legacy wire format: magic + <Qd>(name_len, created_at) + name + payload.
_MAGIC_V1 = b"MWCKPT1\n"
#: Current wire format adds a CRC32 over name + payload so a corrupt or
#: torn image is rejected *before* anything reaches ``pickle.loads``:
#: magic + <QdI>(name_len, created_at, crc) + name + payload.
_MAGIC = b"MWCKPT2\n"


@dataclass
class CheckpointImage:
    """A self-contained, restartable process image."""

    name: str
    payload: bytes  # pickled (fn, state)
    created_at: float

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    # -- construction ------------------------------------------------------
    @classmethod
    def capture(cls, fn: Callable[[dict], Any], state: dict, name: str = "task") -> "CheckpointImage":
        """Serialize ``fn`` + ``state`` into an image.

        ``fn`` must be picklable (an importable top-level function); the
        state must be a picklable dict. Raises
        :class:`~repro.errors.CheckpointError` otherwise.
        """
        try:
            payload = pickle.dumps((fn, state), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(f"cannot checkpoint {name!r}: {exc}") from exc
        return cls(name=name, payload=payload, created_at=time.time())

    # -- the "executable file" format -------------------------------------------
    def to_bytes(self) -> bytes:
        header = self.name.encode()
        # the CRC must cover every mutable field, created_at included — an
        # uncovered header byte is a hole a corrupt delivery slips through
        crc = zlib.crc32(
            struct.pack("<Qd", len(header), self.created_at) + header + self.payload
        )
        return (
            _MAGIC
            + struct.pack("<QdI", len(header), self.created_at, crc)
            + header
            + self.payload
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CheckpointImage":
        """Parse a wire image, verifying structure and checksum.

        Accepts the current (v2, CRC-verified) and legacy (v1, unverified)
        formats. Every malformation — bad magic, truncated header, a
        ``name_len`` pointing past the blob, a checksum mismatch from a
        flipped byte or a torn tail — raises
        :class:`~repro.errors.CheckpointError` without touching the
        (pickled, therefore dangerous) payload.
        """
        if blob.startswith(_MAGIC):
            head_fmt, verified = "<QdI", True
            offset = len(_MAGIC)
        elif blob.startswith(_MAGIC_V1):
            head_fmt, verified = "<Qd", False
            offset = len(_MAGIC_V1)
        else:
            raise CheckpointError("not a checkpoint image (bad magic)")
        head_size = struct.calcsize(head_fmt)
        if len(blob) < offset + head_size:
            raise CheckpointError(
                f"truncated checkpoint header: {len(blob)} bytes, "
                f"need at least {offset + head_size}"
            )
        try:
            fields = struct.unpack_from(head_fmt, blob, offset)
        except struct.error as exc:  # pragma: no cover - length checked above
            raise CheckpointError(f"unreadable checkpoint header: {exc}") from exc
        name_len, created_at = fields[0], fields[1]
        offset += head_size
        if name_len > len(blob) - offset:
            raise CheckpointError(
                f"corrupt checkpoint header: name_len={name_len} exceeds "
                f"remaining {len(blob) - offset} bytes"
            )
        body = blob[offset:]
        if verified:
            crc = fields[2]
            actual = zlib.crc32(struct.pack("<Qd", name_len, created_at) + body)
            if actual != crc:
                raise CheckpointError(
                    f"checkpoint checksum mismatch: header says {crc:#010x}, "
                    f"body is {actual:#010x} (corrupt or torn image)"
                )
        try:
            name = body[:name_len].decode()
        except UnicodeDecodeError as exc:
            raise CheckpointError(f"corrupt checkpoint name: {exc}") from exc
        return cls(name=name, payload=bytes(body[name_len:]), created_at=created_at)

    def write_file(self, path: str) -> int:
        blob = self.to_bytes()
        with open(path, "wb") as fh:
            fh.write(blob)
        return len(blob)

    @classmethod
    def read_file(cls, path: str) -> "CheckpointImage":
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())

    # -- restart --------------------------------------------------------------------
    def load(self) -> tuple[Callable[[dict], Any], dict]:
        """The (fn, state) pair the bootstrap reconstructs."""
        try:
            fn, state = pickle.loads(self.payload)
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint {self.name!r}: {exc}") from exc
        return fn, state

    def restart(self) -> Any:
        """Resume the task in this process; returns its result."""
        fn, state = self.load()
        return fn(state)

    def restart_in_fork(self, journal=None) -> Any:
        """Resume the task in a forked child (local remote-execution).

        The child runs the continuation and ships the result back through
        a pipe — the degenerate (same-host) case of the paper's rfork.

        With a ``journal`` (a :class:`~repro.journal.CommitJournal`) the
        restart is exactly-once per image: completed restarts are sealed
        as ``restart`` transactions keyed by (name, payload CRC), and a
        repeat call — e.g. after a crash between the child finishing and
        the caller consuming the value — replays the recorded result
        instead of running the task again.
        """
        if journal is not None:
            crc = zlib.crc32(self.payload)
            hit = journal.find_applied("restart", name=self.name, crc=crc)
            if hit is not None and "value" in hit[1]:
                return hit[1]["value"]
            seq = journal.begin("restart", name=self.name, crc=crc)
            journal.seal(seq)
            value = self._restart_in_fork()
            journal.mark_applied(seq, value=value)
            return value
        return self._restart_in_fork()

    def _restart_in_fork(self) -> Any:
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return self.restart()
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            try:
                result = ("ok", self.restart())
            except BaseException as exc:  # noqa: BLE001
                result = ("err", repr(exc))
            try:
                blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                os.write(write_fd, struct.pack("<Q", len(blob)))
                view = memoryview(blob)
                while view:
                    written = os.write(write_fd, view)
                    view = view[written:]
            finally:
                os._exit(0)
        os.close(write_fd)
        try:
            header = b""
            while len(header) < 8:
                piece = os.read(read_fd, 8 - len(header))
                if not piece:
                    break
                header += piece
            if len(header) < 8:
                raise CheckpointError(
                    f"restart pipe broke mid-header: got {len(header)} of 8 "
                    "bytes (child died before reporting)"
                )
            (length,) = struct.unpack("<Q", header)
            chunks = []
            remaining = length
            while remaining > 0:
                chunk = os.read(read_fd, min(remaining, 1 << 16))
                if not chunk:
                    raise CheckpointError(
                        f"restart pipe broke mid-report: {length - remaining} "
                        f"of {length} bytes arrived"
                    )
                chunks.append(chunk)
                remaining -= len(chunk)
        finally:
            os.close(read_fd)
            os.waitpid(pid, 0)
        try:
            status, value = pickle.loads(b"".join(chunks))
        except Exception as exc:
            raise CheckpointError(f"unreadable restart report: {exc}") from exc
        if status == "err":
            raise CheckpointError(f"restarted task failed: {value}")
        return value


def capture_checkpoint(fn: Callable[[dict], Any], state: dict, name: str = "task") -> CheckpointImage:
    """Module-level convenience for :meth:`CheckpointImage.capture`."""
    return CheckpointImage.capture(fn, state, name)


def checkpoint_here(fn: Callable[[dict], Any], state: dict, name: str = "task"):
    """The paper's return-value convention, as a pair.

    Returns ``(image, is_restart)``: the caller that *created* the
    checkpoint sees ``is_restart=False``; running ``image.restart()``
    re-enters ``fn`` (the restart path) instead. This mirrors "a return
    value is used to distinguish between return of control in the
    checkpoint and in the calling process."
    """
    return CheckpointImage.capture(fn, state, name), False
