"""Checkpoint/restart: the substrate of the paper's remote fork.

Smith & Ioannidis [19] implemented ``rfork()`` without kernel changes by
dumping the process into a file "in such a way that the file is
executable; a bootstrapping routine restores the registers and data
segments and returns control to the caller of the checkpoint routine when
this file is executed. A return value is used to distinguish between
return of control in the checkpoint and in the calling process."

The Python equivalent checkpoints a *task* — a top-level callable plus its
workspace state — into one self-contained byte image. Restarting the
image re-enters the callable with the saved state; the setjmp-style
return-value convention is preserved by :func:`checkpoint_here`.
"""

from __future__ import annotations

import os
import pickle
import struct
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import CheckpointError

_MAGIC = b"MWCKPT1\n"


@dataclass
class CheckpointImage:
    """A self-contained, restartable process image."""

    name: str
    payload: bytes  # pickled (fn, state)
    created_at: float

    @property
    def size_bytes(self) -> int:
        return len(self.payload)

    # -- construction ------------------------------------------------------
    @classmethod
    def capture(cls, fn: Callable[[dict], Any], state: dict, name: str = "task") -> "CheckpointImage":
        """Serialize ``fn`` + ``state`` into an image.

        ``fn`` must be picklable (an importable top-level function); the
        state must be a picklable dict. Raises
        :class:`~repro.errors.CheckpointError` otherwise.
        """
        try:
            payload = pickle.dumps((fn, state), protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(f"cannot checkpoint {name!r}: {exc}") from exc
        return cls(name=name, payload=payload, created_at=time.time())

    # -- the "executable file" format -------------------------------------------
    def to_bytes(self) -> bytes:
        header = self.name.encode()
        return (
            _MAGIC
            + struct.pack("<Qd", len(header), self.created_at)
            + header
            + self.payload
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CheckpointImage":
        if not blob.startswith(_MAGIC):
            raise CheckpointError("not a checkpoint image (bad magic)")
        offset = len(_MAGIC)
        name_len, created_at = struct.unpack_from("<Qd", blob, offset)
        offset += struct.calcsize("<Qd")
        name = blob[offset : offset + name_len].decode()
        payload = blob[offset + name_len :]
        return cls(name=name, payload=bytes(payload), created_at=created_at)

    def write_file(self, path: str) -> int:
        blob = self.to_bytes()
        with open(path, "wb") as fh:
            fh.write(blob)
        return len(blob)

    @classmethod
    def read_file(cls, path: str) -> "CheckpointImage":
        with open(path, "rb") as fh:
            return cls.from_bytes(fh.read())

    # -- restart --------------------------------------------------------------------
    def load(self) -> tuple[Callable[[dict], Any], dict]:
        """The (fn, state) pair the bootstrap reconstructs."""
        try:
            fn, state = pickle.loads(self.payload)
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint {self.name!r}: {exc}") from exc
        return fn, state

    def restart(self) -> Any:
        """Resume the task in this process; returns its result."""
        fn, state = self.load()
        return fn(state)

    def restart_in_fork(self) -> Any:
        """Resume the task in a forked child (local remote-execution).

        The child runs the continuation and ships the result back through
        a pipe — the degenerate (same-host) case of the paper's rfork.
        """
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            return self.restart()
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            try:
                result = ("ok", self.restart())
            except BaseException as exc:  # noqa: BLE001
                result = ("err", repr(exc))
            try:
                blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
                os.write(write_fd, struct.pack("<Q", len(blob)))
                view = memoryview(blob)
                while view:
                    written = os.write(write_fd, view)
                    view = view[written:]
            finally:
                os._exit(0)
        os.close(write_fd)
        chunks = []
        header = os.read(read_fd, 8)
        (length,) = struct.unpack("<Q", header)
        remaining = length
        while remaining > 0:
            chunk = os.read(read_fd, min(remaining, 1 << 16))
            if not chunk:
                break
            chunks.append(chunk)
            remaining -= len(chunk)
        os.close(read_fd)
        os.waitpid(pid, 0)
        status, value = pickle.loads(b"".join(chunks))
        if status == "err":
            raise CheckpointError(f"restarted task failed: {value}")
        return value


def capture_checkpoint(fn: Callable[[dict], Any], state: dict, name: str = "task") -> CheckpointImage:
    """Module-level convenience for :meth:`CheckpointImage.capture`."""
    return CheckpointImage.capture(fn, state, name)


def checkpoint_here(fn: Callable[[dict], Any], state: dict, name: str = "task"):
    """The paper's return-value convention, as a pair.

    Returns ``(image, is_restart)``: the caller that *created* the
    checkpoint sees ``is_restart=False``; running ``image.restart()``
    re-enters ``fn`` (the restart path) instead. This mirrors "a return
    value is used to distinguish between return of control in the
    checkpoint and in the calling process."
    """
    return CheckpointImage.capture(fn, state, name), False
