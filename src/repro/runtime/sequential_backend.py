"""Degenerate Multiple Worlds: one alternative at a time, in-process.

The last rung of the supervisor's degradation ladder (``fork -> thread
-> sequential``): when even thread creation fails, the block's semantics
can still be honoured by classic standby-spares execution — try each
alternative in order against a fresh deep copy of the workspace, commit
the first whose guard accepts. Response time degrades to the sum of the
failed prefix (exactly the sequential cost the paper's parallel
execution eliminates) but the observable result remains one a
sequential execution could have produced, which is the only semantic
contract the block makes.

No worlds are spawned, so spawn faults cannot fire here; child-site
faults still apply (a crash is a crash wherever the code runs) — except
HANG, which is recorded as a failure instead of executed, since hanging
the only thread of control would deadlock the degraded block.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Sequence

from repro.core.backend import BlockRun
from repro.core.outcome import BlockOutcome
from repro.faults.plan import FaultKind


def run_alternatives_sequential(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    fault_plan=None,
    block_id: int = 0,
    attempt: int = 0,
    journal=None,
    obs=None,
    **_ignored: Any,
) -> BlockOutcome:
    """Try alternatives in order; first guard-accepted result wins.

    Block bookkeeping — fault decisions, winner journaling, loser
    labels, the telemetry record — is the shared
    :class:`~repro.core.backend.BlockRun` surface; only the in-order
    execution loop lives here.
    """
    run = BlockRun(
        "sequential", alternatives, initial, fault_plan=fault_plan,
        block_id=block_id, attempt=attempt, journal=journal, obs=obs,
    )
    deadline = None if timeout is None else run.t_start + timeout

    # BEFORE_SPAWN guards are parent-side decisions on every backend: a
    # rejected alternative is a recorded loser even if an earlier one
    # wins before the in-order loop would have reached it.
    runnable = [
        (index, alt)
        for index, alt in enumerate(run.alts)
        if run.precheck_guard(index, alt)
    ]

    for index, alt in runnable:
        if deadline is not None and time.perf_counter() >= deadline:
            run.timed_out = True
            run.reject(
                index, "timeout-killed",
                elapsed_s=time.perf_counter() - run.t_start,
            )
            continue
        fault = run.child_fault(index, alt)
        t0 = time.perf_counter()
        if fault is not None and fault.fires:
            if fault.kind is FaultKind.SLOW_START:
                time.sleep(fault.param)
            elif fault.kind is FaultKind.HANG:
                run.reject(
                    index,
                    "injected hang (skipped: sequential execution cannot hang)",
                )
                continue
            elif fault.kind is FaultKind.GUARD_EXCEPTION:
                run.reject(
                    index,
                    f"guard {alt.guard.name!r} raised (injected exception)",
                    guard_failed=True,
                )
                continue
            else:  # CRASH / TRUNCATE / CORRUPT all mean "no result arrived"
                run.reject(index, f"injected {fault.kind.value}")
                continue
        workspace = copy.deepcopy(run.base)
        try:
            if not alt.guard.passes_entry(workspace):
                run.reject(
                    index, f"guard {alt.guard.name!r} rejected entry",
                    guard_failed=True, elapsed_s=time.perf_counter() - t0,
                )
                continue
            value = alt.fn(workspace)
            if not alt.guard.passes_result(workspace, value):
                run.reject(
                    index, f"guard {alt.guard.name!r} rejected result",
                    guard_failed=True, elapsed_s=time.perf_counter() - t0,
                )
                continue
        except BaseException as exc:  # noqa: BLE001 - any failure is a loser
            run.reject(
                index, f"alternative raised {exc!r}",
                guard_failed=False, elapsed_s=time.perf_counter() - t0,
            )
            continue
        run.accept(index, value, workspace, elapsed_s=time.perf_counter() - t0)
        break

    return run.finish(extras={"sequential": True})
