"""Degenerate Multiple Worlds: one alternative at a time, in-process.

The last rung of the supervisor's degradation ladder (``fork -> thread
-> sequential``): when even thread creation fails, the block's semantics
can still be honoured by classic standby-spares execution — try each
alternative in order against a fresh deep copy of the workspace, commit
the first whose guard accepts. Response time degrades to the sum of the
failed prefix (exactly the sequential cost the paper's parallel
execution eliminates) but the observable result remains one a
sequential execution could have produced, which is the only semantic
contract the block makes.

No worlds are spawned, so spawn faults cannot fire here; child-site
faults still apply (a crash is a crash wherever the code runs) — except
HANG, which is recorded as a failure instead of executed, since hanging
the only thread of control would deadlock the degraded block.
"""

from __future__ import annotations

import copy
import time
from typing import Any, Sequence

from repro.analysis.overhead import OverheadBreakdown
from repro.core.outcome import AlternativeResult, BlockOutcome
from repro.core.worlds import _normalize
from repro.faults.plan import CHILD_SITE, FaultKind


def run_alternatives_sequential(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    fault_plan=None,
    block_id: int = 0,
    attempt: int = 0,
    journal=None,
    obs=None,
    **_ignored: Any,
) -> BlockOutcome:
    """Try alternatives in order; first guard-accepted result wins."""
    alts = _normalize(alternatives)
    base = dict(initial or {})

    t_start = time.perf_counter()
    deadline = None if timeout is None else t_start + timeout
    winner: AlternativeResult | None = None
    winner_ws: dict | None = None
    losers: list[AlternativeResult] = []
    timed_out = False
    injected: list[dict] = []

    for index, alt in enumerate(alts):
        if deadline is not None and time.perf_counter() >= deadline:
            timed_out = True
            losers.append(
                AlternativeResult(
                    index=index, name=alt.name, error="timeout-killed",
                    elapsed_s=time.perf_counter() - t_start,
                )
            )
            continue
        fault = None
        if fault_plan is not None:
            fault = fault_plan.decide(CHILD_SITE, block_id, index, attempt)
            if fault.fires:
                injected.append({"index": index, "name": alt.name, "kind": fault.kind.value})
                fault_plan.note_injection(
                    CHILD_SITE, fault.kind, block_id=block_id,
                    index=index, attempt=attempt, backend="sequential",
                )
        t0 = time.perf_counter()
        if fault is not None and fault.fires:
            if fault.kind is FaultKind.SLOW_START:
                time.sleep(fault.param)
            elif fault.kind is FaultKind.HANG:
                losers.append(
                    AlternativeResult(
                        index=index, name=alt.name,
                        error="injected hang (skipped: sequential execution cannot hang)",
                    )
                )
                continue
            elif fault.kind is FaultKind.GUARD_EXCEPTION:
                losers.append(
                    AlternativeResult(
                        index=index, name=alt.name, guard_failed=True,
                        error=f"guard {alt.guard.name!r} raised (injected exception)",
                    )
                )
                continue
            else:  # CRASH / TRUNCATE / CORRUPT all mean "no result arrived"
                losers.append(
                    AlternativeResult(
                        index=index, name=alt.name,
                        error=f"injected {fault.kind.value}",
                    )
                )
                continue
        workspace = copy.deepcopy(base)
        try:
            if not alt.guard.passes_entry(workspace):
                losers.append(
                    AlternativeResult(
                        index=index, name=alt.name, guard_failed=True,
                        error=f"guard {alt.guard.name!r} rejected entry",
                        elapsed_s=time.perf_counter() - t0,
                    )
                )
                continue
            value = alt.fn(workspace)
            if not alt.guard.passes_result(workspace, value):
                losers.append(
                    AlternativeResult(
                        index=index, name=alt.name, guard_failed=True,
                        error=f"guard {alt.guard.name!r} rejected result",
                        elapsed_s=time.perf_counter() - t0,
                    )
                )
                continue
        except BaseException as exc:  # noqa: BLE001 - any failure is a loser
            losers.append(
                AlternativeResult(
                    index=index, name=alt.name,
                    error=f"alternative raised {exc!r}",
                    elapsed_s=time.perf_counter() - t0,
                )
            )
            continue
        winner = AlternativeResult(
            index=index, name=alt.name, value=value, succeeded=True,
            elapsed_s=time.perf_counter() - t0,
        )
        winner_ws = workspace
        if journal is not None:
            from repro.journal import record_block_win

            record_block_win(journal, block_id, attempt, winner)
        break

    outcome = BlockOutcome(
        winner=winner,
        elapsed_s=time.perf_counter() - t_start,
        overhead=OverheadBreakdown(),
        timed_out=timed_out and winner is None,
        losers=sorted(losers, key=lambda r: r.index),
    )
    if winner_ws is not None:
        outcome.extras["state"] = winner_ws
    if injected:
        outcome.extras["injected_faults"] = injected
    outcome.extras["sequential"] = True
    if obs is not None:
        from repro.obs.integrate import record_block

        record_block(
            obs, backend="sequential", block_id=block_id, attempt=attempt,
            t_start=t_start, outcome=outcome,
        )
    return outcome
