"""Real-OS execution backends.

- :mod:`repro.runtime.fork_backend` — ``os.fork`` worlds with genuine
  kernel copy-on-write, pipe-based synchronization, and SIGKILL sibling
  elimination (sync or async). This is the backend behind the Table I
  reproduction: real wall-clock times on real CPUs.
- :mod:`repro.runtime.thread_backend` — a thread-pool approximation for
  platforms without ``fork`` (losers cannot be killed, only ignored).
- :mod:`repro.runtime.checkpoint` — self-contained restartable process
  images (the paper's rfork-by-checkpoint, Smith & Ioannidis [19]).
"""

import os

from repro.runtime.thread_backend import run_alternatives_thread
from repro.runtime.checkpoint import CheckpointImage, capture_checkpoint

HAS_FORK = hasattr(os, "fork")

if HAS_FORK:
    from repro.runtime.fork_backend import run_alternatives_fork

    __all__ = [
        "run_alternatives_fork",
        "run_alternatives_thread",
        "CheckpointImage",
        "capture_checkpoint",
        "HAS_FORK",
    ]
else:  # pragma: no cover - non-POSIX fallback
    __all__ = [
        "run_alternatives_thread",
        "CheckpointImage",
        "capture_checkpoint",
        "HAS_FORK",
    ]
