"""Predicated interprocess communication (paper section 2.4).

Messages are the *only* way one process affects another (section 2.1).
Every message carries three parts: a sending predicate, the data, and
control information. Channels are reliable and FIFO.

- :mod:`repro.ipc.message` — the three-part message structure.
- :mod:`repro.ipc.mailbox` — per-process reliable FIFO queues.
- :mod:`repro.ipc.router` — the accept / ignore / split receive rule,
  as pure decision functions consumed by the kernel.
"""

from repro.ipc.message import Message
from repro.ipc.mailbox import Mailbox
from repro.ipc.router import ReceiveAction, decide_receive

__all__ = ["Message", "Mailbox", "ReceiveAction", "decide_receive"]
