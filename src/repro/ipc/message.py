"""The three-part message of paper section 2.4.1.

1. a *sending predicate* — the assumptions under which the sender sends;
2. the *data* comprising the message contents;
3. *control information* — sender id, destination id, a unique message id
   and the virtual send time.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Any

from repro.core.predicates import PredicateSet


@dataclass(frozen=True)
class Message:
    """One immutable message in flight or queued at a receiver.

    ``sender`` is the sending process's logical pid; ``sender_world`` is
    the specific world (speculative version) that performed the send —
    the identity a split receiver's ``complete(sender)`` assumption must
    bind to.
    """

    sender: int
    dest: int
    data: Any
    predicate: PredicateSet = field(default_factory=PredicateSet)
    msg_id: int = 0
    sent_at: float = 0.0
    sender_world: int = 0

    def size_bytes(self) -> int:
        """Approximate wire size (pickled payload), for transfer costing."""
        try:
            return len(pickle.dumps(self.data, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception:
            return 64  # unpicklable payloads get a nominal size

    def resolve(self, pid: int, completed: bool) -> "Message | None":
        """Update the carried predicate after ``complete(pid)`` resolves.

        Returns ``None`` when the message's assumptions are now false —
        the queued message must be discarded (its sender's world died).
        """
        new_pred = self.predicate.resolve(pid, completed)
        if new_pred is None:
            return None
        if new_pred is self.predicate:
            return self
        return Message(
            sender=self.sender,
            dest=self.dest,
            data=self.data,
            predicate=new_pred,
            msg_id=self.msg_id,
            sent_at=self.sent_at,
            sender_world=self.sender_world,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message(#{self.msg_id} {self.sender}->{self.dest}, "
            f"pred={self.predicate})"
        )
