"""Reliable FIFO mailboxes.

Paper section 2.1 assumes IPC "behaves reliably (no lost or duplicated
messages) and FIFO (no out of order messages)". A :class:`Mailbox` is the
per-process receive queue; reliability is by construction and FIFO order
is preserved across predicate-driven discards.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Iterator

from repro.ipc.message import Message


class Mailbox:
    """FIFO queue of messages pending at one receiver."""

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._queue: deque[Message] = deque()

    def __len__(self) -> int:
        return len(self._queue)

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __iter__(self) -> Iterator[Message]:
        return iter(self._queue)

    def deliver(self, message: Message) -> None:
        """Append an arriving message (called by the kernel's router)."""
        if message.dest != self.owner:
            raise ValueError(
                f"message for {message.dest} delivered to mailbox of {self.owner}"
            )
        self._queue.append(message)

    def peek(self) -> Message | None:
        """The head message without removing it."""
        return self._queue[0] if self._queue else None

    def pop(self) -> Message:
        """Remove and return the head message."""
        return self._queue.popleft()

    def discard_head(self) -> Message:
        """Drop the head (an IGNOREd message); returns it for tracing."""
        return self._queue.popleft()

    def resolve(self, pid: int, completed: bool) -> list[Message]:
        """Rewrite queued predicates after ``complete(pid)`` resolves.

        Messages whose assumptions became false are removed; the dropped
        messages are returned for tracing. Order of survivors is kept.
        """
        dropped = []
        survivors: deque[Message] = deque()
        for msg in self._queue:
            updated = msg.resolve(pid, completed)
            if updated is None:
                dropped.append(msg)
            else:
                survivors.append(updated)
        self._queue = survivors
        return dropped

    def drain(self, predicate: "Callable[[Message], bool] | None" = None) -> list[Message]:
        """Remove and return all messages (optionally only matching ones)."""
        if predicate is None:
            out = list(self._queue)
            self._queue.clear()
            return out
        kept: deque[Message] = deque()
        out = []
        for msg in self._queue:
            if predicate(msg):
                out.append(msg)
            else:
                kept.append(msg)
        self._queue = kept
        return out

    def clone(self, new_owner: int) -> "Mailbox":
        """A copy of this queue for a split receiver world."""
        box = Mailbox(new_owner)
        for msg in self._queue:
            box._queue.append(
                Message(
                    sender=msg.sender,
                    dest=new_owner,
                    data=msg.data,
                    predicate=msg.predicate,
                    msg_id=msg.msg_id,
                    sent_at=msg.sent_at,
                    sender_world=msg.sender_world,
                )
            )
        return box
