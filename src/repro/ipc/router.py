"""The receive-side decision procedure (paper section 2.4.2, Figure 2).

Pure functions only — the kernel owns the actual world-splitting. Given
the head message of a receiver's mailbox and the receiver's current
predicates, :func:`decide_receive` says what must happen:

- ``ACCEPT``  — hand the data to the receiver unchanged;
- ``IGNORE``  — drop the message, keep waiting;
- ``SPLIT``   — create two receiver copies: one that accepts (predicates
  extended with the sender's world plus ``complete(sender)``), one that
  rejects (predicates extended with ``¬complete(sender)``). When the
  rejecting copy would be self-contradictory, only the accepting copy is
  produced (``rejecting is None``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.predicates import (
    MessageDecision,
    PredicateSet,
    classify_message,
    split_predicates,
    world_key,
)
from repro.ipc.message import Message


@dataclass(frozen=True)
class ReceiveAction:
    """What the kernel must do with one (message, receiver) pair."""

    decision: MessageDecision
    accepting: PredicateSet | None = None
    rejecting: PredicateSet | None = None

    @property
    def creates_worlds(self) -> bool:
        return self.decision is MessageDecision.SPLIT


def fault_filter(message: Message, plan) -> tuple[str, float]:
    """Pure fault hook: what the network does to ``message`` under ``plan``.

    Returns ``("deliver" | "drop" | "delay", delay_s)``. The decision is
    keyed on the message id alone, so it is independent of routing order
    and identical across runs — the deterministic-replay property world
    cloning depends on survives fault injection. The kernel consults this
    before routing; a dropped message traces like a dead letter, a
    delayed one is re-routed ``delay_s`` later.
    """
    from repro.faults.plan import MESSAGE_SITE, FaultKind  # local: avoid import cycle

    decision = plan.decide(MESSAGE_SITE, message.msg_id)
    if decision.kind is FaultKind.MSG_DROP:
        return "drop", 0.0
    if decision.kind is FaultKind.MSG_DELAY:
        return "delay", decision.param
    return "deliver", 0.0


def decide_receive(message: Message, receiver: PredicateSet) -> ReceiveAction:
    """Classify ``message`` against ``receiver`` and prepare predicate sets.

    A message from a sender the receiver already assumes dead — either
    the logical process (``sender ∈ receiver.cant``) or the specific
    sending world (``world_key(sender_world) ∈ receiver.cant``) — is
    ignored regardless of its payload predicates.

    A SPLIT binds ``complete(sender)`` to the sending *world*: should a
    different surviving version of the same process complete later, that
    does not validate this message.
    """
    sender_key = world_key(message.sender_world) if message.sender_world else message.sender
    if message.sender in receiver.cant or sender_key in receiver.cant:
        return ReceiveAction(MessageDecision.IGNORE)
    decision = classify_message(message.predicate, receiver)
    if decision is MessageDecision.ACCEPT:
        return ReceiveAction(decision, accepting=receiver)
    if decision is MessageDecision.IGNORE:
        return ReceiveAction(decision)
    accepting, rejecting = split_predicates(
        message.predicate, sender_key, receiver
    )
    return ReceiveAction(decision, accepting=accepting, rejecting=rejecting)
