"""Supervised alternative blocks: retry spares, watchdogs, degradation.

The paper's recovery-block story (§4.1) assumes the runtime itself
survives misbehaving alternates. :class:`Supervisor` supplies that
survival layer on top of :func:`repro.core.worlds.run_alternatives`:

- **retry spares** — when a whole block fails (every alternative
  crashed, hung, or was rejected), the failed alternatives are
  respawned as a new wave of standby spares, staggered via the same
  ``start_delay`` mechanism the paper uses for its §4.1 stagger
  frontier, with per-attempt backoff and a bounded attempt count;
- **watchdog escalation** — a :class:`~repro.core.policy.WatchdogPolicy`
  handed to the fork backend turns hangs into SIGTERM → grace → SIGKILL
  escalations instead of block-wide timeouts;
- **graceful degradation** — when spawning worlds *itself* fails
  (:class:`~repro.errors.SpawnError`, real or injected), the supervisor
  walks a backend fallback chain (``fork -> thread -> sequential``; the
  asyncio backend rides its own ``async -> thread -> sequential``
  ladder, since coroutine alternatives cannot cross a ``fork``) and
  records every hop in ``BlockOutcome.extras["degraded"]``;
- **leased remote worlds** — :meth:`Supervisor.run_remote` ships a task
  to a (simulated) remote node under a
  :class:`~repro.distrib.lease.RemoteWorldLease` and watches its
  heartbeats in virtual link time. Missed beats escalate
  probe → declare-dead → reclaim-orphan; a dead or unreachable remote
  re-lands the work locally through :meth:`run`, extending the
  degradation ladder to ``remote -> fork -> thread -> sequential``.

The supervisor is fault-plan aware only in that it threads the plan and
an attempt counter through to the backends; the attempt number is part
of every fault key, so retries genuinely re-roll the dice — a block
facing a 30% per-child crash rate converges on a winner after a couple
of waves instead of failing forever.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Any, Sequence

from repro.core.alternative import Alternative
from repro.core.outcome import BlockOutcome
from repro.core.policy import EliminationPolicy, WatchdogPolicy
from repro.core.worlds import _normalize, run_alternatives
from repro.errors import SpawnError, WorldsError

#: The default degradation ladder, strongest isolation first.
DEFAULT_FALLBACK = ("fork", "thread", "sequential")

#: The asyncio backend's ladder: coroutine alternatives cannot cross a
#: ``fork`` boundary (the child cannot report awaitables back through a
#: pipe), so a failed async spawn degrades straight to threads.
ASYNC_FALLBACK = ("async", "thread", "sequential")


class Supervisor:
    """Runs alternative blocks that survive their own failures.

    Parameters
    ----------
    max_retries:
        Extra waves of spares after the initial attempt (0 disables
        retry). Total attempts are ``1 + max_retries``.
    backoff_s:
        Parent-side pause before retry wave *n* is ``backoff_s * n`` —
        linear backoff, enough to let transient pressure (fork storms,
        page-cache churn) subside without the exponential cliffs that
        would dwarf the block's own runtime.
    spare_stagger_s:
        Within a retry wave, spare *i* starts ``i * spare_stagger_s``
        late (the §4.1 stagger frontier applied to respawns).
    watchdog:
        Hang escalation policy for the fork backend; None disables it.
    fallback:
        The backend degradation chain. A block started on chain member
        *b* degrades only rightward from *b*; a backend outside the
        chain (e.g. ``sim``) never degrades.
    fault_plan:
        Deterministic fault schedule threaded through to the backends.
    block_id:
        Fault-key namespace for this supervisor's blocks; bump it when
        running many supervised blocks under one plan.
    journal:
        A :class:`~repro.journal.CommitJournal`; when set, every block
        win is sealed as a durable ``block`` transaction, and a
        restarted supervisor finding its ``block_id`` already applied
        replays the recorded winner instead of re-running the block —
        exactly-once across process incarnations.
    obs:
        An :class:`~repro.obs.Observability`; threaded through to every
        backend attempt, and the supervisor's own decisions (retry
        waves, degradation hops, remote re-landings) are recorded as
        metrics and annotation events.
    """

    def __init__(
        self,
        max_retries: int = 2,
        backoff_s: float = 0.02,
        spare_stagger_s: float = 0.0,
        watchdog: WatchdogPolicy | None = None,
        fallback: Sequence[str] = DEFAULT_FALLBACK,
        fault_plan=None,
        block_id: int = 0,
        journal=None,
        obs=None,
    ) -> None:
        if max_retries < 0:
            raise WorldsError(f"max_retries must be non-negative, got {max_retries}")
        if backoff_s < 0 or spare_stagger_s < 0:
            raise WorldsError("backoff_s and spare_stagger_s must be non-negative")
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.spare_stagger_s = spare_stagger_s
        self.watchdog = watchdog
        self.fallback = tuple(fallback)
        self.fault_plan = fault_plan
        self.block_id = block_id
        self.journal = journal
        self.obs = obs
        if obs is not None and fault_plan is not None:
            obs.watch_fault_plan(fault_plan)

    def _count(self, name: str, help: str = "", **labels: str) -> None:
        if self.obs is not None:
            self.obs.registry.counter(
                name, help, labelnames=tuple(sorted(labels))
            ).inc(**labels)

    # ------------------------------------------------------------------
    def _chain_from(self, backend: str) -> tuple[str, ...]:
        if backend in self.fallback:
            return self.fallback[self.fallback.index(backend):]
        if backend in ASYNC_FALLBACK:
            return ASYNC_FALLBACK[ASYNC_FALLBACK.index(backend):]
        return (backend,)

    def _run_degradable(
        self,
        chain: list[str],
        degraded: list[dict],
        alternatives: list[Alternative],
        attempt: int,
        **kwargs: Any,
    ) -> BlockOutcome:
        """Run one attempt, walking the fallback chain on SpawnError.

        ``chain`` is mutated in place: once a backend proves unable to
        spawn, later attempts start from the surviving suffix instead of
        re-failing through the dead rungs.
        """
        while True:
            backend = chain[0]
            try:
                return run_alternatives(
                    alternatives,
                    backend=backend,
                    fault_plan=self.fault_plan,
                    block_id=self.block_id,
                    attempt=attempt,
                    watchdog=self.watchdog if backend == "fork" else None,
                    journal=self.journal,
                    **kwargs,
                )
            except SpawnError as exc:
                if len(chain) == 1:
                    raise
                degraded.append(
                    {"backend": backend, "attempt": attempt, "error": str(exc)}
                )
                self._count(
                    "mw_degradations_total", "Backend fallback hops",
                    src=backend, dst=chain[1],
                )
                if self.obs is not None:
                    self.obs.tracer.instant(
                        f"degrade:{backend}->{chain[1]}", cat="supervisor",
                        track="supervisor", attempt=attempt, error=str(exc),
                    )
                chain.pop(0)

    # ------------------------------------------------------------------
    def run(
        self,
        alternatives: Sequence[Any],
        initial: dict[str, Any] | None = None,
        timeout: float | None = None,
        elimination: EliminationPolicy = EliminationPolicy.ASYNCHRONOUS,
        backend: str = "fork",
        **kwargs: Any,
    ) -> BlockOutcome:
        """Run a supervised block; returns the (annotated) final outcome.

        The returned outcome is the last attempt's, with indexes mapped
        back to the caller's alternative positions, total wall time in
        ``elapsed_s``, and supervision records in ``extras``
        (``supervisor``, ``degraded``, ``backend``).

        With a ``journal``, a win already applied for this ``block_id``
        (by a previous incarnation that crashed after sealing) is
        replayed without running anything — the outcome carries
        ``extras["journal_recovered"] = True``.
        """
        if self.journal is not None:
            from repro.core.outcome import AlternativeResult
            from repro.journal import find_block_win

            win = find_block_win(self.journal, self.block_id)
            if win is not None:
                replayed = BlockOutcome(
                    winner=AlternativeResult(
                        index=win["winner_index"], name=win["winner_name"],
                        value=win["value"], succeeded=True,
                    ),
                    elapsed_s=0.0,
                )
                replayed.extras["journal_recovered"] = True
                self._count(
                    "mw_supervised_blocks_total", "Supervised block outcomes",
                    result="journal-replayed",
                )
                return replayed
        kwargs.setdefault("obs", self.obs)
        alts = _normalize(alternatives)
        chain = list(self._chain_from(backend))
        degraded: list[dict] = []
        history: list[dict] = []

        t0 = time.perf_counter()
        # (original_index, alternative) pairs still in play this wave
        active: list[tuple[int, Alternative]] = list(enumerate(alts))
        outcome: BlockOutcome | None = None

        for attempt in range(1 + self.max_retries):
            if attempt > 0 and self.backoff_s > 0:
                time.sleep(self.backoff_s * attempt)
            remaining = None
            if timeout is not None:
                remaining = timeout - (time.perf_counter() - t0)
                if remaining <= 0:
                    break
            wave = [
                dataclasses.replace(
                    alt, start_delay=alt.start_delay + i * self.spare_stagger_s
                )
                if attempt > 0 and self.spare_stagger_s > 0
                else alt
                for i, (_, alt) in enumerate(active)
            ]
            outcome = self._run_degradable(
                chain, degraded, wave, attempt,
                initial=initial, timeout=remaining, elimination=elimination,
                **kwargs,
            )
            # map wave-local indexes back to the caller's positions
            index_map = {i: orig for i, (orig, _) in enumerate(active)}
            if outcome.winner is not None:
                outcome.winner.index = index_map.get(outcome.winner.index, outcome.winner.index)
            for loser in outcome.losers:
                loser.index = index_map.get(loser.index, loser.index)
            history.append({
                "attempt": attempt,
                "backend": chain[0],
                "winner": outcome.winner.name if outcome.winner else None,
                "losers": [(l.name, l.error) for l in outcome.losers],
                "elapsed_s": outcome.elapsed_s,
            })
            if outcome.winner is not None:
                break
            retryable = {loser.index for loser in outcome.losers}
            active = [(orig, alt) for orig, alt in active if orig in retryable] or active

        if outcome is None:  # timeout budget consumed before the first wave
            outcome = BlockOutcome(winner=None, elapsed_s=0.0, timed_out=True)
        outcome.elapsed_s = time.perf_counter() - t0
        outcome.extras["supervisor"] = {
            "attempts": len(history) or 1,
            "max_retries": self.max_retries,
            "history": history,
        }
        outcome.extras["backend"] = chain[0]
        if degraded:
            outcome.extras["degraded"] = degraded
        if outcome.winner is not None:
            result = "won"
        elif outcome.timed_out:
            result = "timeout"
        else:
            result = "failed"
        self._count(
            "mw_supervised_blocks_total", "Supervised block outcomes",
            result=result,
        )
        if len(history) > 1 and self.obs is not None:
            self.obs.registry.counter(
                "mw_retry_waves_total", "Retry waves beyond the first attempt",
            ).inc(float(len(history) - 1))
        return outcome

    # ------------------------------------------------------------------
    def run_remote(
        self,
        fn,
        initial: dict[str, Any] | None = None,
        *,
        rfork=None,
        work_s: float = 1.0,
        lease=None,
        name: str = "remote-world",
        local_backend: str = "fork",
    ) -> BlockOutcome:
        """Run ``fn(state)`` on a leased remote world; re-land locally on death.

        The protocol, all in deterministic virtual link time:

        1. checkpoint the task and ship it over ``rfork.link`` with
           bounded retries (drops, partitions and corrupt deliveries each
           re-roll per attempt);
        2. grant a :class:`~repro.distrib.lease.RemoteWorldLease` and
           watch heartbeats every ``lease.heartbeat_s`` while the remote
           works for ``work_s`` virtual seconds. A missed beat (lost in
           flight, link flap, or node crash — all fault-plan sites) makes
           the lease SUSPECT and triggers a probe; a successful probe
           rescues it, ``miss_threshold`` consecutive misses or a full
           term without renewal declare the holder dead;
        3. a dead (or never-reachable) remote world is reclaimed and its
           work re-landed locally via :meth:`run`, recording the hop in
           ``extras["degraded"]`` — the remote rung of the
           fork→thread→sequential ladder.

        Returns a :class:`BlockOutcome` whose ``extras`` carry the lease
        event log (``lease``), the remote protocol report (``remote``),
        and ``relanded`` when local recovery ran.
        """
        from repro.core.outcome import AlternativeResult
        from repro.distrib.lease import RemoteNode, RemoteWorldLease, heartbeat_lost
        from repro.distrib.retry import call_with_retries
        from repro.distrib.rfork import _RETRYABLE, RemoteFork
        from repro.errors import RetriesExhausted
        from repro.runtime.checkpoint import CheckpointImage

        if rfork is None:
            rfork = RemoteFork()
        link = rfork.link
        plan = link.fault_plan if link.fault_plan is not None else self.fault_plan
        if lease is None:
            lease = RemoteWorldLease(
                lease_id=self.block_id, node_id=rfork.node_id,
                granted_at_s=link.clock, obs=self.obs,
            )
        node = RemoteNode(node_id=lease.node_id, plan=plan)

        t_wall = time.perf_counter()
        state = dict(initial or {})
        image = CheckpointImage.capture(fn, state, name)
        blob = image.to_bytes()

        def ship_once(attempt: int):
            delivery = link.ship(blob, attempt=attempt)
            return CheckpointImage.from_bytes(delivery.payload)

        remote_report: dict[str, Any] = {
            "node_id": lease.node_id, "lease_id": lease.lease_id,
            "work_s": work_s, "image_bytes": len(blob),
        }
        dead_reason = None
        restored = None
        try:
            restored, ship_stats = call_with_retries(
                ship_once, policy=rfork.retry,
                token=f"lease:{lease.lease_id}:ship", link=link,
                retry_on=_RETRYABLE,
            )
            remote_report["ship"] = ship_stats.as_dict()
        except RetriesExhausted as exc:
            ship_stats = getattr(exc, "stats", None)
            remote_report["ship"] = ship_stats.as_dict() if ship_stats else {}
            lease.declare_dead(link.clock, f"unreachable: {exc}")
            lease.reclaim(link.clock)
            dead_reason = "remote-unreachable"

        if restored is not None:
            t0 = link.clock
            done_at = t0 + work_s
            crash_rel = node.crash_time(work_s, attempt=0)
            crash_at = None if crash_rel is None else t0 + crash_rel
            if crash_at is not None and plan is not None:
                from repro.faults.plan import REMOTE_SITE, FaultKind

                plan.note_injection(
                    REMOTE_SITE, FaultKind.REMOTE_CRASH,
                    detail=f"node {lease.node_id} dies at t={crash_at:.6f}s",
                    t=crash_at, track=f"lease:{lease.lease_id}",
                    node=lease.node_id, lease=lease.lease_id,
                )
            remote_report["crash_at_s"] = crash_at
            beat = 0
            while lease.alive:
                beat += 1
                now = t0 + beat * lease.heartbeat_s
                node_alive = crash_at is None or now < crash_at
                if node_alive and now >= done_at:
                    lease.complete(done_at)
                    break
                lost = heartbeat_lost(plan, lease.lease_id, beat, t=now) or (
                    plan is not None and plan.link_down(link.link_id, now)
                )
                if node_alive and not lost:
                    lease.renew(now)
                    continue
                reason = "node crashed" if not node_alive else "beat lost in flight"
                lease.miss(now, reason)
                # probe: a deliberate synchronous liveness check. A live
                # node behind a lost beat answers; a crashed one cannot.
                if node_alive and not (plan is not None and plan.link_down(link.link_id, now)):
                    lease.renew(now)
                    lease.note(now, "probe-ok")
                    continue
                lease.note(now, "probe-fail", reason)
                if (
                    lease.consecutive_misses >= lease.miss_threshold
                    or lease.check_expiry(now)
                ):
                    why = (
                        "lease expired"
                        if lease.check_expiry(now)
                        else f"{lease.consecutive_misses} consecutive misses"
                    )
                    lease.declare_dead(now, f"{why} ({reason})")
                    lease.reclaim(now)
                    dead_reason = "lease-expired"
            remote_report["beats_ok"] = lease.beats_ok
            remote_report["beats_missed"] = lease.beats_missed

        if dead_reason is None and restored is not None:
            # the remote survived its lease: commit its result. The local
            # restart stands in for the CPU we do not have on the far end.
            result = restored.restart()
            winner = AlternativeResult(
                index=0, name=name, value=result, succeeded=True,
                elapsed_s=work_s,
            )
            outcome = BlockOutcome(winner=winner, elapsed_s=time.perf_counter() - t_wall)
        else:
            # remote world is gone: re-land the work on the local ladder
            self._count(
                "mw_relandings_total", "Remote worlds re-landed locally",
                reason=dead_reason,
            )
            outcome = self.run([fn], initial=state, backend=local_backend)
            outcome.extras["relanded"] = True
            outcome.extras.setdefault("degraded", []).insert(
                0,
                {"backend": "remote", "attempt": 0, "error": dead_reason},
            )
            outcome.elapsed_s = time.perf_counter() - t_wall
        outcome.extras["lease"] = [
            {"at_s": e.at_s, "event": e.event, "detail": e.detail}
            for e in lease.events
        ]
        outcome.extras["remote"] = remote_report
        return outcome


def run_supervised(
    alternatives: Sequence[Any],
    initial: dict[str, Any] | None = None,
    timeout: float | None = None,
    backend: str = "fork",
    supervisor: Supervisor | None = None,
    **kwargs: Any,
) -> BlockOutcome:
    """Convenience wrapper: run one block under a (default) supervisor."""
    sup = supervisor or Supervisor()
    return sup.run(alternatives, initial=initial, timeout=timeout, backend=backend, **kwargs)
