"""The deterministic fault-injection plan.

A :class:`FaultPlan` answers one question — "does a fault fire at this
*site* for this *key*, and which one?" — as a pure function of the plan's
seed. Each (site, key) pair gets its own derived RNG stream
(``numpy`` ``default_rng`` seeded with ``[seed, crc32(site), *key]``), so

- the schedule is identical across runs and across processes (a forked
  child computes the same decision its parent would);
- decisions are independent of the *order* sites are queried in — a race
  between real children cannot perturb which of them is doomed;
- distinct attempts of the same alternative re-roll (the attempt number
  is part of the key), which is what lets a supervisor's retry spares
  make progress under a constant fault rate.

Sites and their injectable kinds:

========== ==================================================================
site       fault kinds
========== ==================================================================
child      CRASH, HANG, SLOW_START, TRUNCATE_REPORT, CORRUPT_REPORT,
           GUARD_EXCEPTION — keyed ``(block_id, index, attempt)``
spawn      SPAWN_FAIL (simulated ``EAGAIN``) — keyed ``(block_id, index,
           attempt)``
kill       KILL_FAIL (first signal to the child is lost; the backend must
           verify death and resend) — keyed ``(block_id, index, attempt)``
message    MSG_DROP, MSG_DELAY — keyed ``(msg_id,)`` (simulation kernel)
compute    STALL (extra virtual seconds) — keyed ``(wid, op_number)``
           (simulation kernel)
link       XFER_DROP, XFER_DUP, XFER_REORDER, XFER_CORRUPT, LINK_SLOW —
           keyed ``(link_id, transfer_seq, attempt)`` (simulated network)
partition  LINK_FLAP (the link is down for the first ``flap_s`` seconds
           of the window) — keyed ``(link_id, window_index)`` where the
           window index is ``floor(link_clock / partition_window_s)``
remote     REMOTE_CRASH (the remote node dies partway through the shipped
           work) — keyed ``(node_id, attempt)``
heartbeat  HEARTBEAT_MISS (one lease heartbeat is lost in flight even
           though the node is alive) — keyed ``(lease_id, beat_index)``
journal    TORN_RECORD, CRASH_BEFORE_SEAL, CRASH_AFTER_SEAL,
           PARTIAL_RELEASE — keyed ``(txn_seq,)`` (the commit journal);
           DOUBLE_RECOVERY — keyed ``(RECOVERY_KEY,)`` (the recovery
           pass itself runs twice, proving idempotence)
serve      REQUEST_BURST (the submit arrives as ``burst_n`` copies — a
           client retry storm), SLOW_TENANT (the request costs
           ``slow_tenant_s`` extra worker seconds) — keyed
           ``(crc32(tenant), request_seq)`` (the speculation service)
cluster    SHARD_CRASH (one service shard dies partway through a burst,
           at ``shard_crash_fraction`` of the phase) — keyed
           ``(shard_id, epoch)``; ROUTER_PARTITION (the router cannot
           see a live shard's heartbeats for ``partition_beats`` beats)
           — keyed ``(shard_id, window)``; STALE_TAKEOVER (a takeover
           is initiated for a shard that is not actually dead — the
           idempotence probe) — keyed ``(shard_id, beat)``
snapshot   TORN_SNAPSHOT (the snapshot record is half-written, then the
           process dies), COMPACTION_CRASH (the process dies after the
           compaction snapshot is durable but before the WAL rewrite)
           — keyed ``(snapshot_index,)`` (the journal lifecycle)
chaos      COLD_RESTART (the whole service/cluster process-state dies
           and must restart from its journals) — keyed
           ``(episode, step)`` (the chaos soak harness)
asyncio    SLOW_TASK (the task awaits ``slow_task_s`` extra before
           running), CANCEL_IGNORED (the task swallows cancellation and
           lingers ``cancel_ignore_s`` before dying — a misbehaved
           coroutine), LOOP_STALL (the task blocks the event loop
           synchronously for ``loop_stall_s`` — a GIL-style stall every
           sibling feels) — keyed ``(block_id, index, attempt)`` (the
           asyncio backend)
========== ==================================================================
"""

from __future__ import annotations

import enum
import zlib
from dataclasses import dataclass, field

import numpy as np


class FaultKind(str, enum.Enum):
    """One injectable failure mode."""

    #: child dies before writing any report (fork: ``_exit``; thread: raise)
    CRASH = "crash-before-report"
    #: child stalls indefinitely (until a watchdog or timeout kills it)
    HANG = "hang"
    #: child starts late by ``slow_start_s`` (models a loaded machine)
    SLOW_START = "slow-start"
    #: fork backend: report header promises more bytes than arrive
    TRUNCATE_REPORT = "truncated-report"
    #: fork backend: report body is garbage of the advertised length
    CORRUPT_REPORT = "corrupt-report"
    #: the guard raises instead of returning a verdict
    GUARD_EXCEPTION = "guard-exception"
    #: spawning the world fails (simulated ``EAGAIN``/``BlockingIOError``)
    SPAWN_FAIL = "spawn-fail"
    #: the first kill signal to a child is lost (lingering would-be zombie)
    KILL_FAIL = "kill-fail"
    #: simulation kernel: the message never arrives
    MSG_DROP = "msg-drop"
    #: simulation kernel: delivery is delayed by ``msg_delay_s``
    MSG_DELAY = "msg-delay"
    #: simulation kernel: a costed op takes ``stall_s`` extra virtual time
    STALL = "stall"
    #: simulated link: the payload is lost; the sender times out
    XFER_DROP = "transfer-drop"
    #: simulated link: the payload is delivered twice (at-least-once wire)
    XFER_DUP = "transfer-duplicate"
    #: simulated link: this delivery arrives after the next one
    XFER_REORDER = "transfer-reorder"
    #: simulated link: one payload byte is flipped in flight
    XFER_CORRUPT = "transfer-corrupt"
    #: simulated link: the transfer takes ``slow_factor``× nominal time
    LINK_SLOW = "link-slow"
    #: simulated link: a flap window — the link is down for ``flap_s``
    #: seconds at the start of the decided window
    LINK_FLAP = "link-flap"
    #: remote node: crashes after ``remote_crash_fraction`` of the work
    REMOTE_CRASH = "remote-crash"
    #: lease protocol: a heartbeat is lost even though the node is alive
    HEARTBEAT_MISS = "heartbeat-miss"
    #: journal: the intent record is half-written, then the process dies
    TORN_RECORD = "torn-record"
    #: journal: intent durable, crash before the seal record lands
    CRASH_BEFORE_SEAL = "crash-before-seal"
    #: journal: seal durable, crash before the apply phase runs
    CRASH_AFTER_SEAL = "crash-after-seal"
    #: journal: the device-release loop dies after releasing only some
    #: of a sealed transaction's effects
    PARTIAL_RELEASE = "partial-release"
    #: journal: the recovery pass runs twice (it must be idempotent)
    DOUBLE_RECOVERY = "double-recovery"
    #: serve: a misbehaving client resubmits the same request as a burst
    #: of ``burst_n`` copies (a retry storm hammering the admission queue)
    REQUEST_BURST = "request-burst"
    #: serve: the tenant's request takes ``slow_tenant_s`` extra seconds
    #: of worker time (a pathological workload hogging its slots)
    SLOW_TENANT = "slow-tenant"
    #: cluster: one service shard dies mid-burst (its journal survives)
    SHARD_CRASH = "shard-crash"
    #: cluster: the router is partitioned from a live shard — every
    #: heartbeat in the decided window is lost even though the shard
    #: keeps working (the false-death / fencing scenario)
    ROUTER_PARTITION = "router-partition"
    #: cluster: a takeover is started for a shard that is not dead (or
    #: already taken over) — the takeover path must be idempotent
    STALE_TAKEOVER = "stale-takeover"
    #: snapshot: the snapshot record is half-written, then the process
    #: dies (recovery must quarantine the torn snapshot and fall back to
    #: replaying the full record stream)
    TORN_SNAPSHOT = "torn-snapshot"
    #: snapshot: the process dies after the compaction snapshot is
    #: durable but before the WAL is rewritten (the old file, snapshot
    #: appended, must recover identically)
    COMPACTION_CRASH = "compaction-crash"
    #: chaos: the whole service/cluster process-state dies at this step
    #: and must be rebuilt from the journals alone (cold restart)
    COLD_RESTART = "cold-restart"
    #: transport: the RPC request frame is corrupted in flight; the
    #: receiver's CRC check fails and it resets the connection
    TORN_FRAME = "torn-frame"
    #: transport: the shard host stalls before answering this call for
    #: ``socket_stall_s`` seconds (longer than any sane per-call
    #: timeout, so the caller times out and resends)
    SOCKET_STALL = "socket-stall"
    #: transport: the shard-host process is SIGSTOPped (alive but
    #: frozen — heartbeats time out, the breaker opens) for
    #: ``sigstop_s`` seconds, then SIGCONTed
    HOST_SIGSTOP = "host-sigstop"
    #: transport: the shard-host process is killed with SIGKILL at
    #: ``host_kill_fraction`` of the way through the epoch's burst —
    #: the kernel-grade shard death only a real process can model
    HOST_SIGKILL = "host-sigkill"
    #: transport: the connect() to the shard host is refused for this
    #: attempt (host restarting, backlog full, socket path raced)
    CONNECT_REFUSED = "connect-refused"
    #: asyncio backend: the task awaits ``slow_task_s`` extra before its
    #: alternative runs (a congested event loop / slow downstream)
    SLOW_TASK = "slow-task"
    #: asyncio backend: the task swallows its first cancellation and
    #: keeps running for ``cancel_ignore_s`` (a coroutine that catches
    #: CancelledError — elimination must still converge)
    CANCEL_IGNORED = "cancellation-ignored"
    #: asyncio backend: the task blocks the loop synchronously for
    #: ``loop_stall_s`` (CPU-bound work on the loop thread; every
    #: sibling world stalls with it)
    LOOP_STALL = "loop-stall"


CHILD_SITE = "child"
SPAWN_SITE = "spawn"
KILL_SITE = "kill"
MESSAGE_SITE = "message"
COMPUTE_SITE = "compute"
LINK_SITE = "link"
PARTITION_SITE = "partition"
REMOTE_SITE = "remote"
HEARTBEAT_SITE = "heartbeat"
JOURNAL_SITE = "journal"
SERVE_SITE = "serve"
CLUSTER_SITE = "cluster"
SNAPSHOT_SITE = "snapshot"
CHAOS_SITE = "chaos"
TRANSPORT_SITE = "transport"
ASYNCIO_SITE = "asyncio"

#: The reserved journal-site key the recovery pass queries for
#: DOUBLE_RECOVERY (transaction seqs start at 1, so 0 never collides).
RECOVERY_KEY = 0

#: Cap on the per-plan injection log (a long soak must not grow without
#: bound; the metrics counters keep exact totals past this point).
_MAX_INJECTION_LOG = 10_000

#: Which kinds may fire at each site, in trial order (first hit wins).
SITE_KINDS: dict[str, tuple[FaultKind, ...]] = {
    CHILD_SITE: (
        FaultKind.CRASH,
        FaultKind.HANG,
        FaultKind.SLOW_START,
        FaultKind.TRUNCATE_REPORT,
        FaultKind.CORRUPT_REPORT,
        FaultKind.GUARD_EXCEPTION,
    ),
    SPAWN_SITE: (FaultKind.SPAWN_FAIL,),
    KILL_SITE: (FaultKind.KILL_FAIL,),
    MESSAGE_SITE: (FaultKind.MSG_DROP, FaultKind.MSG_DELAY),
    COMPUTE_SITE: (FaultKind.STALL,),
    LINK_SITE: (
        FaultKind.XFER_DROP,
        FaultKind.XFER_DUP,
        FaultKind.XFER_REORDER,
        FaultKind.XFER_CORRUPT,
        FaultKind.LINK_SLOW,
    ),
    PARTITION_SITE: (FaultKind.LINK_FLAP,),
    REMOTE_SITE: (FaultKind.REMOTE_CRASH,),
    HEARTBEAT_SITE: (FaultKind.HEARTBEAT_MISS,),
    JOURNAL_SITE: (
        FaultKind.TORN_RECORD,
        FaultKind.CRASH_BEFORE_SEAL,
        FaultKind.CRASH_AFTER_SEAL,
        FaultKind.PARTIAL_RELEASE,
        FaultKind.DOUBLE_RECOVERY,
    ),
    SERVE_SITE: (FaultKind.REQUEST_BURST, FaultKind.SLOW_TENANT),
    CLUSTER_SITE: (
        FaultKind.SHARD_CRASH,
        FaultKind.ROUTER_PARTITION,
        FaultKind.STALE_TAKEOVER,
    ),
    SNAPSHOT_SITE: (
        FaultKind.TORN_SNAPSHOT,
        FaultKind.COMPACTION_CRASH,
    ),
    CHAOS_SITE: (FaultKind.COLD_RESTART,),
    TRANSPORT_SITE: (
        FaultKind.TORN_FRAME,
        FaultKind.SOCKET_STALL,
        FaultKind.HOST_SIGSTOP,
        FaultKind.HOST_SIGKILL,
        FaultKind.CONNECT_REFUSED,
    ),
    ASYNCIO_SITE: (
        FaultKind.SLOW_TASK,
        FaultKind.CANCEL_IGNORED,
        FaultKind.LOOP_STALL,
    ),
}


@dataclass(frozen=True)
class FaultDecision:
    """The verdict for one (site, key): a kind (or None) plus a magnitude.

    ``param`` is the fault's duration parameter where one applies
    (HANG/SLOW_START/MSG_DELAY/STALL seconds); 0.0 otherwise.
    """

    kind: FaultKind | None = None
    param: float = 0.0

    @property
    def fires(self) -> bool:
        return self.kind is not None

    def __bool__(self) -> bool:
        return self.fires


@dataclass
class FaultPlan:
    """A seeded, reproducible fault schedule.

    ``rates`` maps :class:`FaultKind` to an independent firing probability
    in ``[0, 1]``; kinds absent from the map never fire. At a site where
    several kinds are enabled, each is trialled in :data:`SITE_KINDS`
    order and the first that fires wins (at most one fault per site/key).

    The magnitude knobs (``hang_s`` etc.) are plain attributes so benches
    can sweep them; they do not affect *which* faults fire.
    """

    seed: int = 0
    rates: dict[FaultKind, float] = field(default_factory=dict)
    hang_s: float = 30.0
    slow_start_s: float = 0.1
    msg_delay_s: float = 0.05
    stall_s: float = 0.01
    slow_factor: float = 4.0
    partition_window_s: float = 1.0
    flap_s: float = 0.25
    remote_crash_fraction: float = 0.5
    burst_n: float = 3.0
    slow_tenant_s: float = 0.02
    shard_crash_fraction: float = 0.5
    partition_beats: float = 4.0
    socket_stall_s: float = 1.0
    sigstop_s: float = 0.2
    host_kill_fraction: float = 0.5
    slow_task_s: float = 0.05
    cancel_ignore_s: float = 0.1
    loop_stall_s: float = 0.02
    #: Optional telemetry sink (see :meth:`note_injection`); wired by
    #: :meth:`repro.obs.Observability.watch_fault_plan`. Excluded from
    #: equality so plans still compare by schedule.
    observer: object = field(default=None, repr=False, compare=False)
    #: Every fault actually injected through this plan (decisions that
    #: *fired at a live injection site*, not mere queries). Bounded by
    #: :data:`_MAX_INJECTION_LOG`.
    injections: list = field(default_factory=list, repr=False, compare=False)

    def __post_init__(self) -> None:
        for kind, rate in self.rates.items():
            if not isinstance(kind, FaultKind):
                raise TypeError(f"rates key must be a FaultKind, got {kind!r}")
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"rate for {kind.value} must be in [0, 1], got {rate}")

    # -- derived streams --------------------------------------------------
    def _stream(self, site: str, key: tuple[int, ...]) -> np.random.Generator:
        entropy = [self.seed & 0xFFFFFFFF, zlib.crc32(site.encode("ascii"))]
        entropy.extend(int(k) & 0xFFFFFFFF for k in key)
        return np.random.default_rng(entropy)

    def _param_for(self, kind: FaultKind) -> float:
        if kind is FaultKind.HANG:
            return self.hang_s
        if kind is FaultKind.SLOW_START:
            return self.slow_start_s
        if kind is FaultKind.MSG_DELAY:
            return self.msg_delay_s
        if kind is FaultKind.STALL:
            return self.stall_s
        if kind is FaultKind.LINK_SLOW:
            return self.slow_factor
        if kind is FaultKind.LINK_FLAP:
            return self.flap_s
        if kind is FaultKind.REMOTE_CRASH:
            return self.remote_crash_fraction
        if kind is FaultKind.REQUEST_BURST:
            return self.burst_n
        if kind is FaultKind.SLOW_TENANT:
            return self.slow_tenant_s
        if kind is FaultKind.SHARD_CRASH:
            return self.shard_crash_fraction
        if kind is FaultKind.ROUTER_PARTITION:
            return self.partition_beats
        if kind is FaultKind.SOCKET_STALL:
            return self.socket_stall_s
        if kind is FaultKind.HOST_SIGSTOP:
            return self.sigstop_s
        if kind is FaultKind.HOST_SIGKILL:
            return self.host_kill_fraction
        if kind is FaultKind.SLOW_TASK:
            return self.slow_task_s
        if kind is FaultKind.CANCEL_IGNORED:
            return self.cancel_ignore_s
        if kind is FaultKind.LOOP_STALL:
            return self.loop_stall_s
        return 0.0

    # -- the decision procedure -------------------------------------------
    def decide(self, site: str, *key: int) -> FaultDecision:
        """The fault (if any) firing at ``site`` for ``key``.

        Pure in ``(seed, site, key)``: calling twice, in any order, from
        any process, yields the same decision.
        """
        try:
            kinds = SITE_KINDS[site]
        except KeyError:
            raise ValueError(f"unknown fault site {site!r}") from None
        if not any(self.rates.get(kind, 0.0) > 0.0 for kind in kinds):
            return FaultDecision()
        rng = self._stream(site, key)
        for kind in kinds:
            draw = float(rng.uniform())  # one draw per kind, always, so
            # enabling an extra kind never reshuffles the draws of later ones
            if draw < self.rates.get(kind, 0.0):
                return FaultDecision(kind, self._param_for(kind))
        return FaultDecision()

    # -- telemetry ---------------------------------------------------------
    def note_injection(
        self,
        site: str,
        kind,
        detail: str = "",
        t: float | None = None,
        track=None,
        **data,
    ) -> None:
        """Record that a decided fault was actually injected.

        :meth:`decide` is a pure query — callers probe it freely — so the
        correlation record is written here, by the code that *acted* on a
        firing decision. With an ``observer`` wired (an
        :class:`~repro.obs.Observability`), the injection also lands as a
        ``cat="fault"`` annotation instant at time ``t`` on ``track``,
        visibly linking cause to the retry/degradation effect around it.
        """
        kind_label = kind.value if isinstance(kind, FaultKind) else str(kind)
        if len(self.injections) < _MAX_INJECTION_LOG:
            rec = {"site": site, "kind": kind_label, **data}
            if detail:
                rec["detail"] = detail
            self.injections.append(rec)
        if self.observer is not None:
            self.observer(site, kind_label, t=t, detail=detail, track=track, **data)

    # -- convenience -------------------------------------------------------
    def schedule(
        self, block_id: int, n_alternatives: int, attempts: int = 1
    ) -> list[tuple[int, int, FaultDecision]]:
        """Materialize the child-site schedule for one block.

        Returns ``(index, attempt, decision)`` triples — handy for tests
        asserting two plans with equal seeds produce equal schedules, and
        for benches reporting how many faults a sweep actually injected.
        """
        out = []
        for attempt in range(attempts):
            for index in range(n_alternatives):
                out.append((index, attempt, self.decide(CHILD_SITE, block_id, index, attempt)))
        return out

    def link_down(self, link_id: int, at_s: float) -> bool:
        """Whether ``link_id`` is inside a flap window at link time ``at_s``.

        Time is carved into ``partition_window_s`` buckets; a window where
        LINK_FLAP fires takes the link down for its first ``flap_s``
        seconds. Pure in ``(seed, link_id, window_index)``, so both ends
        of a link — and both runs of a test — agree on the outage
        schedule.
        """
        if self.rates.get(FaultKind.LINK_FLAP, 0.0) <= 0.0:
            return False
        window = int(at_s / self.partition_window_s)
        if not self.decide(PARTITION_SITE, link_id, window):
            return False
        return (at_s - window * self.partition_window_s) < self.flap_s

    @classmethod
    def crashes(cls, seed: int = 0, rate: float = 0.3, **knobs) -> "FaultPlan":
        """A plan that only injects child crashes (the common bench case)."""
        return cls(seed=seed, rates={FaultKind.CRASH: rate}, **knobs)

    @classmethod
    def lossy(cls, seed: int = 0, rate: float = 0.3, **knobs) -> "FaultPlan":
        """A plan that only drops transfers (the common network bench case)."""
        return cls(seed=seed, rates={FaultKind.XFER_DROP: rate}, **knobs)

    @classmethod
    def quiet(cls) -> "FaultPlan":
        """A plan that never fires (useful as a control arm)."""
        return cls(seed=0, rates={})

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        on = {k.value: v for k, v in self.rates.items() if v > 0}
        return f"FaultPlan(seed={self.seed}, rates={on})"
