"""Deterministic fault injection and supervision for Multiple Worlds.

The paper sells alternative blocks as a robustness construct: a crashing
or hanging alternative is just a loser, absorbed by the guard/elimination
machinery (sections 2.2, 4.1). This package makes that claim testable:

- :class:`FaultPlan` — a seeded, reproducible schedule of injectable
  faults spanning every backend (child crashes, hangs, corrupt reports,
  spawn failures, lost kill signals, message drops/delays, stalls);
- :class:`Supervisor` — a wrapper around
  :func:`repro.core.worlds.run_alternatives` that survives what the plan
  injects: bounded retry of failed alternatives as staggered spares,
  watchdog escalation of hung children, and graceful degradation down a
  backend fallback chain (``fork -> thread -> sequential``).

Determinism guarantee: a fault decision is a pure function of
``(seed, site, key)`` — never of call order or wall-clock time — so the
same plan yields the same fault schedule on every run.
"""

from repro.faults.plan import (
    ASYNCIO_SITE,
    CHAOS_SITE,
    CHILD_SITE,
    CLUSTER_SITE,
    COMPUTE_SITE,
    HEARTBEAT_SITE,
    JOURNAL_SITE,
    KILL_SITE,
    LINK_SITE,
    MESSAGE_SITE,
    PARTITION_SITE,
    RECOVERY_KEY,
    REMOTE_SITE,
    SERVE_SITE,
    SITE_KINDS,
    SNAPSHOT_SITE,
    SPAWN_SITE,
    TRANSPORT_SITE,
    FaultDecision,
    FaultKind,
    FaultPlan,
)
from repro.faults.supervisor import (
    ASYNC_FALLBACK,
    DEFAULT_FALLBACK,
    Supervisor,
    run_supervised,
)

__all__ = [
    "ASYNC_FALLBACK",
    "ASYNCIO_SITE",
    "CHAOS_SITE",
    "CHILD_SITE",
    "CLUSTER_SITE",
    "COMPUTE_SITE",
    "HEARTBEAT_SITE",
    "JOURNAL_SITE",
    "KILL_SITE",
    "LINK_SITE",
    "MESSAGE_SITE",
    "PARTITION_SITE",
    "RECOVERY_KEY",
    "REMOTE_SITE",
    "SERVE_SITE",
    "SITE_KINDS",
    "SNAPSHOT_SITE",
    "SPAWN_SITE",
    "TRANSPORT_SITE",
    "DEFAULT_FALLBACK",
    "FaultDecision",
    "FaultKind",
    "FaultPlan",
    "Supervisor",
    "run_supervised",
]
